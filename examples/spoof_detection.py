#!/usr/bin/env python3
"""MAC-spoof detection at a hot-spot (paper Section VII-B1).

An access point allow-lists two paying client stations by MAC address.
An attacker with a different wireless card steals a victim's session by
spoofing its MAC.  The AP's fingerprint check notices that the traffic
behind the victim's address no longer matches its learnt signature.

Run:  python examples/spoof_detection.py
"""

from __future__ import annotations

from repro.applications import SpoofDetector, SpoofVerdict, spoof_mac
from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic


def main() -> None:
    # --- The hot-spot: two legitimate clients, one attacker ----------
    scenario = Scenario(duration_s=150.0, seed=29, encrypted=False)
    scenario.add_station(
        StationSpec(
            name="customer-1",
            profile="intel-2200bg-linux",
            sources=[CbrTraffic(interval_ms=10), WebTraffic(mean_think_s=3.0)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="customer-2",
            profile="apple-bcm4321-osx",
            sources=[WebTraffic(mean_think_s=2.0)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="attacker",
            profile="realtek-rtl8187-linux",
            sources=[CbrTraffic(interval_ms=12)],
        )
    )
    result = scenario.run()
    macs = {name: mac for mac, name in result.station_names.items()}
    victim = macs["customer-1"]
    attacker = macs["attacker"]
    print(f"victim:   {victim} (intel-2200bg-linux)")
    print(f"attacker: {attacker} (realtek-rtl8187-linux)")

    # --- Learning stage (clean, user-initiated) ----------------------
    boundary_us = 75e6
    training = [c for c in result.captures if c.timestamp_us < boundary_us]
    detector = SpoofDetector(min_observations=50)
    learnt = detector.learn(training, {victim, macs["customer-2"]})
    print(f"\nlearning stage: {len(learnt)} allow-listed devices fingerprinted")

    # --- Scene 1: normal operation -----------------------------------
    live = [c for c in result.captures if c.timestamp_us >= boundary_us]
    print("\n[scene 1] normal operation:")
    for check in detector.check_window(live):
        print(
            f"  {check.device}: {check.verdict.value:12s} "
            f"self-sim {check.self_similarity:.3f}"
        )

    # --- Scene 2: the attacker takes over the victim's MAC ----------
    victim_gone = [
        c for c in live if c.sender is None or c.sender != victim
    ]
    hijacked = spoof_mac(victim_gone, attacker, victim)
    print("\n[scene 2] attacker spoofs the victim's MAC:")
    alarms = 0
    for check in detector.check_window(hijacked):
        print(
            f"  {check.device}: {check.verdict.value:12s} "
            f"self-sim {check.self_similarity:.3f}"
        )
        alarms += check.verdict is SpoofVerdict.SPOOFED
    print(f"\n{alarms} spoofing alarm(s) raised" if alarms else "\nno alarm (!)")


if __name__ == "__main__":
    main()
