#!/usr/bin/env python3
"""Multi-sensor ingest service: three sensors, one shared database.

Simulates three sensor sites (different station mixes), streams each
site's capture to a running :class:`~repro.service.IngestServer` as a
concurrent TCP session — columnar chunks on the checksummed wire
format — and publishes the merged shard-partitioned reference
database. Along the way one sensor "crashes" mid-session and resumes
from its server-side checkpoint, replaying event-for-event as if
nothing happened (DESIGN.md §9).

Run:  python examples/multi_sensor_service.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.core.parameters import InterArrivalTime
from repro.persistence import load_database
from repro.service import IngestServer, SensorSession, ServiceConfig
from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic
from repro.streaming import WindowConfig, replay_chunk_source
from repro.traces import Trace


def simulate_site(name: str, seed: int, profiles: list[str]) -> Trace:
    """One sensor site: a few stations with distinct wireless cards."""
    scenario = Scenario(duration_s=40.0, seed=seed, encrypted=True)
    for index, profile in enumerate(profiles):
        scenario.add_station(
            StationSpec(
                name=f"{name}-sta{index}",
                profile=profile,
                sources=[CbrTraffic(interval_ms=25 + 15 * index),
                         WebTraffic(mean_think_s=4.0)],
            )
        )
    result = scenario.run()
    return Trace(frames=result.captures, name=name, encrypted=True)


def main() -> None:
    # --- 1. Three sensor sites, three captures ----------------------
    sites = {
        "floor1": simulate_site(
            "floor1", 21, ["intel-2200bg-linux", "broadcom-4318-win"]
        ),
        "floor2": simulate_site(
            "floor2", 22, ["atheros-ar5212-madwifi", "intel-2200bg-linux"]
        ),
        "lobby": simulate_site(
            "lobby", 23, ["broadcom-4318-win", "atheros-ar5212-madwifi"]
        ),
    }
    chunks = {
        sensor: list(replay_chunk_source(trace.table(), chunk_frames=512))
        for sensor, trace in sites.items()
    }

    # --- 2. The service: shard-partitioned concurrent ingest --------
    config = ServiceConfig(
        parameter=InterArrivalTime(),
        shard_count=4,
        window=WindowConfig(window_s=10.0),
        min_observations=30,
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-"))
    with IngestServer(config, checkpoint_dir=workdir / "ckpts") as server:
        port = server.listen()
        print(f"service listening on 127.0.0.1:{port} "
              f"({config.shard_count} shards)")

        # floor1 "crashes" after 3 chunks — no END record goes out.
        report = SensorSession("floor1", chunks["floor1"]).connect(
            "127.0.0.1", port, abort_after_chunks=3
        )
        print(f"floor1 dropped after {report.chunks} chunks "
              "(server checkpoints the partial session)")

        # The other sensors stream concurrently...
        threads = [
            threading.Thread(
                target=SensorSession(sensor, chunks[sensor]).connect,
                args=("127.0.0.1", port),
            )
            for sensor in ("floor2", "lobby")
        ]
        for thread in threads:
            thread.start()

        # ...and floor1 reconnects, re-sending its capture from the
        # start; the server trims the already-processed prefix and
        # replays the rest event-for-event identically.  (The detach
        # wait is optional — a reconnect racing the old session's
        # drain is held at attach until the checkpoint lands.)
        server.wait_for_detach("floor1", timeout=30.0)
        report = SensorSession("floor1", chunks["floor1"]).connect(
            "127.0.0.1", port
        )
        print(f"floor1 resumed and completed: {report.frames} frames")

        for thread in threads:
            thread.join()
        server.wait_for_sessions(3)

        # --- 3. One shared database, deterministically merged -------
        stats = server.stats()
        print(f"\nserved {stats.frames} frames from "
              f"{len(stats.sensors)} sensors "
              f"(peak queue depth {stats.queue_peak} chunks)")
        for sensor in stats.sensors:
            print(f"  {sensor.sensor}: {sensor.frames} frames, "
                  f"{sensor.windows_closed} windows closed")

        store = server.publish(workdir / "refs.db")

    loaded = load_database(store)
    print(f"\npublished {len(loaded.database.devices)} reference devices "
          f"-> {store}")
    for device in sorted(loaded.database.devices, key=str):
        print(f"  {device}")


if __name__ == "__main__":
    main()
