#!/usr/bin/env python3
"""Rogue access-point detection (paper Section VII-B2).

A hot-spot operator publishes the signature of its genuine AP.  Later,
an attacker stands up a rogue AP (AirSnarf-style) broadcasting the same
identity from different hardware.  The client's routine fingerprint
check — restricted to the AP's *own* frames, excluding forwarded data,
as the paper prescribes — flags the mismatch.

Run:  python examples/rogue_ap_detection.py
"""

from __future__ import annotations

from repro.applications import RogueApDetector, spoof_mac
from repro.core import FrameSize
from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic


def _run_hotspot(ap_profile: str, beacon_size: int, seed: int):
    scenario = Scenario(
        duration_s=120.0,
        seed=seed,
        ap_profile=ap_profile,
        ap_beacon_size=beacon_size,
    )
    scenario.add_station(
        StationSpec(
            name="guest",
            profile="intel-2200bg-linux",
            sources=[CbrTraffic(interval_ms=5), WebTraffic(mean_think_s=2.0)],
            downlink=[WebTraffic(mean_think_s=1.5, mean_burst_frames=18)],
        )
    )
    result = scenario.run()
    ap = next(mac for mac, name in result.station_names.items() if name == "ap-0")
    return result.captures, ap


def main() -> None:
    # The genuine hot-spot AP, captured during installation.
    genuine_frames, genuine_ap = _run_hotspot(
        "atheros-ar9285-ath9k", beacon_size=180, seed=61
    )
    print(f"genuine AP: {genuine_ap} (atheros-ar9285-ath9k, 180-byte beacons)")

    detector = RogueApDetector(parameter=FrameSize(), min_observations=50)
    half = 60e6
    assert detector.learn(
        [c for c in genuine_frames if c.timestamp_us < half], genuine_ap
    )
    print("operator published the AP's signature (learning stage)")

    # Routine check against the genuine AP.
    verdict = detector.check(
        [c for c in genuine_frames if c.timestamp_us >= half], genuine_ap
    )
    print(
        f"\n[later, same AP]      similarity {verdict.similarity:.3f} "
        f"-> {'ROGUE!' if verdict.is_rogue else 'genuine'}"
    )

    # An attacker impersonates the AP with different hardware and a
    # slightly different beacon IE set.
    rogue_frames, rogue_ap = _run_hotspot(
        "broadcom-4318-win", beacon_size=212, seed=62
    )
    impersonated = spoof_mac(rogue_frames, rogue_ap, genuine_ap)
    verdict = detector.check(impersonated, genuine_ap)
    print(
        f"[rogue AP, same MAC]  similarity {verdict.similarity:.3f} "
        f"-> {'ROGUE!' if verdict.is_rogue else 'genuine'}"
    )


if __name__ == "__main__":
    main()
