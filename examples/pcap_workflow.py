#!/usr/bin/env python3
"""The paper's tool workflow on standard pcap files (Section V-C).

Simulates an office dataset, writes it as a radiotap pcap (the format a
real monitor-mode capture produces), then runs the learning and
detection phases purely from the on-disk file — interchangeable with a
capture from a real wireless card.

Run:  python examples/pcap_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import (
    DetectionConfig,
    InterArrivalTime,
    ReferenceDatabase,
    SignatureBuilder,
)
from repro.core.detection import (
    evaluate_identification,
    evaluate_similarity,
    extract_window_candidates,
)
from repro.traces import Trace
from repro.traces.datasets import _spec, build_dataset


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-pcap-"))
    pcap_path = workdir / "office-small.pcap"

    # --- Produce a monitor capture on disk ---------------------------
    spec = _spec("office2", scale=0.25)
    trace = build_dataset(spec)
    count = trace.to_pcap(pcap_path)
    size_kib = pcap_path.stat().st_size / 1024
    print(f"wrote {count} frames ({size_kib:.0f} KiB) to {pcap_path}")

    # --- Reload it as a third party would -----------------------------
    loaded = Trace.from_pcap(pcap_path, name="office-small", encrypted=True)
    print(f"reloaded {len(loaded)} frames, {len(loaded.senders())} senders")

    # --- Learning + detection straight from the pcap ------------------
    config = DetectionConfig(window_s=120.0, min_observations=50)
    builder = SignatureBuilder(InterArrivalTime(), min_observations=50)
    split = loaded.split(training_s=spec.training_s * 0.25)
    database = ReferenceDatabase.from_training(builder, split.training.frames)
    candidates = extract_window_candidates(split.validation, builder, database, config)
    similarity = evaluate_similarity(candidates, database, config)
    identification = evaluate_identification(candidates, database, config)

    print(f"\nreference devices: {len(database)}")
    print(f"candidate signatures: {len(candidates)}")
    print(f"similarity-test AUC: {similarity.auc:.3f}")
    print(f"identification ratio @ FPR 0.1: "
          f"{identification.ratio_at_fpr(0.1):.3f}")
    print(f"\n(the same file works with the CLI: "
          f"repro-80211 evaluate {pcap_path} --training-s "
          f"{spec.training_s * 0.25:.0f} --window-s 120)")


if __name__ == "__main__":
    main()
