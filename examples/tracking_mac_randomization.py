#!/usr/bin/env python3
"""Tracking devices across MAC randomisation (paper Section VII-B3).

The paper's privacy warning: "the generated signature may be used to
trace a user's locations, even in cases where the device regularly
changes its MAC address in order to stay anonymous."

Here three devices are first observed under their real addresses; in
later observation windows each presents a fresh randomised
(locally-administered) MAC per window.  The tracker links the
pseudonyms back to the learnt signatures.

Run:  python examples/tracking_mac_randomization.py
"""

from __future__ import annotations

import random

from repro.applications import DeviceTracker, spoof_mac
from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic


def main() -> None:
    scenario = Scenario(duration_s=240.0, seed=47, encrypted=True)
    profiles_and_traffic = [
        ("intel-2200bg-linux", [CbrTraffic(interval_ms=9)]),
        ("broadcom-4318-win", [WebTraffic(mean_think_s=1.5)]),
        ("apple-bcm4321-osx", [CbrTraffic(interval_ms=14), WebTraffic(mean_think_s=3.0)]),
    ]
    for index, (profile, sources) in enumerate(profiles_and_traffic):
        scenario.add_station(
            StationSpec(name=f"device-{index}", profile=profile, sources=sources)
        )
    result = scenario.run()
    macs = {name: mac for mac, name in result.station_names.items()
            if name.startswith("device-")}

    # --- Learning: devices observed under their true addresses -------
    boundary_us = 120e6
    training = [c for c in result.captures if c.timestamp_us < boundary_us]
    tracker = DeviceTracker(min_observations=50, link_threshold=0.4)
    learnt = tracker.learn(training)
    print(f"learnt {learnt} signatures during the open observation phase")

    # --- Later: every device randomises its MAC per window ----------
    rng = random.Random(3)
    later = [c for c in result.captures if c.timestamp_us >= boundary_us]
    window_length_us = 60e6
    windows = []
    truth: dict = {}
    for window_index in range(2):
        start = boundary_us + window_index * window_length_us
        window = [
            c for c in later if start <= c.timestamp_us < start + window_length_us
        ]
        for name, real_mac in macs.items():
            pseudonym = real_mac.randomized(rng)
            truth[pseudonym] = real_mac
            window = spoof_mac(window, real_mac, pseudonym)
        windows.append(window)

    report = tracker.track(windows)
    print(f"\n{len(report.links)} pseudonymous identities observed:")
    name_of = {mac: name for name, mac in macs.items()}
    for link in report.links:
        linked = (
            name_of.get(link.linked_device, str(link.linked_device))
            if link.linked_device
            else "(unlinked)"
        )
        correct = "✓" if truth.get(link.pseudonym) == link.linked_device else "✗"
        print(
            f"  window {link.window_index}: {link.pseudonym} -> {linked:12s} "
            f"(similarity {link.similarity:.3f}) {correct}"
        )
    accuracy = report.linking_accuracy(truth)
    print(f"\nlinking accuracy: {accuracy * 100:.0f}% — MAC randomisation "
          "alone does not anonymise a device")


if __name__ == "__main__":
    main()
