#!/usr/bin/env python3
"""Quickstart: simulate a small office, fingerprint its devices.

Simulates three client stations with different wireless cards on an
encrypted (WPA) network, captures the channel with a monitor, learns
reference signatures from the first 40 seconds and then identifies
every device in 20-second detection windows — the paper's workflow in
miniature.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    DetectionConfig,
    InterArrivalTime,
    ReferenceDatabase,
    SignatureBuilder,
)
from repro.core.matcher import best_match
from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic
from repro.traces import Trace


def main() -> None:
    # --- 1. Simulate an encrypted office network --------------------
    scenario = Scenario(duration_s=120.0, seed=11, encrypted=True)
    scenario.add_station(
        StationSpec(
            name="video-laptop",
            profile="intel-2200bg-linux",
            sources=[CbrTraffic(interval_ms=20)],  # streaming-like load
        )
    )
    scenario.add_station(
        StationSpec(
            name="browsing-laptop",
            profile="broadcom-4318-win",
            sources=[WebTraffic(mean_think_s=4.0)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="background-netbook",
            profile="atheros-ar5212-madwifi",
            sources=[CbrTraffic(interval_ms=60), WebTraffic(mean_think_s=8.0)],
        )
    )
    result = scenario.run()
    trace = Trace(
        frames=result.captures,
        name="quickstart-office",
        encrypted=True,
        device_names=result.station_names,
    )
    print(f"captured {len(trace)} frames over {trace.duration_s:.0f}s "
          f"from {len(trace.senders())} senders")

    # --- 2. Learning phase: build the reference database ------------
    builder = SignatureBuilder(InterArrivalTime(), min_observations=50)
    split = trace.split(training_s=40.0)
    database = ReferenceDatabase.from_training(builder, split.training.frames)
    print(f"learnt {len(database)} reference signatures:")
    for device in database:
        print(f"  {device}  ({trace.device_names.get(device, '?')})")

    # --- 3. Detection phase: identify devices per window ------------
    config = DetectionConfig(window_s=20.0, min_observations=50)
    correct = total = 0
    for index, window in enumerate(split.validation.windows(config.window_s)):
        for device, signature in builder.build(window.frames).items():
            if device not in database:
                continue
            winner, score = best_match(signature, database)
            verdict = "ok " if winner == device else "MISS"
            total += 1
            correct += winner == device
            print(
                f"window {index}: {trace.device_names.get(device, device)} "
                f"-> {trace.device_names.get(winner, winner)} "
                f"(similarity {score:.3f}) [{verdict}]"
            )
    print(f"\nidentification accuracy: {correct}/{total} "
          f"({100 * correct / max(total, 1):.0f}%)")


if __name__ == "__main__":
    main()
