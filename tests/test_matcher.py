"""Unit tests for Algorithm 1 and the reference database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase
from repro.core.matcher import best_match, match_signature
from repro.core.signature import Signature

A = MacAddress.parse("00:13:e8:00:00:0a")
B = MacAddress.parse("00:18:f8:00:00:0b")
C = MacAddress.parse("00:14:a4:00:00:0c")


def sig(histograms: dict[str, list[float]], weights: dict[str, float] | None = None) -> Signature:
    arrays = {k: np.array(v, dtype=float) for k, v in histograms.items()}
    if weights is None:
        weights = {k: 1.0 / len(arrays) for k in arrays}
    return Signature(histograms=arrays, weights=weights)


class TestDatabase:
    def test_add_get_remove(self):
        database = ReferenceDatabase()
        signature = sig({"Data": [1, 0]})
        database.add(A, signature)
        assert A in database
        assert database.get(A) is signature
        assert len(database) == 1
        database.remove(A)
        assert A not in database

    def test_from_training(self, small_office_trace):
        from repro.core.parameters import InterArrivalTime
        from repro.core.signature import SignatureBuilder

        builder = SignatureBuilder(InterArrivalTime(), min_observations=50)
        database = ReferenceDatabase.from_training(builder, small_office_trace.frames)
        assert len(database) >= 3  # three clients (+ possibly the AP)


class TestAlgorithm1:
    def test_perfect_match_scores_total_weight(self):
        database = ReferenceDatabase()
        database.add(A, sig({"Data": [1, 0, 0], "RTS": [0, 1, 0]},
                            {"Data": 0.75, "RTS": 0.25}))
        candidate = sig({"Data": [1, 0, 0], "RTS": [0, 1, 0]})
        scores = match_signature(candidate, database)
        assert scores[A] == pytest.approx(1.0)

    def test_reference_weights_used(self):
        database = ReferenceDatabase()
        # Reference weights Data heavily; candidate matches only RTS.
        database.add(A, sig({"Data": [1, 0], "RTS": [0, 1]},
                            {"Data": 0.9, "RTS": 0.1}))
        candidate = sig({"Data": [0, 1], "RTS": [0, 1]})
        scores = match_signature(candidate, database)
        assert scores[A] == pytest.approx(0.1)

    def test_missing_reference_type_contributes_zero(self):
        database = ReferenceDatabase()
        database.add(A, sig({"Data": [1, 0]}))
        candidate = sig({"Probe Request": [1, 0]})
        assert match_signature(candidate, database)[A] == 0.0

    def test_ranking(self):
        database = ReferenceDatabase()
        database.add(A, sig({"Data": [1, 0, 0, 0]}))
        database.add(B, sig({"Data": [0.5, 0.5, 0, 0]}))
        database.add(C, sig({"Data": [0, 0, 0, 1]}))
        candidate = sig({"Data": [0.9, 0.1, 0, 0]})
        scores = match_signature(candidate, database)
        assert scores[A] > scores[B] > scores[C]

    def test_empty_database(self):
        assert match_signature(sig({"Data": [1, 0]}), ReferenceDatabase()) == {}


class TestBestMatch:
    def test_winner(self):
        database = ReferenceDatabase()
        database.add(A, sig({"Data": [1, 0]}))
        database.add(B, sig({"Data": [0, 1]}))
        winner, score = best_match(sig({"Data": [0.95, 0.05]}), database)
        assert winner == A
        assert score > 0.9

    def test_empty_database(self):
        winner, score = best_match(sig({"Data": [1, 0]}), ReferenceDatabase())
        assert winner is None and score == 0.0

    def test_deterministic_tie_break(self):
        database = ReferenceDatabase()
        database.add(B, sig({"Data": [1, 0]}))
        database.add(A, sig({"Data": [1, 0]}))
        winner, _score = best_match(sig({"Data": [1, 0]}), database)
        assert winner == B  # first registered wins ties
