"""Unit tests for curves, AUC and identification metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    CurvePoint,
    IdentificationCurve,
    IdentificationPoint,
    SimilarityCurve,
    area_under_curve,
)


class TestAuc:
    def test_perfect_classifier(self):
        assert area_under_curve([0.0], [1.0]) == pytest.approx(1.0)

    def test_diagonal_is_half(self):
        fpr = [0.25, 0.5, 0.75]
        assert area_under_curve(fpr, fpr) == pytest.approx(0.5)

    def test_inverted_classifier_below_half(self):
        assert area_under_curve([0.5], [0.1]) < 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            area_under_curve([0.1], [0.2, 0.3])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1, allow_nan=False),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            max_size=30,
        )
    )
    def test_auc_bounded(self, points):
        fpr = [p[0] for p in points]
        tpr = [p[1] for p in points]
        assert 0.0 <= area_under_curve(fpr, tpr) <= 1.0 + 1e-9


class TestSimilarityCurve:
    def test_points_sorted_by_fpr(self):
        curve = SimilarityCurve(
            points=[
                CurvePoint(threshold=0.1, tpr=0.9, fpr=0.8),
                CurvePoint(threshold=0.9, tpr=0.2, fpr=0.05),
            ]
        )
        assert curve.points[0].fpr < curve.points[1].fpr

    def test_tpr_at_fpr_budget(self):
        curve = SimilarityCurve(
            points=[
                CurvePoint(threshold=0.9, tpr=0.3, fpr=0.01),
                CurvePoint(threshold=0.5, tpr=0.7, fpr=0.09),
                CurvePoint(threshold=0.1, tpr=0.95, fpr=0.4),
            ]
        )
        assert curve.tpr_at_fpr(0.1) == pytest.approx(0.7)
        assert curve.tpr_at_fpr(0.005) == 0.0
        assert curve.tpr_at_fpr(1.0) == pytest.approx(0.95)

    def test_as_arrays(self):
        curve = SimilarityCurve(points=[CurvePoint(0.5, 0.6, 0.2)])
        fpr, tpr = curve.as_arrays()
        assert fpr.tolist() == [0.2]
        assert tpr.tolist() == [0.6]


class TestIdentificationCurve:
    def test_ratio_at_fpr(self):
        curve = IdentificationCurve(
            points=[
                IdentificationPoint(threshold=0.95, identification_ratio=0.2, fpr=0.0),
                IdentificationPoint(threshold=0.7, identification_ratio=0.5, fpr=0.05),
                IdentificationPoint(threshold=0.2, identification_ratio=0.8, fpr=0.3),
            ]
        )
        assert curve.ratio_at_fpr(0.01) == pytest.approx(0.2)
        assert curve.ratio_at_fpr(0.1) == pytest.approx(0.5)
        assert curve.ratio_at_fpr(0.5) == pytest.approx(0.8)

    def test_empty_curve(self):
        assert IdentificationCurve(points=[]).ratio_at_fpr(0.1) == 0.0
