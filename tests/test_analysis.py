"""Tests for the Section VI factor experiments and text rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.factors import (
    backoff_experiment,
    psm_experiment,
    rate_experiment,
    rts_experiment,
    services_experiment,
    timeline_interarrivals,
)
from repro.analysis.plots import render_curve, render_histogram, render_table
from repro.core.histogram import UniformBins
from repro.dot11.mac import MacAddress
from tests.conftest import make_data_capture

A = MacAddress.parse("00:13:e8:00:00:0a")
B = MacAddress.parse("00:18:f8:00:00:0b")
AP = MacAddress.parse("00:0f:b5:00:00:01")


class TestTimelineInterarrivals:
    def test_full_timeline_previous_frame(self):
        frames = [
            make_data_capture(1000.0, B, AP),
            make_data_capture(1400.0, A, AP),
            make_data_capture(2000.0, A, AP),
        ]
        values = timeline_interarrivals(frames, A)
        assert values.tolist() == [pytest.approx(400.0), pytest.approx(600.0)]

    def test_predicate_restricts_observations(self):
        frames = [
            make_data_capture(1000.0, A, AP, rate=54.0),
            make_data_capture(1500.0, A, AP, rate=11.0),
            make_data_capture(2100.0, A, AP, rate=54.0),
        ]
        values = timeline_interarrivals(
            frames, A, lambda c: c.rate_mbps == 54.0
        )
        assert values.tolist() == [pytest.approx(600.0)]


class TestBackoffExperiment:
    def test_devices_distinguishable(self):
        result = backoff_experiment(duration_s=4.0)
        assert set(result.histograms) == {"device-1", "device-2"}
        assert result.observation_counts["device-1"] > 200
        assert result.distinctiveness() > 0.02

    def test_early_slot_visible(self):
        """Device 2's extra early slot puts mass before device 1's
        earliest possible access time."""
        result = backoff_experiment(duration_s=4.0)
        h1 = result.histograms["device-1"]
        h2 = result.histograms["device-2"]
        first_1 = int(np.argmax(h1 > 0))
        first_2 = int(np.argmax(h2 > 0))
        assert first_2 < first_1

    def test_slot_comb_structure(self):
        """Saturated inter-arrivals form a comb at the slot spacing."""
        result = backoff_experiment(duration_s=4.0)
        h1 = result.histograms["device-1"]
        occupied = np.flatnonzero(h1 > 0.005)
        assert len(occupied) >= 8  # many slots visible
        # Gaps between occupied bins cluster at the 20 µs slot / 4 µs bin.
        gaps = np.diff(occupied)
        assert np.median(gaps) == pytest.approx(5, abs=1)


class TestRtsExperiment:
    def test_settings_change_histogram(self):
        result = rts_experiment(duration_s=8.0)
        assert set(result.histograms) == {"rts-off", "rts-2000"}
        assert result.distinctiveness() > 0.05

    def test_rts_mode_shifts_mass_down(self):
        """With RTS on, data frames follow SIFS-spaced CTS, so the
        data-frame inter-arrival concentrates at short values."""
        result = rts_experiment(duration_s=8.0)
        bins = result.bins
        centre = lambda h: float(
            np.sum(h * (np.arange(len(h)) * bins.width + bins.lo))
        )
        assert centre(result.histograms["rts-2000"]) < centre(
            result.histograms["rts-off"]
        )


class TestRateExperiment:
    def test_rate_distributions_differ(self):
        result = rate_experiment(duration_s=6.0)
        stable, stable_bins = result.companions["device-1-rates"]
        switching, _ = result.companions["device-2-rates"]
        # Device 1 concentrates on one rate; device 2 spreads.
        assert (stable > 0.01).sum() <= 2
        assert (switching > 0.01).sum() >= 3

    def test_interarrival_signatures_differ(self):
        result = rate_experiment(duration_s=6.0)
        assert result.distinctiveness() > 0.05


class TestServicesExperiment:
    def test_identical_netbooks_separable(self):
        result = services_experiment(duration_s=240.0)
        assert result.observation_counts["netbook-1"] > 10
        assert result.observation_counts["netbook-2"] > 10
        assert result.distinctiveness() > 0.1


class TestPsmExperiment:
    def test_cards_produce_null_frames(self):
        result = psm_experiment(duration_s=240.0)
        assert result.observation_counts["card-1"] > 10
        assert result.observation_counts["card-2"] > 10


class TestRendering:
    def test_histogram_bars(self):
        bins = UniformBins(lo=0, hi=40, width=10)
        text = render_histogram(
            np.array([0.5, 0.25, 0.25, 0.0]), bins, title="demo"
        )
        assert "demo" in text
        assert "[0,10)" in text
        assert "█" in text

    def test_histogram_csv(self):
        bins = UniformBins(lo=0, hi=20, width=10)
        csv = render_histogram(np.array([0.4, 0.6]), bins, as_csv=True)
        lines = csv.splitlines()
        assert lines[0] == "bin,frequency"
        assert len(lines) == 3

    def test_histogram_shape_validation(self):
        bins = UniformBins(lo=0, hi=20, width=10)
        with pytest.raises(ValueError):
            render_histogram(np.zeros(5), bins)

    def test_curve_listing(self):
        text = render_curve([0.0, 0.5, 1.0], [0.0, 0.8, 1.0])
        assert "FPR" in text and "TPR" in text
        assert "0.8000" in text

    def test_curve_csv(self):
        csv = render_curve([0.1], [0.9], as_csv=True)
        assert csv.splitlines()[1] == "0.100000,0.900000"

    def test_curve_empty(self):
        assert "empty" in render_curve([], [])

    def test_table(self):
        text = render_table(
            ["name", "auc"], [["office", "0.95"], ["conference", "0.88"]],
            title="Table II",
        )
        assert "Table II" in text
        assert "conference" in text

    def test_table_width_validation(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])
