"""Golden-pinned evaluation-matrix cells.

Two layers of pinning make the matrix a CI-gated correctness surface:

* the **office-baseline** cells must reproduce the PR 3 golden numbers
  (``tests/golden/evaluate_small_office.json``) *through the new
  harness* — same scenario, same protocol, new plumbing, bit-for-bit;
* two new scenarios (**lecture-hall**, **iot-swarm**) get their own
  golden files across all five parameters, regenerable with::

      REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_matrix.py

The floats are pure float64 pipeline outputs of deterministic
simulations; atol 1e-9 absorbs at most summation-order noise from a
legitimate refactor.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.evaluation import SimulationCache, run_matrix

GOLDEN_DIR = Path(__file__).parent / "golden"
OFFICE_GOLDEN = GOLDEN_DIR / "evaluate_small_office.json"
PINNED_SCENARIOS = ("lecture-hall", "iot-swarm")


@pytest.fixture(scope="module")
def matrix_cache() -> SimulationCache:
    """One simulation per scenario across this module's tests."""
    return SimulationCache()


def golden_path(scenario: str) -> Path:
    return GOLDEN_DIR / f"matrix_{scenario.replace('-', '_')}.json"


def test_office_baseline_reproduces_pr3_golden(matrix_cache):
    """The original golden numbers survive the trip through the matrix
    harness exactly — same floats, same counts."""
    matrix = run_matrix(
        scenarios=["office-baseline"], measures=["cosine"], cache=matrix_cache
    )
    golden = json.loads(OFFICE_GOLDEN.read_text())["parameters"]
    assert {cell.parameter for cell in matrix.cells} == set(golden)
    for cell in matrix.cells:
        expected = golden[cell.parameter]
        assert cell.auc == expected["auc"]
        assert cell.identification_at_0_01 == expected["identification_at_0.01"]
        assert cell.identification_at_0_1 == expected["identification_at_0.1"]
        assert cell.reference_devices == expected["reference_devices"]
        assert cell.known_candidates == expected["known_candidates"]
        assert cell.total_candidates == expected["total_candidates"]


@pytest.mark.parametrize("scenario", PINNED_SCENARIOS)
def test_matrix_cells_match_golden_file(scenario, matrix_cache):
    matrix = run_matrix(
        scenarios=[scenario], measures=["cosine"], cache=matrix_cache
    )
    path = golden_path(scenario)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.write_text(
            json.dumps(matrix.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"golden file regenerated at {path}")
    golden = {
        (raw["scenario"], raw["parameter"], raw["measure"]): raw
        for raw in json.loads(path.read_text())["cells"]
    }
    produced = {
        (cell.scenario, cell.parameter, cell.measure): cell.to_payload()
        for cell in matrix.cells
    }
    assert set(produced) == set(golden), "cell grid drifted"
    for key, expected in golden.items():
        got = produced[key]
        for field, value in expected.items():
            if isinstance(value, float):
                assert got[field] == pytest.approx(value, abs=1e-9), (
                    f"{key} {field}: {got[field]!r} drifted from {value!r}"
                )
            else:
                assert got[field] == value, (
                    f"{key} {field}: {got[field]!r} != golden {value!r}"
                )


@pytest.mark.parametrize("scenario", PINNED_SCENARIOS)
def test_golden_matrix_is_discriminative(scenario):
    """Guard against a regenerated-but-degenerate golden file: the
    pinned scenarios must separate devices well above chance."""
    cells = json.loads(golden_path(scenario).read_text())["cells"]
    assert len(cells) == 5, "expected one cell per parameter"
    for cell in cells:
        assert cell["measure"] == "cosine"
        assert cell["auc"] > 0.75, f"{cell['parameter']} golden AUC suspiciously low"
        assert cell["reference_devices"] >= 5
        assert cell["total_candidates"] > 0
