"""Unit and property tests for the Radiotap codec."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.phy import ALL_RATES
from repro.radiotap.fields import (
    align_offset,
    channel_from_frequency,
    channel_frequency_mhz,
    decode_rate,
    encode_rate,
)
from repro.radiotap.parser import RadiotapError, parse_radiotap
from repro.radiotap.writer import build_radiotap


class TestAlignment:
    @pytest.mark.parametrize(
        "offset,align,expected",
        [(0, 8, 0), (1, 8, 8), (8, 8, 8), (9, 2, 10), (13, 4, 16), (5, 1, 5)],
    )
    def test_align_offset(self, offset, align, expected):
        assert align_offset(offset, align) == expected

    def test_align_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            align_offset(4, 0)


class TestChannelMapping:
    def test_channel_6(self):
        assert channel_frequency_mhz(6) == 2437

    def test_channel_14_special_case(self):
        assert channel_frequency_mhz(14) == 2484
        assert channel_from_frequency(2484) == 14

    @given(st.integers(min_value=1, max_value=14))
    def test_round_trip(self, channel):
        assert channel_from_frequency(channel_frequency_mhz(channel)) == channel

    def test_invalid_channel(self):
        with pytest.raises(ValueError):
            channel_frequency_mhz(15)
        with pytest.raises(ValueError):
            channel_from_frequency(5180)


class TestRateEncoding:
    @given(st.sampled_from(ALL_RATES))
    def test_round_trip(self, rate):
        assert decode_rate(encode_rate(rate)) == rate

    def test_half_mbps_units(self):
        assert encode_rate(5.5) == 11

    def test_non_encodable_rejected(self):
        with pytest.raises(ValueError):
            encode_rate(5.3)
        with pytest.raises(ValueError):
            encode_rate(200.0)

    def test_decode_zero_rejected(self):
        with pytest.raises(ValueError):
            decode_rate(0)


class TestHeaderRoundTrip:
    def test_full_header(self):
        raw = build_radiotap(
            tsft_us=123_456_789,
            rate_mbps=48.0,
            channel=11,
            antenna_signal_dbm=-61,
            short_preamble=True,
        )
        header = parse_radiotap(raw + b"\x00" * 10)
        assert header.tsft_us == 123_456_789
        assert header.rate_mbps == 48.0
        assert header.channel == 11
        assert header.antenna_signal_dbm == -61
        assert header.has_fcs

    def test_minimal_header(self):
        raw = build_radiotap()
        header = parse_radiotap(raw)
        assert header.tsft_us is None
        assert header.rate_mbps is None
        assert header.length == len(raw)

    def test_tsft_alignment_padding(self):
        # TSFT needs 8-byte alignment: header starts at offset 8 so no
        # padding, but Flags after it must not corrupt parsing.
        raw = build_radiotap(tsft_us=1, rate_mbps=54.0)
        header = parse_radiotap(raw)
        assert header.tsft_us == 1
        assert header.rate_mbps == 54.0

    @given(
        tsft=st.one_of(st.none(), st.integers(min_value=0, max_value=2**63)),
        rate=st.one_of(st.none(), st.sampled_from(ALL_RATES)),
        channel=st.one_of(st.none(), st.integers(min_value=1, max_value=14)),
        signal=st.one_of(st.none(), st.integers(min_value=-110, max_value=0)),
    )
    def test_round_trip_property(self, tsft, rate, channel, signal):
        raw = build_radiotap(
            tsft_us=tsft, rate_mbps=rate, channel=channel, antenna_signal_dbm=signal
        )
        header = parse_radiotap(raw)
        assert header.tsft_us == tsft
        assert header.rate_mbps == rate
        assert header.channel == channel
        assert header.antenna_signal_dbm == signal
        assert header.length == len(raw)


class TestMalformedInput:
    def test_too_short(self):
        with pytest.raises(RadiotapError):
            parse_radiotap(b"\x00\x00\x08")

    def test_bad_version(self):
        raw = bytearray(build_radiotap())
        raw[0] = 1
        with pytest.raises(RadiotapError):
            parse_radiotap(bytes(raw))

    def test_length_overrun(self):
        raw = bytearray(build_radiotap(rate_mbps=54.0))
        struct.pack_into("<H", raw, 2, len(raw) + 50)
        with pytest.raises(RadiotapError):
            parse_radiotap(bytes(raw))

    def test_unknown_field_bit(self):
        # Present bit 18 (MCS) is not in the supported table.
        raw = bytearray(build_radiotap(rate_mbps=54.0))
        (present,) = struct.unpack_from("<I", raw, 4)
        struct.pack_into("<I", raw, 4, present | (1 << 18))
        with pytest.raises(RadiotapError):
            parse_radiotap(bytes(raw))

    def test_truncated_present_chain(self):
        # EXT bit set but no following present word.
        raw = struct.pack("<BBHI", 0, 0, 8, 1 << 31)
        with pytest.raises(RadiotapError):
            parse_radiotap(raw)
