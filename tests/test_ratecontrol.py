"""Unit tests for the rate-adaptation algorithms."""

from __future__ import annotations

import random

from repro.dot11.phy import PHY_BG
from repro.simulator.channel import ChannelModel
from repro.simulator.ratecontrol import (
    AarfRateControl,
    ArfRateControl,
    FixedRateControl,
    JitteryRateControl,
    SnrRateControl,
)


class TestFixed:
    def test_never_moves(self):
        control = FixedRateControl(54.0)
        for _ in range(20):
            control.on_result(False)
        assert control.current_rate() == 54.0


class TestArf:
    def test_steps_up_after_successes(self):
        control = ArfRateControl(PHY_BG, initial_rate=24.0, success_threshold=10)
        for _ in range(10):
            control.on_result(True)
        assert control.current_rate() == 36.0

    def test_steps_down_after_failures(self):
        control = ArfRateControl(PHY_BG, initial_rate=24.0, failure_threshold=2)
        control.on_result(False)
        assert control.current_rate() == 24.0  # one failure not enough
        control.on_result(False)
        assert control.current_rate() == 18.0

    def test_success_resets_failure_count(self):
        control = ArfRateControl(PHY_BG, initial_rate=24.0, failure_threshold=2)
        control.on_result(False)
        control.on_result(True)
        control.on_result(False)
        assert control.current_rate() == 24.0

    def test_bounded_at_top(self):
        control = ArfRateControl(PHY_BG, initial_rate=54.0, success_threshold=1)
        for _ in range(5):
            control.on_result(True)
        assert control.current_rate() == 54.0

    def test_bounded_at_bottom(self):
        control = ArfRateControl(PHY_BG, initial_rate=1.0, failure_threshold=1)
        for _ in range(5):
            control.on_result(False)
        assert control.current_rate() == 1.0


class TestAarf:
    def test_threshold_doubles_after_failed_probe(self):
        control = AarfRateControl(
            PHY_BG, initial_rate=24.0, success_threshold=10, failure_threshold=2
        )
        for _ in range(10):
            control.on_result(True)
        assert control.current_rate() == 36.0
        control.on_result(False)
        control.on_result(False)
        assert control.current_rate() == 24.0
        assert control.success_threshold == 20

    def test_threshold_capped(self):
        control = AarfRateControl(
            PHY_BG, initial_rate=24.0, success_threshold=10, max_threshold=40
        )
        for _round in range(5):
            for _ in range(control.success_threshold):
                control.on_result(True)
            control.on_result(False)
            control.on_result(False)
        assert control.success_threshold <= 40


class TestSnr:
    def test_follows_snr_with_hysteresis(self):
        channel = ChannelModel()
        control = SnrRateControl(PHY_BG, channel, initial_rate=54.0, hold=3)
        for _ in range(2):
            control.on_snr_hint(10.0)
        assert control.current_rate() == 54.0  # not yet: hold = 3
        control.on_snr_hint(10.0)
        assert control.current_rate() < 54.0

    def test_failure_steps_down(self):
        channel = ChannelModel()
        control = SnrRateControl(PHY_BG, channel, initial_rate=54.0)
        control.on_result(False)
        assert control.current_rate() == 48.0

    def test_oscillating_hints_hold(self):
        channel = ChannelModel()
        control = SnrRateControl(PHY_BG, channel, initial_rate=54.0, hold=3)
        for snr in (40.0, 10.0, 40.0, 10.0, 40.0, 10.0):
            control.on_snr_hint(snr)
        assert control.current_rate() == 54.0


class TestJittery:
    def test_probes_random_rates(self):
        rng = random.Random(4)
        inner = FixedRateControl(54.0)
        control = JitteryRateControl(inner, PHY_BG, rng, probe_probability=0.5)
        rates = {control.current_rate() for _ in range(200)}
        assert len(rates) > 3  # samples across the ladder

    def test_zero_probability_is_transparent(self):
        rng = random.Random(4)
        control = JitteryRateControl(
            FixedRateControl(54.0), PHY_BG, rng, probe_probability=0.0
        )
        assert all(control.current_rate() == 54.0 for _ in range(50))

    def test_probability_validation(self):
        import pytest

        rng = random.Random(4)
        with pytest.raises(ValueError):
            JitteryRateControl(FixedRateControl(54.0), PHY_BG, rng, probe_probability=1.5)
