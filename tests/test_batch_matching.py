"""Equivalence tests for the vectorized batch matching engine.

The batch matrix formulation (packed database + matrix products) must
reproduce the scalar Algorithm 1 loop bit-for-bit up to float rounding
(atol 1e-9): per-candidate via :func:`match_signature`'s fast path and
row-wise via :func:`batch_match_signatures`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dot11.mac import MacAddress, vendor_mac
from repro.core.database import PackedDatabase, ReferenceDatabase
from repro.core.matcher import (
    _scalar_match,
    batch_match_signatures,
    best_match,
    match_signature,
)
from repro.core.signature import Signature
from repro.core.similarity import (
    cosine_similarity,
    cosine_similarity_matrix,
    intersection_similarity,
    normalize_rows,
)

FRAME_TYPES = ("Data", "Beacon", "RTS", "Probe Request")


def random_signature(rng: np.random.Generator, bins: int = 40) -> Signature:
    """A signature over a random subset of FRAME_TYPES."""
    present = [f for f in FRAME_TYPES if rng.random() < 0.7] or [FRAME_TYPES[0]]
    counts = {f: int(rng.integers(1, 60)) for f in present}
    total = sum(counts.values())
    histograms = {}
    for ftype in present:
        values = rng.random(bins)
        values[rng.random(bins) < 0.5] = 0.0  # sparse support, like real bins
        top = values.sum()
        histograms[ftype] = values / top if top else values
    return Signature(
        histograms=histograms,
        weights={f: counts[f] / total for f in present},
        observation_counts=counts,
    )


def random_database(
    rng: np.random.Generator, devices: int = 30, bins: int = 40
) -> ReferenceDatabase:
    database = ReferenceDatabase()
    for i in range(devices):
        database.add(vendor_mac("00:13:e8", i + 1), random_signature(rng, bins))
    return database


def forced_scalar(candidate, database):
    """Algorithm 1 through the original per-pair loop."""
    return _scalar_match(candidate, database, cosine_similarity)


class TestMatchSignatureFastPath:
    def test_matches_scalar_loop_on_random_databases(self):
        rng = np.random.default_rng(42)
        for _ in range(5):
            database = random_database(rng)
            for _ in range(10):
                candidate = random_signature(rng)
                fast = match_signature(candidate, database)
                slow = forced_scalar(candidate, database)
                assert list(fast) == list(slow)  # same device order
                np.testing.assert_allclose(
                    list(fast.values()), list(slow.values()), atol=1e-9
                )

    def test_non_cosine_measure_uses_scalar_path(self):
        rng = np.random.default_rng(1)
        database = random_database(rng, devices=5)
        candidate = random_signature(rng)
        scores = match_signature(candidate, database, intersection_similarity)
        expected = _scalar_match(candidate, database, intersection_similarity)
        assert scores == expected

    def test_best_match_agrees_with_scalar(self):
        rng = np.random.default_rng(2)
        database = random_database(rng, devices=20)
        for _ in range(10):
            candidate = random_signature(rng)
            winner, score = best_match(candidate, database)
            slow = forced_scalar(candidate, database)
            slow_winner = max(slow, key=lambda d: (slow[d], ))
            # argmax up to float noise: the winner's scores must agree
            assert score == pytest.approx(slow[winner], abs=1e-9)
            assert slow[slow_winner] <= score + 1e-9

    def test_bin_mismatch_raises_like_scalar(self):
        database = ReferenceDatabase()
        database.add(
            vendor_mac("00:13:e8", 1),
            Signature(histograms={"Data": np.array([1.0, 0.0])}, weights={"Data": 1.0}),
        )
        candidate = Signature(
            histograms={"Data": np.array([1.0, 0.0, 0.0])}, weights={"Data": 1.0}
        )
        with pytest.raises(ValueError):
            match_signature(candidate, database)
        with pytest.raises(ValueError):
            forced_scalar(candidate, database)


class TestBatchMatchSignatures:
    def test_rows_equal_match_signature(self):
        rng = np.random.default_rng(3)
        database = random_database(rng)
        candidates = [random_signature(rng) for _ in range(25)]
        matrix = batch_match_signatures(candidates, database)
        assert matrix.shape == (25, len(database))
        for row, candidate in zip(matrix, candidates):
            np.testing.assert_allclose(
                row, list(match_signature(candidate, database).values()), atol=1e-9
            )
            np.testing.assert_allclose(
                row, list(forced_scalar(candidate, database).values()), atol=1e-9
            )

    def test_non_cosine_fallback_matrix(self):
        rng = np.random.default_rng(4)
        database = random_database(rng, devices=6)
        candidates = [random_signature(rng) for _ in range(4)]
        matrix = batch_match_signatures(candidates, database, intersection_similarity)
        for row, candidate in zip(matrix, candidates):
            expected = _scalar_match(candidate, database, intersection_similarity)
            np.testing.assert_allclose(row, list(expected.values()), atol=1e-12)

    def test_empty_database_and_empty_candidates(self):
        rng = np.random.default_rng(5)
        database = random_database(rng, devices=4)
        assert batch_match_signatures([], database).shape == (0, 4)
        empty = ReferenceDatabase()
        candidates = [random_signature(rng)]
        assert batch_match_signatures(candidates, empty).shape == (1, 0)

    def test_candidate_only_frame_type_contributes_zero(self):
        database = ReferenceDatabase()
        database.add(
            vendor_mac("00:13:e8", 1),
            Signature(histograms={"Data": np.array([1.0, 0.0])}, weights={"Data": 1.0}),
        )
        candidate = Signature(
            histograms={"CTS": np.array([0.5, 0.5])}, weights={"CTS": 1.0}
        )
        assert batch_match_signatures([candidate], database)[0, 0] == 0.0


class TestPackedDatabase:
    def test_layout_matches_insertion_order(self):
        rng = np.random.default_rng(6)
        database = random_database(rng, devices=8)
        packed = database.packed()
        assert packed is not None
        assert list(packed.devices) == database.devices
        for ftype, matrix in packed.frequencies.items():
            assert matrix.shape == (8, packed.bin_count(ftype))
            for row, device in enumerate(packed.devices):
                signature = database.get(device)
                histogram = signature.histogram(ftype)
                if histogram is None:
                    assert not matrix[row].any()
                    assert packed.weights[ftype][row] == 0.0
                else:
                    np.testing.assert_array_equal(matrix[row], histogram)
                    assert packed.weights[ftype][row] == signature.weight(ftype)

    def test_cache_invalidation_on_add_and_remove(self):
        rng = np.random.default_rng(7)
        database = random_database(rng, devices=3)
        first = database.packed()
        assert database.packed() is first  # cached
        database.add(vendor_mac("00:13:e8", 99), random_signature(rng))
        second = database.packed()
        assert second is not first and len(second.devices) == 4
        database.remove(vendor_mac("00:13:e8", 99))
        assert len(database.packed().devices) == 3

    def test_empty_database_packs_to_none(self):
        assert ReferenceDatabase().packed() is None

    def test_ragged_bins_fall_back_to_scalar(self):
        database = ReferenceDatabase()
        database.add(
            vendor_mac("00:13:e8", 1),
            Signature(histograms={"Data": np.array([1.0, 0.0])}, weights={"Data": 1.0}),
        )
        database.add(
            vendor_mac("00:13:e8", 2),
            Signature(
                histograms={"Data": np.array([1.0, 0.0, 0.0])}, weights={"Data": 1.0}
            ),
        )
        assert database.packed() is None
        candidate = Signature(
            histograms={"Beacon": np.array([1.0, 0.0])}, weights={"Beacon": 1.0}
        )
        # Candidate avoids the ragged type, so the scalar loop handles it.
        scores = match_signature(candidate, database)
        assert all(score == 0.0 for score in scores.values())


class TestVectorizedCosineKernels:
    def test_cosine_similarity_matrix_matches_scalar(self):
        rng = np.random.default_rng(8)
        candidates = rng.random((7, 12))
        references = rng.random((5, 12))
        references[2] = 0.0  # zero-norm row convention
        matrix = cosine_similarity_matrix(candidates, references)
        for i in range(7):
            for j in range(5):
                assert matrix[i, j] == pytest.approx(
                    cosine_similarity(candidates[i], references[j]), abs=1e-12
                )

    def test_normalize_rows_keeps_zero_rows(self):
        rows = np.array([[3.0, 4.0], [0.0, 0.0]])
        unit = normalize_rows(rows)
        np.testing.assert_allclose(unit[0], [0.6, 0.8])
        assert not unit[1].any()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_similarity_matrix(np.ones((2, 3)), np.ones((2, 4)))
