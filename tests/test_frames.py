"""Unit tests for the 802.11 frame model."""

from __future__ import annotations

import pytest

from repro.dot11.frames import (
    ACK_SIZE,
    CTS_SIZE,
    Dot11Frame,
    FrameSubtype,
    FrameType,
    RTS_SIZE,
    ack_frame,
    cts_frame,
    null_frame,
    rts_frame,
)
from repro.dot11.mac import BROADCAST, MacAddress

A = MacAddress.parse("00:13:e8:00:00:01")
B = MacAddress.parse("00:18:f8:00:00:02")


class TestSubtypeTaxonomy:
    def test_types_of_subtypes(self):
        assert FrameSubtype.BEACON.ftype is FrameType.MANAGEMENT
        assert FrameSubtype.RTS.ftype is FrameType.CONTROL
        assert FrameSubtype.QOS_DATA.ftype is FrameType.DATA

    def test_wire_code_round_trip(self):
        for subtype in FrameSubtype:
            back = FrameSubtype.from_codes(subtype.ftype.value, subtype.subtype_code)
            assert back is subtype

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            FrameSubtype.from_codes(1, 0)  # control subtype 0 not defined

    def test_labels_unique(self):
        labels = [subtype.label for subtype in FrameSubtype]
        assert len(labels) == len(set(labels))

    def test_anonymous_frames(self):
        assert not FrameSubtype.ACK.has_transmitter_address
        assert not FrameSubtype.CTS.has_transmitter_address
        assert FrameSubtype.RTS.has_transmitter_address
        assert FrameSubtype.QOS_DATA.has_transmitter_address


class TestFrameValidation:
    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            Dot11Frame(subtype=FrameSubtype.ACK, size=4)

    def test_ack_with_transmitter_rejected(self):
        with pytest.raises(ValueError):
            Dot11Frame(subtype=FrameSubtype.ACK, size=14, addr1=A, addr2=B)

    def test_transmitter_property(self):
        frame = Dot11Frame(subtype=FrameSubtype.QOS_DATA, size=100, addr1=B, addr2=A)
        assert frame.transmitter == A
        anonymous = Dot11Frame(subtype=FrameSubtype.ACK, size=14, addr1=A)
        assert anonymous.transmitter is None


class TestFrameProperties:
    def test_broadcast_flags(self):
        frame = Dot11Frame(subtype=FrameSubtype.DATA, size=60, addr1=BROADCAST, addr2=A)
        assert frame.is_broadcast and frame.is_multicast

    def test_multicast_not_broadcast(self):
        group = MacAddress.parse("01:00:5e:00:00:01")
        frame = Dot11Frame(subtype=FrameSubtype.DATA, size=60, addr1=group, addr2=A)
        assert frame.is_multicast and not frame.is_broadcast

    def test_null_function_detection(self):
        assert null_frame(A, B, power_save=True).is_null_function
        qos_null = Dot11Frame(subtype=FrameSubtype.QOS_NULL, size=30, addr1=B, addr2=A)
        assert qos_null.is_null_function
        data = Dot11Frame(subtype=FrameSubtype.QOS_DATA, size=100, addr1=B, addr2=A)
        assert not data.is_null_function

    def test_is_data(self):
        assert Dot11Frame(subtype=FrameSubtype.QOS_NULL, size=30, addr1=B, addr2=A).is_data
        assert not Dot11Frame(subtype=FrameSubtype.BEACON, size=120, addr1=BROADCAST, addr2=A).is_data

    def test_ftype_key_matches_label(self):
        frame = Dot11Frame(subtype=FrameSubtype.PROBE_REQUEST, size=100, addr1=BROADCAST, addr2=A)
        assert frame.ftype_key == "Probe Request"


class TestBuilders:
    def test_ack_builder(self):
        ack = ack_frame(A)
        assert ack.size == ACK_SIZE
        assert ack.addr1 == A
        assert ack.transmitter is None

    def test_cts_builder(self):
        cts = cts_frame(A, duration_us=300)
        assert cts.size == CTS_SIZE
        assert cts.duration_us == 300

    def test_rts_builder(self):
        rts = rts_frame(A, B, duration_us=500)
        assert rts.size == RTS_SIZE
        assert rts.transmitter == A
        assert rts.addr1 == B

    def test_null_frame_power_bit(self):
        assert null_frame(A, B, power_save=True).power_mgmt
        assert not null_frame(A, B, power_save=False).power_mgmt
