"""Wire format round-trip and rejection tests (DESIGN.md §9).

The encode → decode round trip must be **bit-identical** for any
columnar chunk — including ACK/CTS ``-1`` sender sentinels and empty
chunks — and every way a record can be damaged (bad magic, wrong
version, flipped payload bytes, truncation at any byte) must raise
:class:`~repro.service.wire.WireError` instead of yielding a wrong
table.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dot11.mac import MacAddress, vendor_mac
from repro.service.wire import (
    MAGIC,
    RECORD_CHUNK,
    RECORD_END,
    RECORD_HELLO,
    WIRE_VERSION,
    WireError,
    decode_chunk,
    decode_json,
    encode_chunk,
    encode_json,
    encode_record,
    iter_records,
    read_record,
)
from repro.traces.table import FrameTable
from tests.test_streaming_chunked import synth_frames


def assert_tables_bit_identical(left: FrameTable, right: FrameTable) -> None:
    """Columns byte-for-byte equal, intern tuples equal."""
    assert len(left) == len(right)
    for name in ("timestamp_us", "size", "rate_mbps", "sender_idx", "ftype_idx"):
        mine = np.ascontiguousarray(getattr(left, name))
        theirs = np.ascontiguousarray(getattr(right, name))
        assert mine.tobytes() == theirs.tobytes(), f"column {name} differs"
    assert left.senders == right.senders
    assert left.ftype_keys == right.ftype_keys


# -- arbitrary-table strategy -------------------------------------------
_finite = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)


@st.composite
def frame_tables(draw) -> FrameTable:
    """Arbitrary columnar chunks: empty tables and -1 sentinels included."""
    rows = draw(st.integers(min_value=0, max_value=60))
    sender_count = draw(st.integers(min_value=1, max_value=5))
    ftype_count = draw(st.integers(min_value=1, max_value=4))
    deltas = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5e4, allow_nan=False),
            min_size=rows,
            max_size=rows,
        )
    )
    stamps = np.cumsum(np.asarray(deltas, dtype=np.float64)) + 1_000.0
    sizes = np.asarray(
        draw(st.lists(_finite, min_size=rows, max_size=rows)), dtype=np.float64
    )
    rates = np.asarray(
        draw(st.lists(_finite, min_size=rows, max_size=rows)), dtype=np.float64
    )
    sender_idx = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=-1, max_value=sender_count - 1),
                min_size=rows,
                max_size=rows,
            )
        ),
        dtype=np.int64,
    )
    ftype_idx = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=ftype_count - 1),
                min_size=rows,
                max_size=rows,
            )
        ),
        dtype=np.int64,
    )
    senders = tuple(vendor_mac("00:13:e8", i + 1) for i in range(sender_count))
    ftype_keys = tuple(f"FType{i}" for i in range(ftype_count))
    return FrameTable(
        timestamp_us=stamps if rows else np.empty(0, dtype=np.float64),
        size=sizes,
        rate_mbps=rates,
        sender_idx=sender_idx,
        ftype_idx=ftype_idx,
        senders=senders,
        ftype_keys=ftype_keys,
    )


class TestChunkRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(frame_tables())
    def test_arbitrary_tables_round_trip_bit_identically(self, table):
        record = read_record(io.BytesIO(encode_chunk(table)))
        assert record is not None and record[0] == RECORD_CHUNK
        assert_tables_bit_identical(decode_chunk(record[1]), table)

    def test_realistic_capture_round_trips(self):
        table = FrameTable.from_frames(synth_frames(count=600, seed=11))
        assert -1 in table.sender_idx  # ACK sentinels present
        record = read_record(io.BytesIO(encode_chunk(table)))
        assert_tables_bit_identical(decode_chunk(record[1]), table)

    def test_empty_chunk_round_trips(self):
        table = FrameTable.from_frames([])
        record = read_record(io.BytesIO(encode_chunk(table)))
        decoded = decode_chunk(record[1])
        assert len(decoded) == 0
        assert_tables_bit_identical(decoded, table)

    def test_decoded_table_has_no_backing_frames(self):
        table = FrameTable.from_frames(synth_frames(count=50))
        record = read_record(io.BytesIO(encode_chunk(table)))
        decoded = decode_chunk(record[1])
        with pytest.raises(ValueError, match="no backing frames"):
            decoded.to_frames()


class TestControlRecords:
    def test_hello_and_end_round_trip(self):
        stream = io.BytesIO(
            encode_json(RECORD_HELLO, {"sensor": "roof-3", "resume": True})
            + encode_json(RECORD_END, {"frames": 12, "chunks": 2})
        )
        records = list(iter_records(stream))
        assert [rtype for rtype, _ in records] == [RECORD_HELLO, RECORD_END]
        assert decode_json(records[0][1]) == {"sensor": "roof-3", "resume": True}
        assert decode_json(records[1][1]) == {"frames": 12, "chunks": 2}

    def test_non_object_control_payload_rejected(self):
        with pytest.raises(WireError, match="not an object"):
            decode_json(b"[1, 2]")


class TestRejection:
    def _chunk_record(self) -> bytes:
        return encode_chunk(FrameTable.from_frames(synth_frames(count=40)))

    def test_bad_magic(self):
        record = bytearray(self._chunk_record())
        record[:4] = b"XXXX"
        with pytest.raises(WireError, match="bad magic"):
            read_record(io.BytesIO(bytes(record)))

    def test_unsupported_version(self):
        record = bytearray(self._chunk_record())
        record[4] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="unsupported wire version"):
            read_record(io.BytesIO(bytes(record)))

    def test_unknown_record_type(self):
        record = bytearray(self._chunk_record())
        record[6] = 9
        with pytest.raises(WireError, match="unknown record type"):
            read_record(io.BytesIO(bytes(record)))

    def test_corrupted_payload_fails_checksum(self):
        record = bytearray(self._chunk_record())
        record[-1] ^= 0xFF
        with pytest.raises(WireError, match="checksum mismatch"):
            read_record(io.BytesIO(bytes(record)))

    @pytest.mark.parametrize("keep", [1, 8, 15, 16, 40])
    def test_truncation_anywhere_is_detected(self, keep):
        record = self._chunk_record()
        assert keep < len(record)
        with pytest.raises(WireError, match="truncated"):
            read_record(io.BytesIO(record[:keep]))

    def test_clean_end_of_stream_is_none(self):
        assert read_record(io.BytesIO(b"")) is None

    def test_chunk_payload_length_mismatch(self):
        table = FrameTable.from_frames(synth_frames(count=30))
        record = read_record(io.BytesIO(encode_chunk(table)))
        payload = record[1]
        with pytest.raises(WireError, match="length mismatch"):
            decode_chunk(payload[:-8])

    def test_chunk_intern_range_checked(self):
        table = FrameTable.from_frames(synth_frames(count=30))
        record = read_record(io.BytesIO(encode_chunk(table)))
        payload = bytearray(record[1])
        # Point the last sender_idx value past the intern tuple.
        offset = len(payload) - 2 * len(table) * 8
        payload[offset : offset + 8] = (10**6).to_bytes(8, "little")
        with pytest.raises(WireError, match="intern range"):
            decode_chunk(bytes(payload))

    def test_encode_record_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown record type"):
            encode_record(7, b"")

    def test_magic_constant_is_four_bytes(self):
        assert len(MAGIC) == 4
