"""Property tests for the evaluation-matrix value semantics.

The matrix is the artifact CI and resume runs pass around, so its
algebra must be watertight: cell order never matters, sharding a sweep
into subsets and merging them reproduces the full matrix exactly, and
the JSON form is lossless (floats included, bit-for-bit).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation import (
    CellKey,
    EvaluationMatrix,
    MatrixCell,
    SimulationCache,
    run_matrix,
)

SCENARIO_NAMES = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "office-baseline"]
)
PARAMETER_NAMES = st.sampled_from(
    ["rate", "size", "access", "txtime", "interarrival"]
)
MEASURE_NAMES = st.sampled_from(["cosine", "intersection", "chi2"])

ratios = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
counts = st.integers(min_value=0, max_value=10_000)


@st.composite
def matrix_cells_strategy(draw) -> list[MatrixCell]:
    """A list of cells with unique (scenario, parameter, measure) keys."""
    keys = draw(
        st.sets(
            st.tuples(SCENARIO_NAMES, PARAMETER_NAMES, MEASURE_NAMES),
            min_size=1,
            max_size=12,
        )
    )
    cells = []
    for scenario, parameter, measure in sorted(keys):
        cells.append(
            MatrixCell(
                scenario=scenario,
                parameter=parameter,
                measure=measure,
                auc=draw(ratios),
                identification_at_0_01=draw(ratios),
                identification_at_0_1=draw(ratios),
                reference_devices=draw(counts),
                known_candidates=draw(counts),
                total_candidates=draw(counts),
                station_count=draw(counts),
                frame_count=draw(counts),
                duration_s=draw(
                    st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
                ),
                seed=draw(st.integers(min_value=0, max_value=2**31)),
                training_s=draw(
                    st.floats(min_value=0.5, max_value=1e6, allow_nan=False)
                ),
                window_s=draw(
                    st.floats(min_value=0.1, max_value=1e4, allow_nan=False)
                ),
                min_observations=draw(st.integers(min_value=1, max_value=500)),
            )
        )
    return cells


@given(cells=matrix_cells_strategy(), order_seed=st.randoms(use_true_random=False))
def test_cell_order_is_irrelevant(cells, order_seed):
    """Any insertion order produces the same matrix and payload."""
    shuffled = list(cells)
    order_seed.shuffle(shuffled)
    assert EvaluationMatrix(shuffled) == EvaluationMatrix(cells)
    assert (
        EvaluationMatrix(shuffled).to_payload()
        == EvaluationMatrix(cells).to_payload()
    )


@given(cells=matrix_cells_strategy(), assignment=st.randoms(use_true_random=False))
def test_subset_merge_reproduces_full_matrix(cells, assignment):
    """Arbitrary partition of the cells, merged back, equals the full
    run — the property that makes sharded/resumed sweeps safe."""
    full = EvaluationMatrix(cells)
    left = [cell for cell in cells if assignment.random() < 0.5]
    right = [cell for cell in cells if cell not in left]
    merged = EvaluationMatrix(left).merge(EvaluationMatrix(right))
    assert merged == full
    assert merged.to_payload() == full.to_payload()


@given(cells=matrix_cells_strategy())
def test_axis_subsets_cover_the_matrix(cells):
    """Subsetting along the scenario axis and merging the pieces back
    is the identity."""
    full = EvaluationMatrix(cells)
    pieces = [
        full.subset(scenarios=[scenario]) for scenario in full.scenarios()
    ]
    rebuilt = EvaluationMatrix()
    for piece in pieces:
        rebuilt = rebuilt.merge(piece)
    assert rebuilt == full


@given(cells=matrix_cells_strategy())
def test_json_round_trip_is_lossless(cells):
    """dump → parse → rebuild preserves every cell bit-for-bit."""
    matrix = EvaluationMatrix(cells)
    payload = json.loads(json.dumps(matrix.to_payload()))
    restored = EvaluationMatrix.from_payload(payload)
    assert restored == matrix
    assert restored.to_payload() == matrix.to_payload()


@given(cells=matrix_cells_strategy())
def test_cells_are_canonically_sorted(cells):
    matrix = EvaluationMatrix(cells)
    keys = [(c.scenario, c.parameter, c.measure) for c in matrix.cells]
    assert keys == sorted(keys)


def test_conflicting_cells_refuse_to_merge():
    base = dict(
        scenario="s",
        parameter="rate",
        measure="cosine",
        identification_at_0_01=0.1,
        identification_at_0_1=0.2,
        reference_devices=3,
        known_candidates=4,
        total_candidates=5,
        station_count=6,
        frame_count=7,
        duration_s=8.0,
        seed=9,
        training_s=4.0,
        window_s=1.0,
        min_observations=2,
    )
    matrix = EvaluationMatrix([MatrixCell(auc=0.5, **base)])
    # Identical re-add is a no-op ...
    matrix.add(MatrixCell(auc=0.5, **base))
    assert len(matrix) == 1
    # ... a disagreeing result for the same deterministic cell is a bug.
    with pytest.raises(ValueError, match="conflicting"):
        matrix.add(MatrixCell(auc=0.6, **base))


def test_run_matrix_results_are_order_independent():
    """Running the same cells with permuted axes yields one matrix."""
    cache = SimulationCache()
    forward = run_matrix(
        scenarios=["office-baseline"],
        parameters=["rate", "size"],
        measures=["cosine", "intersection"],
        cache=cache,
    )
    backward = run_matrix(
        scenarios=["office-baseline"],
        parameters=["size", "rate"],
        measures=["intersection", "cosine"],
        cache=cache,
    )
    assert forward == backward
    assert forward.to_payload() == backward.to_payload()


def test_run_matrix_resume_skips_completed_cells(tmp_path):
    """A resumed run adopts prior cells verbatim and only computes the
    missing ones."""
    cache = SimulationCache()
    partial = run_matrix(
        scenarios=["office-baseline"],
        parameters=["rate"],
        measures=["cosine"],
        cache=cache,
    )
    path = partial.save(tmp_path / "BENCH_experiments.json")
    resumed_from = EvaluationMatrix.load(path)

    seen: list[tuple[CellKey, bool]] = []
    full = run_matrix(
        scenarios=["office-baseline"],
        parameters=["rate", "size"],
        measures=["cosine"],
        cache=cache,
        resume=resumed_from,
        progress=lambda key, cell, cached: seen.append((key, cached)),
    )
    assert len(full) == 2
    cached_flags = {key.parameter: cached for key, cached in seen}
    assert cached_flags == {"rate": True, "size": False}
    # The adopted cell is the prior run's cell, bit-for-bit.
    rate_key = CellKey("office-baseline", "rate", "cosine")
    assert full.get(rate_key) == partial.get(rate_key)


def test_save_enriches_with_bench_schema(tmp_path):
    cache = SimulationCache()
    matrix = run_matrix(
        scenarios=["office-baseline"],
        parameters=["rate"],
        measures=["cosine"],
        cache=cache,
    )
    path = matrix.save(tmp_path / "BENCH_experiments.json")
    payload = json.loads(path.read_text())
    for key in ("benchmark", "smoke_mode", "python", "machine"):
        assert key in payload, f"missing BENCH schema key {key}"
    assert payload["benchmark"] == "experiments"
    assert EvaluationMatrix.load(path) == matrix
