"""Tests for the canonical datasets and trace statistics."""

from __future__ import annotations

import pytest

from repro.traces.datasets import (
    DatasetSpec,
    _spec,
    build_dataset,
    clear_dataset_cache,
    conference_trace,
    office_trace,
)
from repro.traces.stats import summarize_trace


@pytest.fixture(scope="module")
def tiny_conference():
    """A scaled-down conference dataset (fast enough for unit tests)."""
    return build_dataset(_spec("conference2", scale=0.12))


@pytest.fixture(scope="module")
def tiny_office():
    return build_dataset(_spec("office2", scale=0.12))


class TestSpecs:
    def test_canonical_specs(self):
        conf1 = _spec("conference1", 1.0)
        office1 = _spec("office1", 1.0)
        assert conf1.device_count > office1.device_count
        assert not conf1.encrypted and office1.encrypted
        assert conf1.mobile and not office1.mobile
        assert conf1.churn and not office1.churn

    def test_long_short_ratio(self):
        conf1 = _spec("conference1", 1.0)
        conf2 = _spec("conference2", 1.0)
        assert conf1.duration_s > conf2.duration_s
        assert conf1.candidate_s > conf1.training_s

    def test_scaling(self):
        base = _spec("office1", 1.0)
        scaled = _spec("office1", 2.0)
        assert scaled.duration_s == base.duration_s * 2
        assert scaled.device_count == base.device_count * 2

    def test_invalid_selector(self):
        with pytest.raises(ValueError):
            conference_trace(3)
        with pytest.raises(ValueError):
            office_trace(0)


class TestBuiltDatasets:
    def test_conference_properties(self, tiny_conference):
        assert not tiny_conference.encrypted
        assert len(tiny_conference) > 1000
        assert tiny_conference.duration_s > 100
        assert len(tiny_conference.senders()) >= 2

    def test_office_encrypted(self, tiny_office):
        assert tiny_office.encrypted
        protected = [c for c in tiny_office.frames if c.frame.protected]
        assert protected

    def test_device_names_cover_senders(self, tiny_conference):
        named = set(tiny_conference.device_names)
        # Every attributable sender in the trace was declared.
        assert tiny_conference.senders() <= named

    def test_deterministic(self):
        first = build_dataset(_spec("office2", scale=0.08))
        second = build_dataset(_spec("office2", scale=0.08))
        assert len(first) == len(second)
        assert [c.timestamp_us for c in first.frames[:100]] == [
            c.timestamp_us for c in second.frames[:100]
        ]

    def test_cache_identity(self):
        clear_dataset_cache()
        a = office_trace(2, scale=0.08)
        b = office_trace(2, scale=0.08)
        assert a is b
        clear_dataset_cache()
        c = office_trace(2, scale=0.08)
        assert c is not a


class TestStats:
    def test_table1_row(self, tiny_office):
        spec = _spec("office2", scale=0.12)
        stats = summarize_trace(tiny_office, spec.training_s, min_observations=30)
        assert stats.encryption_label == "WPA"
        assert stats.total_frames == len(tiny_office)
        assert stats.reference_devices >= 1
        assert stats.distinct_senders >= stats.reference_devices
        assert stats.attributed_frames < stats.total_frames  # ACKs exist

    def test_conference_label(self, tiny_conference):
        spec = _spec("conference2", scale=0.12)
        stats = summarize_trace(tiny_conference, spec.training_s)
        assert stats.encryption_label == "None"
