"""Unit tests for the Trace container, splitting and windowing."""

from __future__ import annotations

import pytest

from repro.dot11.mac import MacAddress
from repro.traces.filters import (
    broadcast_data_only,
    combine,
    data_frames_only,
    filter_frames,
    first_transmissions_only,
    null_function_only,
    sent_at_rate,
)
from repro.traces.trace import Trace
from repro.dot11.frames import FrameSubtype
from tests.conftest import make_data_capture

A = MacAddress.parse("00:13:e8:00:00:0a")
B = MacAddress.parse("00:18:f8:00:00:0b")
AP = MacAddress.parse("00:0f:b5:00:00:01")


def _trace(count: int = 100, gap_us: float = 1e5) -> Trace:
    frames = [make_data_capture(i * gap_us, A if i % 2 else B, AP) for i in range(count)]
    return Trace(frames=frames, name="unit")


class TestContainer:
    def test_ordering_enforced(self):
        frames = [make_data_capture(100.0, A, AP), make_data_capture(50.0, A, AP)]
        with pytest.raises(ValueError):
            Trace(frames=frames)

    def test_duration(self):
        trace = _trace(11, gap_us=1e6)
        assert trace.duration_s == pytest.approx(10.0)

    def test_empty_trace(self):
        trace = Trace(frames=[])
        assert len(trace) == 0
        assert trace.duration_s == 0.0
        assert trace.senders() == set()

    def test_senders(self):
        assert _trace().senders() == {A, B}

    def test_frames_of(self):
        trace = _trace(10)
        assert len(trace.frames_of(A)) == 5


class TestSlicing:
    def test_slice_bounds(self):
        trace = _trace(100, gap_us=1e4)
        window = trace.slice_us(2e5, 5e5)
        assert all(2e5 <= c.timestamp_us < 5e5 for c in window.frames)

    def test_split_ratios(self):
        trace = _trace(100, gap_us=1e6)  # 99 s
        split = trace.split(training_s=20.0)
        assert len(split.training) == 20
        assert len(split.validation) == 80

    def test_split_validation_starts_after_training(self):
        split = _trace(100, gap_us=1e6).split(training_s=30.0)
        assert split.training.end_us < split.validation.start_us

    def test_split_requires_positive(self):
        with pytest.raises(ValueError):
            _trace().split(0.0)

    def test_windows_cover_trace(self):
        trace = _trace(100, gap_us=1e6)
        windows = list(trace.windows(window_s=25.0))
        assert sum(len(w) for w in windows) == len(trace)
        assert len(windows) == 4

    def test_window_size_validation(self):
        with pytest.raises(ValueError):
            list(_trace().windows(0.0))

    def test_no_trailing_degenerate_window_on_exact_boundary(self):
        """Regression: a last frame exactly on a window boundary joins
        the final window instead of spawning an extra one-frame window
        beyond the trace span."""
        frames = [make_data_capture(t, A, AP) for t in (0.0, 50.0, 100.0)]
        trace = Trace(frames=frames)
        windows = list(trace.windows(window_s=100 / 1e6))  # span == 1 window
        assert [len(w) for w in windows] == [3]

        windows = list(trace.windows(window_s=50 / 1e6))  # span == 2 windows
        assert [len(w) for w in windows] == [1, 2]
        assert sum(len(w) for w in windows) == len(trace)

    def test_windows_final_window_is_right_closed_only(self):
        # A non-boundary tail behaves exactly as before.
        frames = [make_data_capture(t, A, AP) for t in (0.0, 50.0, 120.0)]
        windows = list(Trace(frames=frames).windows(window_s=50 / 1e6))
        assert [len(w) for w in windows] == [1, 1, 1]

    def test_windows_on_empty_trace(self):
        assert [len(w) for w in Trace(frames=[]).windows(1.0)] == [0]

    def test_slice_shares_cached_stamps(self):
        trace = _trace(50, gap_us=1e4)
        window = trace.slice_us(1e5, 3e5)
        # The slice's timestamp cache is a view of the parent's.
        assert window._stamps.base is trace._stamps
        assert window.slice_us(1e5, 2e5).start_us >= 1e5


class TestPcapRoundTrip:
    def test_to_from_pcap(self, tmp_path):
        trace = _trace(20)
        path = tmp_path / "t.pcap"
        assert trace.to_pcap(path) == 20
        back = Trace.from_pcap(path, name="loaded")
        assert len(back) == 20
        assert back.senders() == {A, B}


class TestFilters:
    def test_data_only(self):
        data = make_data_capture(0.0, A, AP)
        beacon = make_data_capture(1.0, A, AP, subtype=FrameSubtype.BEACON, size=180)
        assert filter_frames([data, beacon], data_frames_only) == [data]

    def test_first_tx_only(self):
        first = make_data_capture(0.0, A, AP)
        retry = make_data_capture(1.0, A, AP, retry=True)
        assert filter_frames([first, retry], first_transmissions_only) == [first]

    def test_rate_filter(self):
        fast = make_data_capture(0.0, A, AP, rate=54.0)
        slow = make_data_capture(1.0, A, AP, rate=11.0)
        assert filter_frames([fast, slow], sent_at_rate(54.0)) == [fast]

    def test_broadcast_data(self):
        from repro.dot11.mac import BROADCAST

        unicast = make_data_capture(0.0, A, AP)
        broadcast = make_data_capture(1.0, A, BROADCAST, size=80)
        assert filter_frames([unicast, broadcast], broadcast_data_only) == [broadcast]

    def test_null_function(self):
        null = make_data_capture(0.0, A, AP, subtype=FrameSubtype.NULL_FUNCTION, size=28)
        data = make_data_capture(1.0, A, AP)
        assert filter_frames([null, data], null_function_only) == [null]

    def test_combined_predicates(self):
        wanted = make_data_capture(0.0, A, AP, rate=54.0)
        wrong_rate = make_data_capture(1.0, A, AP, rate=11.0)
        retried = make_data_capture(2.0, A, AP, rate=54.0, retry=True)
        joint = combine(data_frames_only, first_transmissions_only, sent_at_rate(54.0))
        assert [c for c in [wanted, wrong_rate, retried] if joint(c)] == [wanted]
