"""End-to-end integration: simulate → pcap → learn → detect.

Exercises the full paper workflow across module boundaries, including
the on-disk pcap round trip in the middle (the paper's tool operates
on pcap files).
"""

from __future__ import annotations

import pytest

from repro.core import (
    DetectionConfig,
    InterArrivalTime,
    ReferenceDatabase,
    SignatureBuilder,
)
from repro.core.detection import (
    evaluate_identification,
    evaluate_similarity,
    extract_window_candidates,
)
from repro.core.pipeline import evaluate_trace
from repro.traces.trace import Trace


class TestFullWorkflow:
    def test_simulate_pcap_learn_detect(self, small_office_trace, tmp_path):
        # Persist the capture and reload it, as a real deployment would.
        path = tmp_path / "monitor.pcap"
        small_office_trace.to_pcap(path)
        trace = Trace.from_pcap(path, name="reloaded", encrypted=True)
        assert len(trace) == len(small_office_trace)

        config = DetectionConfig(window_s=15.0, min_observations=50)
        builder = SignatureBuilder(InterArrivalTime(), min_observations=50)
        split = trace.split(training_s=30.0)
        database = ReferenceDatabase.from_training(builder, split.training.frames)
        assert len(database) >= 3

        candidates = extract_window_candidates(
            split.validation, builder, database, config
        )
        assert candidates

        similarity = evaluate_similarity(candidates, database, config)
        identification = evaluate_identification(candidates, database, config)
        assert similarity.auc > 0.8
        assert identification.ratio_at_fpr(0.5) > 0.5

    def test_pcap_and_memory_paths_agree(self, small_office_trace, tmp_path):
        """Fingerprinting a reloaded pcap gives the same AUC as the
        in-memory trace (timestamps round to integer µs on disk)."""
        path = tmp_path / "same.pcap"
        small_office_trace.to_pcap(path)
        reloaded = Trace.from_pcap(path, encrypted=True)
        config = DetectionConfig(window_s=15.0)
        in_memory = evaluate_trace(
            small_office_trace, InterArrivalTime(), 30.0, config
        )
        on_disk = evaluate_trace(reloaded, InterArrivalTime(), 30.0, config)
        assert on_disk.auc == pytest.approx(in_memory.auc, abs=0.02)
        assert on_disk.reference_devices == in_memory.reference_devices

    def test_reference_devices_stable_across_parameters(self, small_office_trace):
        """The min-observation rule depends only on attributed frame
        counts for count-per-frame parameters, so rate/size/txtime see
        identical reference populations."""
        from repro.core import FrameSize, TransmissionRate, TransmissionTime

        split = small_office_trace.split(30.0)
        populations = []
        for parameter in (TransmissionRate(), FrameSize(), TransmissionTime()):
            builder = SignatureBuilder(parameter, min_observations=50)
            populations.append(frozenset(builder.build(split.training.frames)))
        assert populations[0] == populations[1] == populations[2]
