"""Unit tests for the event queue."""

from __future__ import annotations

import pytest

from repro.simulator.events import EventQueue


class TestOrdering:
    def test_time_order(self):
        queue = EventQueue()
        fired: list[str] = []
        queue.schedule(30.0, lambda: fired.append("c"))
        queue.schedule(10.0, lambda: fired.append("a"))
        queue.schedule(20.0, lambda: fired.append("b"))
        queue.run_until(100.0)
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        fired: list[int] = []
        for index in range(5):
            queue.schedule(10.0, lambda i=index: fired.append(i))
        queue.run_until(10.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        queue = EventQueue()
        seen: list[float] = []
        queue.schedule(5.0, lambda: seen.append(queue.now))
        queue.schedule(9.0, lambda: seen.append(queue.now))
        queue.run_until(20.0)
        assert seen == [5.0, 9.0]
        assert queue.now == 20.0


class TestScheduling:
    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.run_until(50.0)
        with pytest.raises(ValueError):
            queue.schedule(10.0, lambda: None)

    def test_schedule_in_relative(self):
        queue = EventQueue()
        queue.run_until(10.0)
        fired = []
        queue.schedule_in(5.0, lambda: fired.append(queue.now))
        queue.run_until(20.0)
        assert fired == [15.0]

    def test_events_beyond_horizon_stay_queued(self):
        queue = EventQueue()
        fired = []
        queue.schedule(100.0, lambda: fired.append("late"))
        queue.run_until(50.0)
        assert not fired
        assert len(queue) == 1
        queue.run_until(150.0)
        assert fired == ["late"]

    def test_cascading_events(self):
        queue = EventQueue()
        fired: list[float] = []

        def chain(depth: int) -> None:
            fired.append(queue.now)
            if depth:
                queue.schedule_in(1.0, lambda: chain(depth - 1))

        queue.schedule(0.0, lambda: chain(3))
        queue.run_until(10.0)
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_run_all_guard(self):
        queue = EventQueue()

        def forever() -> None:
            queue.schedule_in(1.0, forever)

        queue.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            queue.run_all(safety_limit=1000)
