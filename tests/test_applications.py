"""Tests for the Section VII applications: spoof detection, rogue AP,
tracking, and the attack models."""

from __future__ import annotations

import pytest

from repro.applications.attacks import (
    inject_fake_frames,
    pollute_training,
    replay_with_insertions,
    spoof_mac,
)
from repro.applications.rogue_ap import RogueApDetector, ap_own_frames
from repro.applications.spoof_detector import SpoofDetector, SpoofVerdict
from repro.applications.tracker import DeviceTracker
from repro.core.parameters import InterArrivalTime
from repro.dot11.frames import FrameSubtype
from repro.dot11.mac import MacAddress
from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic
from repro.traces.trace import Trace


@pytest.fixture(scope="module")
def spoof_scenario():
    """Two legitimate devices plus an attacker with a different card.

    The channel is kept busy (as in the paper's traces) so
    inter-arrival values fall inside the histogram range instead of
    clipping into the idle tail.
    """
    scenario = Scenario(duration_s=120.0, seed=21, encrypted=True)
    scenario.add_station(
        StationSpec(
            name="legit-1",
            profile="intel-2200bg-linux",
            sources=[CbrTraffic(interval_ms=8), WebTraffic(mean_think_s=2.0)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="legit-2",
            profile="atheros-ar5212-madwifi",
            sources=[WebTraffic(mean_think_s=1.5)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="attacker",
            profile="realtek-rtl8187-linux",
            sources=[CbrTraffic(interval_ms=9)],
        )
    )
    for index in range(2):
        scenario.add_station(
            StationSpec(
                name=f"background-{index}",
                profile="broadcom-43224-osx",
                sources=[CbrTraffic(interval_ms=12), WebTraffic(mean_think_s=2.0)],
            )
        )
    result = scenario.run()
    macs = {name: mac for mac, name in result.station_names.items()}
    return result, macs


class TestSpoofDetector:
    def test_genuine_devices_pass(self, spoof_scenario):
        result, macs = spoof_scenario
        allowed = {macs["legit-1"], macs["legit-2"]}
        boundary = 60e6
        train = [c for c in result.captures if c.timestamp_us < boundary]
        check = [c for c in result.captures if c.timestamp_us >= boundary]
        detector = SpoofDetector(min_observations=30)
        learnt = detector.learn(train, allowed)
        assert learnt == allowed
        verdicts = {c.device: c for c in detector.check_window(check)}
        assert verdicts[macs["legit-1"]].verdict is SpoofVerdict.GENUINE
        assert verdicts[macs["legit-2"]].verdict is SpoofVerdict.GENUINE

    def test_spoofed_mac_detected(self, spoof_scenario):
        result, macs = spoof_scenario
        victim = macs["legit-1"]
        attacker = macs["attacker"]
        allowed = {victim}
        boundary = 60e6
        train = [
            c
            for c in result.captures
            if c.timestamp_us < boundary and (c.sender is None or c.sender != attacker)
        ]
        # Validation: the attacker takes over the victim's MAC and the
        # real victim goes silent.
        check = [
            c
            for c in result.captures
            if c.timestamp_us >= boundary and (c.sender is None or c.sender != victim)
        ]
        check = spoof_mac(check, attacker, victim)
        detector = SpoofDetector(min_observations=30)
        detector.learn(train, allowed)
        verdicts = {c.device: c for c in detector.check_window(check)}
        assert verdicts[victim].verdict is SpoofVerdict.SPOOFED

    def test_unknown_device_flagged(self, spoof_scenario):
        result, macs = spoof_scenario
        detector = SpoofDetector(min_observations=30)
        detector.learn(result.captures, {macs["legit-1"]})
        verdicts = {c.device: c for c in detector.check_window(result.captures)}
        assert verdicts[macs["attacker"]].verdict is SpoofVerdict.UNKNOWN_DEVICE

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SpoofDetector(accept_threshold=1.5)


class TestRogueApDetection:
    @pytest.fixture(scope="class")
    def two_ap_runs(self):
        """The same SSID served first by the real AP, later by a rogue
        with different hardware."""

        def run(ap_profile: str, seed: int, beacon_size: int):
            scenario = Scenario(
                duration_s=90.0,
                seed=seed,
                ap_profile=ap_profile,
                ap_beacon_size=beacon_size,
            )
            scenario.add_station(
                StationSpec(
                    name="client",
                    profile="intel-2200bg-linux",
                    sources=[CbrTraffic(interval_ms=4), WebTraffic(mean_think_s=1.5)],
                    downlink=[WebTraffic(mean_think_s=1.0, mean_burst_frames=20)],
                )
            )
            return scenario.run()

        genuine = run("atheros-ar9285-ath9k", seed=31, beacon_size=180)
        # The rogue copies the SSID but its hardware and IE set differ.
        rogue = run("broadcom-4318-win", seed=32, beacon_size=212)
        return genuine, rogue

    def test_forwarded_frames_excluded(self, two_ap_runs):
        genuine, _rogue = two_ap_runs
        ap = next(mac for mac, name in genuine.station_names.items() if name == "ap-0")
        own = ap_own_frames(genuine.captures, ap)
        assert own
        assert all(not (c.frame.is_data and c.frame.from_ds) for c in own)

    def test_genuine_ap_accepted(self, two_ap_runs):
        from repro.core.parameters import FrameSize

        genuine, _rogue = two_ap_runs
        ap = next(mac for mac, name in genuine.station_names.items() if name == "ap-0")
        boundary = 45e6
        detector = RogueApDetector(parameter=FrameSize(), min_observations=30)
        assert detector.learn(
            [c for c in genuine.captures if c.timestamp_us < boundary], ap
        )
        verdict = detector.check(
            [c for c in genuine.captures if c.timestamp_us >= boundary], ap
        )
        assert not verdict.is_rogue
        assert verdict.similarity > 0.6

    def test_rogue_ap_detected(self, two_ap_runs):
        from repro.core.parameters import FrameSize

        genuine, rogue = two_ap_runs
        ap = next(mac for mac, name in genuine.station_names.items() if name == "ap-0")
        rogue_ap = next(
            mac for mac, name in rogue.station_names.items() if name == "ap-0"
        )
        # The rogue's beacons carry a different IE set (size) and come
        # from different hardware; size fingerprints expose it.
        detector = RogueApDetector(parameter=FrameSize(), min_observations=30)
        detector.learn(genuine.captures, ap)
        impersonated = spoof_mac(rogue.captures, rogue_ap, ap)
        verdict = detector.check(impersonated, ap)
        assert verdict.is_rogue
        assert verdict.similarity < 0.6

    def test_check_before_learn(self):
        detector = RogueApDetector()
        with pytest.raises(RuntimeError):
            detector.check([], MacAddress.parse("00:0f:b5:00:00:01"))


class TestTracker:
    def test_links_randomized_mac(self, spoof_scenario):
        import random

        result, macs = spoof_scenario
        device = macs["legit-1"]
        boundary = 60e6
        train = [c for c in result.captures if c.timestamp_us < boundary]
        later = [c for c in result.captures if c.timestamp_us >= boundary]
        # The device randomises its MAC for the second half.
        pseudonym = device.randomized(random.Random(5))
        observed = spoof_mac(later, device, pseudonym)
        tracker = DeviceTracker(min_observations=30, link_threshold=0.4)
        assert tracker.learn(train) >= 3
        report = tracker.track([observed])
        links = {link.pseudonym: link for link in report.links}
        assert pseudonym in links
        assert links[pseudonym].linked_device == device
        accuracy = report.linking_accuracy({pseudonym: device})
        assert accuracy == pytest.approx(1.0)

    def test_real_addresses_skipped(self, spoof_scenario):
        result, _macs = spoof_scenario
        tracker = DeviceTracker(min_observations=30)
        tracker.learn(result.captures)
        assert tracker.track_window(result.captures) == []

    def test_batch_port_equals_scalar_linking(self, spoof_scenario):
        """track_window's single batch call must reproduce the former
        per-pseudonym match_signature loop exactly."""
        import random

        from repro.core.matcher import match_signature

        result, macs = spoof_scenario
        boundary = 60e6
        train = [c for c in result.captures if c.timestamp_us < boundary]
        later = [c for c in result.captures if c.timestamp_us >= boundary]
        rng = random.Random(11)
        observed = later
        truth = {}
        for name in ("legit-1", "legit-2", "attacker"):
            pseudonym = macs[name].randomized(rng)
            observed = spoof_mac(observed, macs[name], pseudonym)
            truth[pseudonym] = macs[name]
        tracker = DeviceTracker(min_observations=30, link_threshold=0.4)
        tracker.learn(train)
        links = tracker.track_window(observed, window_index=3)
        assert len(links) == len(truth)
        # Reference implementation: the scalar per-pseudonym loop.
        for link in links:
            signature = tracker.builder.build(observed)[link.pseudonym]
            similarities = match_signature(signature, tracker.database)
            best_device, best_sim = None, 0.0
            for device, sim in similarities.items():
                if sim > best_sim:
                    best_device, best_sim = device, sim
            if best_sim < tracker.link_threshold:
                best_device = None
            assert link.linked_device == best_device
            assert link.similarity == pytest.approx(best_sim, abs=1e-9)
            assert link.window_index == 3


class TestAttackModels:
    def test_spoof_mac_rewrites_only_attacker(self, spoof_scenario):
        result, macs = spoof_scenario
        rewritten = spoof_mac(result.captures, macs["attacker"], macs["legit-1"])
        assert all(c.sender != macs["attacker"] for c in rewritten)
        assert len(rewritten) == len(result.captures)

    def test_replay_insertion_density(self, spoof_scenario):
        result, _macs = spoof_scenario
        genuine = result.captures[:2000]
        merged = replay_with_insertions(genuine, insertion_rate_hz=10.0, seed=9)
        assert len(merged) > len(genuine)
        times = [c.timestamp_us for c in merged]
        assert times == sorted(times)

    def test_pollute_training_volume(self, spoof_scenario):
        result, macs = spoof_scenario
        polluted = pollute_training(
            result.captures,
            attacker=macs["attacker"],
            victim=macs["legit-1"],
            pollution_fraction=0.5,
        )
        victim_before = sum(1 for c in result.captures if c.sender == macs["legit-1"])
        victim_after = sum(1 for c in polluted if c.sender == macs["legit-1"])
        assert victim_after == victim_before + int(victim_before * 0.5)

    def test_inject_fake_frames_perturbs(self, spoof_scenario):
        result, macs = spoof_scenario
        window = result.captures[:3000]
        attacked = inject_fake_frames(window, [macs["legit-1"]], injection_rate_hz=50.0)
        assert len(attacked) > len(window)
        times = [c.timestamp_us for c in attacked]
        assert times == sorted(times)

    def test_inject_requires_victims(self, spoof_scenario):
        result, _macs = spoof_scenario
        with pytest.raises(ValueError):
            inject_fake_frames(result.captures[:100], [])

    def test_replay_perturbs_interarrival_signature(self, spoof_scenario):
        """The paper's point: inserted traffic shifts the timing
        signature, restricting attacker capacity."""
        from repro.core.signature import SignatureBuilder
        from repro.core.similarity import cosine_similarity

        result, macs = spoof_scenario
        victim = macs["legit-1"]
        genuine = result.captures
        builder = SignatureBuilder(InterArrivalTime(), min_observations=30)
        original = builder.build_single(genuine, victim)
        heavy = replay_with_insertions(
            [c for c in genuine if c.sender == victim or c.sender is None],
            insertion_rate_hz=100.0,
        )
        replayed = builder.build_single(heavy, victim)
        assert original is not None and replayed is not None
        shared = original.frame_types & replayed.frame_types
        sims = [
            cosine_similarity(original.histograms[f], replayed.histograms[f])
            for f in shared
        ]
        assert min(sims) < 0.98  # the insertions measurably moved it
