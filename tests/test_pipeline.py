"""Integration tests for the end-to-end pipeline and fusion."""

from __future__ import annotations

import pytest

from repro.core import (
    DetectionConfig,
    FrameSize,
    InterArrivalTime,
    TransmissionTime,
)
from repro.core.fusion import FusionMatcher
from repro.core.pipeline import evaluate_all_parameters, evaluate_trace


class TestEvaluateTrace:
    def test_small_office_interarrival(self, small_office_trace):
        result = evaluate_trace(
            small_office_trace,
            InterArrivalTime(),
            training_s=30.0,
            config=DetectionConfig(window_s=15.0),
        )
        assert result.reference_devices >= 3
        assert result.auc > 0.8  # three distinct profiles: easy setting
        assert 0.0 <= result.identification_at(0.1) <= 1.0

    def test_all_parameters(self, small_office_trace):
        config = DetectionConfig(window_s=15.0)
        results = evaluate_all_parameters(small_office_trace, 30.0, config)
        assert set(results) == {"rate", "size", "access", "txtime", "interarrival"}
        for result in results.values():
            assert 0.0 <= result.auc <= 1.0

    def test_result_reports_trace_name(self, small_office_trace):
        result = evaluate_trace(
            small_office_trace, FrameSize(), training_s=30.0,
            config=DetectionConfig(window_s=15.0),
        )
        assert result.trace_name == "small-office"


class TestFusion:
    def test_learn_and_identify(self, small_office_trace):
        split = small_office_trace.split(30.0)
        fusion = FusionMatcher(
            parameters=[InterArrivalTime(), TransmissionTime()],
            min_observations=30,
        )
        fusion.learn(split.training.frames)
        assert len(fusion.devices) >= 3
        correct = 0
        total = 0
        for window in split.validation.windows(15.0):
            for device, fused in fusion.extract(window.frames).items():
                if device not in fusion.devices:
                    continue
                winner, score = fusion.identify(fused)
                total += 1
                correct += winner == device
                assert 0.0 <= score <= 1.0 + 1e-9
        assert total > 0
        assert correct / total > 0.7

    def test_weights_normalised(self):
        fusion = FusionMatcher(
            parameters=[InterArrivalTime(), FrameSize()],
            weights={"interarrival": 3.0, "size": 1.0},
        )
        assert fusion.weights["interarrival"] == pytest.approx(0.75)
        assert fusion.weights["size"] == pytest.approx(0.25)

    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError):
            FusionMatcher(
                parameters=[InterArrivalTime(), FrameSize()],
                weights={"interarrival": 1.0},
            )

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            FusionMatcher(parameters=[])

    def test_match_before_learn_rejected(self, small_office_trace):
        fusion = FusionMatcher(parameters=[InterArrivalTime()])
        fused = fusion.extract(small_office_trace.frames)
        with pytest.raises(RuntimeError):
            fusion.match(next(iter(fused.values())))
