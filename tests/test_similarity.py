"""Unit and property tests for similarity measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.similarity import (
    bhattacharyya_similarity,
    chi_square_similarity,
    cosine_distance,
    cosine_similarity,
    intersection_similarity,
    jensen_shannon_similarity,
    similarity_measure_by_name,
)

ALL_MEASURES = [
    cosine_similarity,
    intersection_similarity,
    chi_square_similarity,
    bhattacharyya_similarity,
    jensen_shannon_similarity,
]


def _normalised(vector: list[float]) -> np.ndarray:
    array = np.array(vector, dtype=float)
    return array / array.sum()


histograms = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=8,
    max_size=8,
).filter(lambda v: sum(v) > 0.01)


class TestCosine:
    def test_identical_is_one(self):
        h = _normalised([1, 2, 3, 4])
        assert cosine_similarity(h, h) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        a = _normalised([1, 1, 0, 0])
        b = _normalised([0, 0, 1, 1])
        assert cosine_similarity(a, b) == 0.0

    def test_erratum_distance_complement(self):
        a = _normalised([1, 2, 0, 0])
        b = _normalised([2, 1, 0, 0])
        assert cosine_distance(a, b) == pytest.approx(1.0 - cosine_similarity(a, b))

    def test_zero_histogram_scores_zero(self):
        a = np.zeros(4)
        b = _normalised([1, 1, 1, 1])
        assert cosine_similarity(a, b) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.zeros(4), np.zeros(5))

    def test_scale_invariance(self):
        a = np.array([1.0, 2.0, 3.0, 0.0])
        assert cosine_similarity(a, a * 7.0) == pytest.approx(1.0)


class TestAllMeasures:
    @pytest.mark.parametrize("measure", ALL_MEASURES)
    @given(values=histograms)
    def test_self_similarity_is_one(self, measure, values):
        h = _normalised(values)
        assert measure(h, h) == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    @given(a=histograms, b=histograms)
    def test_range_and_symmetry(self, measure, a, b):
        ha, hb = _normalised(a), _normalised(b)
        value = measure(ha, hb)
        assert -1e-9 <= value <= 1.0 + 1e-9
        assert measure(hb, ha) == pytest.approx(value, abs=1e-9)

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_disjoint_support_is_zero(self, measure):
        a = _normalised([1, 1, 0, 0])
        b = _normalised([0, 0, 1, 1])
        assert measure(a, b) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("measure", ALL_MEASURES)
    def test_closer_is_more_similar(self, measure):
        reference = _normalised([5, 3, 1, 1])
        near = _normalised([5, 3, 1.5, 0.5])
        far = _normalised([1, 1, 3, 5])
        assert measure(near, reference) > measure(far, reference)


class TestRegistry:
    def test_lookup(self):
        assert similarity_measure_by_name("cosine") is cosine_similarity
        assert similarity_measure_by_name("jensen-shannon") is jensen_shannon_similarity

    def test_unknown(self):
        with pytest.raises(KeyError):
            similarity_measure_by_name("euclid")
