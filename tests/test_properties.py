"""Cross-cutting property-based tests over module boundaries."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import ReferenceDatabase
from repro.core.matcher import best_match, match_signature
from repro.core.parameters import ALL_PARAMETERS, FrameSize
from repro.core.signature import SignatureBuilder
from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress, vendor_mac
from repro.dot11.phy import ALL_RATES
from repro.radiotap.pcap import read_trace_pcap, write_trace_pcap

SENDERS = [vendor_mac("00:13:e8", i) for i in range(1, 4)]
AP = vendor_mac("00:0f:b5", 1)


@st.composite
def capture_sequences(draw):
    """Random, time-ordered attributable frame sequences."""
    count = draw(st.integers(min_value=2, max_value=60))
    frames = []
    t = 0.0
    for _ in range(count):
        t += draw(st.floats(min_value=10.0, max_value=5000.0))
        sender = draw(st.sampled_from(SENDERS))
        size = draw(st.integers(min_value=40, max_value=2000))
        rate = draw(st.sampled_from(ALL_RATES))
        subtype = draw(
            st.sampled_from([FrameSubtype.QOS_DATA, FrameSubtype.DATA,
                             FrameSubtype.PROBE_REQUEST])
        )
        frames.append(
            CapturedFrame(
                timestamp_us=t,
                frame=Dot11Frame(
                    subtype=subtype, size=size, addr1=AP, addr2=sender, addr3=AP
                ),
                rate_mbps=rate,
            )
        )
    return frames


class TestExtractionInvariants:
    @given(frames=capture_sequences())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_observation_conservation(self, frames):
        """Per-frame parameters yield exactly one observation per
        attributable frame (time-derived ones skip the first frame)."""
        for parameter in ALL_PARAMETERS:
            observations = list(parameter.observations(frames))
            if parameter.name in ("rate", "size", "txtime"):
                assert len(observations) == len(frames)
            else:
                assert len(observations) == len(frames) - 1

    @given(frames=capture_sequences())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_observations_attributed_to_real_senders(self, frames):
        senders = {c.sender for c in frames}
        for parameter in ALL_PARAMETERS:
            for observation in parameter.observations(frames):
                assert observation.sender in senders


class TestSignatureInvariants:
    @given(frames=capture_sequences())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_weights_and_histograms_normalised(self, frames):
        builder = SignatureBuilder(FrameSize(), min_observations=1)
        for signature in builder.build(frames).values():
            assert sum(signature.weights.values()) == pytest.approx(1.0)
            for histogram in signature.histograms.values():
                assert histogram.sum() == pytest.approx(1.0)
                assert np.all(histogram >= 0)

    @given(frames=capture_sequences())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_self_match_is_top_rank(self, frames):
        """A candidate matched against a database containing its own
        signature scores highest (or ties) for itself."""
        builder = SignatureBuilder(FrameSize(), min_observations=1)
        signatures = builder.build(frames)
        database = ReferenceDatabase()
        for device, signature in signatures.items():
            database.add(device, signature)
        for device, signature in signatures.items():
            scores = match_signature(signature, database)
            assert scores[device] == pytest.approx(max(scores.values()))

    @given(frames=capture_sequences())
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_scores_bounded(self, frames):
        builder = SignatureBuilder(FrameSize(), min_observations=1)
        signatures = builder.build(frames)
        database = ReferenceDatabase()
        for device, signature in signatures.items():
            database.add(device, signature)
        for signature in signatures.values():
            _winner, score = best_match(signature, database)
            assert 0.0 <= score <= 1.0 + 1e-9


class TestPcapProperty:
    @given(frames=capture_sequences())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    def test_pcap_round_trip_preserves_fingerprint_inputs(self, frames):
        """Everything the fingerprint reads survives the pcap format
        (timestamps round to whole µs)."""
        buffer = io.BytesIO()
        write_trace_pcap(buffer, frames)
        restored = read_trace_pcap(buffer.getvalue())
        assert len(restored) == len(frames)
        for original, loaded in zip(frames, restored):
            assert loaded.sender == original.sender
            assert loaded.size == original.size
            assert loaded.rate_mbps == original.rate_mbps
            assert loaded.subtype == original.subtype
            assert loaded.timestamp_us == pytest.approx(
                original.timestamp_us, abs=1.0
            )
