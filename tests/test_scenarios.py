"""Scenario library: registry, eager validation, determinism.

Every library scenario is a *measurement fixture*: its capture must be
bit-identical run-to-run under its fixed seed (the golden matrix cells
hang off that), and ``stream()`` must replay the exact ``run()`` event
schedule (the streaming engine consumes it as a live feed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dot11.mac import MacAddress
from repro.scenarios import build_scenario, scenario_by_name, scenario_names
from repro.scenarios.library import scenario_preset
from repro.simulator import CbrTraffic, Scenario, StationSpec
from repro.traces.table import FrameTable

#: Short builds are enough to pin determinism without slowing tier-1.
DETERMINISM_DURATION_S = 30.0


def assert_tables_identical(left: FrameTable, right: FrameTable) -> None:
    """Bit-identical column comparison of two captures."""
    assert left.senders == right.senders
    assert left.ftype_keys == right.ftype_keys
    np.testing.assert_array_equal(left.timestamp_us, right.timestamp_us)
    np.testing.assert_array_equal(left.size, right.size)
    np.testing.assert_array_equal(left.rate_mbps, right.rate_mbps)
    np.testing.assert_array_equal(left.sender_idx, right.sender_idx)
    np.testing.assert_array_equal(left.ftype_idx, right.ftype_idx)


class TestRegistry:
    def test_all_presets_registered(self):
        names = scenario_names()
        assert len(names) >= 8
        for expected in (
            "office-baseline",
            "lecture-hall",
            "iot-swarm",
            "overlapping-bss",
            "mac-randomizing-crowd",
            "mobile-commuters",
            "power-save-fleet",
            "video-floor",
        ):
            assert expected in names

    def test_unknown_scenario_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="office-baseline"):
            scenario_by_name("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            scenario_preset(
                name="office-baseline",
                description="clash",
                duration_s=10.0,
                seed=1,
            )(lambda duration_s, seed, scale: Scenario(duration_s=duration_s))

    def test_metadata_is_consistent(self):
        for name in scenario_names():
            built = build_scenario(name)
            meta = built.metadata
            assert meta.name == name
            assert meta.station_count == len(built.scenario.specs)
            assert meta.station_count >= 2
            assert 0 < meta.training_s < meta.duration_s
            assert meta.window_s > 0
            assert meta.traffic_mix, f"{name} declares no traffic"
            assert meta.encrypted == built.scenario.encrypted
            assert meta.ap_count == built.scenario.ap_count

    def test_scale_grows_and_floors_station_count(self):
        base = build_scenario("lecture-hall").metadata.station_count
        assert build_scenario("lecture-hall", scale=2.0).metadata.station_count == 2 * base
        assert build_scenario("lecture-hall", scale=0.01).metadata.station_count == 2

    def test_simulate_is_memoised_per_build(self):
        built = build_scenario("office-baseline")
        assert built.simulate() is built.simulate()


class TestEagerValidation:
    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            build_scenario("office-baseline", duration_s=0.0)
        with pytest.raises(ValueError, match="duration"):
            build_scenario("office-baseline", duration_s=-5.0)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            build_scenario("office-baseline", scale=0.0)

    def test_duplicate_mac_rejected_at_add(self):
        scenario = Scenario(duration_s=10.0)
        mac = MacAddress.parse("02:00:00:00:00:01")
        scenario.add_station(
            StationSpec(name="a", profile="intel-2200bg-linux", mac=mac)
        )
        with pytest.raises(ValueError, match="already assigned"):
            scenario.add_station(
                StationSpec(name="b", profile="broadcom-4318-win", mac=mac)
            )

    def test_validate_rejects_zero_stations(self):
        with pytest.raises(ValueError, match="no stations"):
            Scenario(duration_s=10.0).validate()

    def test_validate_rejects_duplicate_names(self):
        scenario = Scenario(duration_s=10.0)
        scenario.add_station(StationSpec(name="twin", profile="intel-2200bg-linux"))
        scenario.add_station(StationSpec(name="twin", profile="broadcom-4318-win"))
        with pytest.raises(ValueError, match="duplicate station name"):
            scenario.validate()

    def test_validate_rejects_departure_before_arrival(self):
        scenario = Scenario(duration_s=10.0)
        scenario.add_station(
            StationSpec(
                name="ghost",
                profile="intel-2200bg-linux",
                arrival_s=5.0,
                departure_s=1.0,
            )
        )
        with pytest.raises(ValueError, match="departure before arrival"):
            scenario.validate()

    def test_validate_rejects_negative_arrival(self):
        scenario = Scenario(duration_s=10.0)
        scenario.add_station(
            StationSpec(
                name="early", profile="intel-2200bg-linux", arrival_s=-1.0
            )
        )
        with pytest.raises(ValueError, match="negative arrival"):
            scenario.validate()

    def test_every_library_preset_validates(self):
        for name in scenario_names():
            build_scenario(name).scenario.validate()


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_is_deterministic(name):
    """Two builds under the fixed seed yield bit-identical captures."""
    first = build_scenario(name, duration_s=DETERMINISM_DURATION_S).simulate()
    second = build_scenario(name, duration_s=DETERMINISM_DURATION_S).simulate()
    assert len(first) == len(second)
    assert first.device_names == second.device_names
    assert_tables_identical(first.table(), second.table())


@pytest.mark.parametrize("name", ["office-baseline", "iot-swarm"])
def test_stream_replays_run_event_for_event(name):
    """``Scenario.stream()`` yields the exact ``run()`` capture."""
    ran = build_scenario(name, duration_s=DETERMINISM_DURATION_S)
    streamed = build_scenario(name, duration_s=DETERMINISM_DURATION_S)
    run_captures = ran.scenario.run().captures
    stream_captures = list(streamed.scenario.stream(chunk_s=3.0))
    assert len(run_captures) == len(stream_captures)
    assert_tables_identical(
        FrameTable.from_frames(run_captures),
        FrameTable.from_frames(stream_captures),
    )
    for batch, live in zip(run_captures, stream_captures):
        assert batch.timestamp_us == live.timestamp_us
        assert batch.frame.subtype == live.frame.subtype
        assert batch.frame.addr2 == live.frame.addr2


def test_mac_randomizing_crowd_uses_local_macs():
    """The crowd preset presents locally-administered addresses only."""
    built = build_scenario("mac-randomizing-crowd")
    for spec in built.scenario.specs:
        assert spec.mac is not None
        assert spec.mac.is_locally_administered
