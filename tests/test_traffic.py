"""Unit tests for traffic generators."""

from __future__ import annotations

import random

import pytest

from repro.dot11.frames import FrameSubtype
from repro.simulator.traffic import (
    AppFrame,
    ArpProbeService,
    CbrTraffic,
    DST_AP,
    DST_BROADCAST,
    DST_MULTICAST,
    DST_PEER,
    IgmpService,
    KeepAliveService,
    LlmnrService,
    MdnsService,
    PowerSaveService,
    ProbeScanService,
    SsdpService,
    WebTraffic,
)


class TestAppFrame:
    def test_destination_validation(self):
        with pytest.raises(ValueError):
            AppFrame(subtype=FrameSubtype.DATA, size=100, destination="nowhere")

    def test_peer_requires_address(self):
        with pytest.raises(ValueError):
            AppFrame(subtype=FrameSubtype.DATA, size=100, destination=DST_PEER)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            AppFrame(subtype=FrameSubtype.DATA, size=4)


def _drain(source, duration_us: float, seed: int = 5):
    """Poll a source until ``duration_us`` of virtual time elapses."""
    rng = random.Random(seed)
    t = source.start_delay_us(rng)
    frames = []
    polls = 0
    while t <= duration_us and polls < 100_000:
        burst, t_next = source.next_burst(t, rng)
        frames.extend(burst)
        assert t_next > t, "generators must advance time"
        t = t_next
        polls += 1
    return frames


class TestCbr:
    def test_steady_rate(self):
        frames = _drain(CbrTraffic(interval_ms=10.0), 1e6)
        assert 80 <= len(frames) <= 120
        assert all(f.destination == DST_AP for f in frames)

    def test_payload_plus_overhead(self):
        frames = _drain(CbrTraffic(payload=1470, interval_ms=10.0), 1e5)
        assert all(f.size == 1504 for f in frames)

    def test_qos_flag(self):
        assert _drain(CbrTraffic(qos=True), 1e5)[0].subtype is FrameSubtype.QOS_DATA
        assert _drain(CbrTraffic(qos=False), 1e5)[0].subtype is FrameSubtype.DATA


class TestWeb:
    def test_bursty_sizes(self):
        frames = _drain(WebTraffic(mean_think_s=0.5), 30e6)
        sizes = {f.size for f in frames}
        assert 1500 in sizes
        assert any(size < 200 for size in sizes)

    def test_all_to_ap(self):
        frames = _drain(WebTraffic(mean_think_s=0.5), 10e6)
        assert all(f.destination == DST_AP for f in frames)


class TestServices:
    def test_ssdp_multicast_bursts(self):
        frames = _drain(SsdpService(period_s=10.0, burst_size=3), 120e6)
        assert all(f.destination == DST_MULTICAST for f in frames)
        assert len(frames) % 3 == 0
        assert 9 <= len(frames) <= 45

    def test_llmnr_repeats(self):
        frames = _drain(LlmnrService(mean_period_s=5.0, repeat=2), 60e6)
        assert len(frames) % 2 == 0
        assert all(f.size == 94 for f in frames)

    def test_igmp_periodicity(self):
        frames = _drain(IgmpService(period_s=10.0), 100e6)
        assert 8 <= len(frames) <= 12

    def test_arp_broadcast(self):
        frames = _drain(ArpProbeService(mean_period_s=5.0), 60e6)
        assert all(f.destination == DST_BROADCAST for f in frames)

    def test_mdns_size_spread(self):
        frames = _drain(MdnsService(period_s=5.0), 120e6)
        assert len({f.size for f in frames}) > 3

    def test_keepalive_to_ap(self):
        frames = _drain(KeepAliveService(period_s=5.0, size=70), 60e6)
        assert all(f.size == 70 and f.destination == DST_AP for f in frames)


class TestPowerSave:
    def test_alternating_pm_bits(self):
        frames = _drain(PowerSaveService(period_ms=50.0, wake_gap_ms=5.0), 5e6)
        assert len(frames) >= 4
        bits = [f.power_mgmt for f in frames]
        assert bits[:4] == [True, False, True, False]

    def test_null_subtype(self):
        plain = _drain(PowerSaveService(qos_null=False), 2e6)
        qos = _drain(PowerSaveService(qos_null=True), 2e6)
        assert plain[0].subtype is FrameSubtype.NULL_FUNCTION
        assert qos[0].subtype is FrameSubtype.QOS_NULL


class TestProbeScan:
    def test_burst_structure(self):
        source = ProbeScanService(
            period_s=30.0, period_jitter_s=0.1, burst_size=3, intra_burst_gap_ms=10.0
        )
        rng = random.Random(8)
        t = source.start_delay_us(rng)
        gaps = []
        for _ in range(30):
            frames, t_next = source.next_burst(t, rng)
            assert frames[0].subtype is FrameSubtype.PROBE_REQUEST
            assert frames[0].destination == DST_BROADCAST
            gaps.append(t_next - t)
            t = t_next
        short = [g for g in gaps if g < 1e5]
        long = [g for g in gaps if g > 1e6]
        assert short and long  # intra-burst gaps and scan periods
