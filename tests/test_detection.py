"""Unit tests for the detection phase (similarity & identification)."""

from __future__ import annotations

import pytest

from repro.core.database import ReferenceDatabase
from repro.core.detection import (
    DetectionConfig,
    evaluate_identification,
    evaluate_similarity,
    extract_window_candidates,
)
from repro.core.parameters import FrameSize
from repro.core.signature import SignatureBuilder
from repro.dot11.mac import MacAddress
from repro.traces.trace import Trace
from tests.conftest import make_data_capture

A = MacAddress.parse("00:13:e8:00:00:0a")
B = MacAddress.parse("00:18:f8:00:00:0b")
C = MacAddress.parse("00:14:a4:00:00:0c")
AP = MacAddress.parse("00:0f:b5:00:00:01")


def _distinct_trace(duration_s: float = 120.0) -> Trace:
    """A, B, C transmit at distinct sizes: perfectly separable."""
    frames = []
    sizes = {A: 200, B: 900, C: 1800}
    t = 0.0
    index = 0
    while t < duration_s * 1e6:
        sender = (A, B, C)[index % 3]
        frames.append(make_data_capture(t, sender, AP, size=sizes[sender]))
        index += 1
        t += 1e5
    return Trace(frames=frames, name="distinct")


@pytest.fixture()
def separable_setup():
    trace = _distinct_trace()
    config = DetectionConfig(window_s=20.0, min_observations=20)
    builder = SignatureBuilder(FrameSize(), min_observations=20)
    split = trace.split(training_s=30.0)
    database = ReferenceDatabase.from_training(builder, split.training.frames)
    candidates = extract_window_candidates(split.validation, builder, database, config)
    return database, candidates, config


class TestCandidateExtraction:
    def test_one_candidate_per_device_per_window(self, separable_setup):
        database, candidates, _config = separable_setup
        windows = {c.window_index for c in candidates}
        for window in windows:
            devices = [c.device for c in candidates if c.window_index == window]
            assert len(devices) == len(set(devices))

    def test_similarities_populated(self, separable_setup):
        database, candidates, _config = separable_setup
        for candidate in candidates:
            assert set(candidate.similarities) == set(database.devices)


class TestSimilarityTest:
    def test_perfectly_separable_auc(self, separable_setup):
        database, candidates, config = separable_setup
        outcome = evaluate_similarity(candidates, database, config)
        assert outcome.auc > 0.99
        assert outcome.known_candidates == outcome.total_candidates

    def test_low_threshold_returns_everyone(self, separable_setup):
        database, candidates, config = separable_setup
        outcome = evaluate_similarity(candidates, database, config)
        # The lowest-threshold point has TPR 1 and near-max FPR.
        max_fpr_point = max(outcome.curve.points, key=lambda p: p.fpr)
        assert max_fpr_point.tpr == pytest.approx(1.0)
        assert max_fpr_point.fpr == pytest.approx(1.0)

    def test_high_threshold_returns_nothing_wrong(self, separable_setup):
        database, candidates, config = separable_setup
        outcome = evaluate_similarity(candidates, database, config)
        top = min(outcome.curve.points, key=lambda p: p.fpr)
        assert top.fpr == pytest.approx(0.0)


class TestIdentificationTest:
    def test_perfectly_separable_identification(self, separable_setup):
        database, candidates, config = separable_setup
        outcome = evaluate_identification(candidates, database, config)
        assert outcome.ratio_at_fpr(0.01) == pytest.approx(1.0)

    def test_unknown_candidates_counted_in_fpr(self):
        # Train only on A; B appears at validation with A-like sizes.
        frames = []
        t = 0.0
        for _ in range(60):
            frames.append(make_data_capture(t, A, AP, size=500))
            t += 1e5
        for _ in range(60):
            frames.append(make_data_capture(t, B, AP, size=500))
            t += 1e5
        trace = Trace(frames=frames)
        config = DetectionConfig(window_s=6.0, min_observations=20)
        builder = SignatureBuilder(FrameSize(), min_observations=20)
        database = ReferenceDatabase.from_training(builder, trace.frames[:60])
        candidates = extract_window_candidates(
            Trace(frames=trace.frames[60:]), builder, database, config
        )
        outcome = evaluate_identification(candidates, database, config)
        # B is unknown but matches A perfectly: at low thresholds it is
        # identified as A, a false positive with zero known candidates.
        assert outcome.known_candidates == 0
        zero_threshold = outcome.curve.points[0]
        assert zero_threshold.fpr > 0

    def test_acceptance_threshold_reduces_fpr(self, separable_setup):
        database, candidates, config = separable_setup
        outcome = evaluate_identification(candidates, database, config)
        fprs = [p.fpr for p in outcome.curve.points]
        assert fprs == sorted(fprs, reverse=True)  # higher T, lower FPR
