"""Edge-case tests for station DCF state handling."""

from __future__ import annotations

import random

import pytest

from repro.dot11.frames import FrameSubtype
from repro.dot11.mac import MacAddress
from repro.dot11.timing import TIMING_BG_MIXED
from repro.simulator.channel import ChannelModel, Mobility, Position
from repro.simulator.device import Station
from repro.simulator.profiles import profile_by_name
from repro.simulator.traffic import AppFrame


def _station(profile: str = "intel-2200bg-linux", lossy: bool = False,
             seed: int = 1) -> Station:
    channel = (
        ChannelModel(noiseless=True)
        if not lossy
        # A hopeless link: everything fails.
        else ChannelModel(tx_power_dbm=-50.0, shadowing_sigma_db=0.0)
    )
    station = Station(
        mac=MacAddress.parse("00:13:e8:00:00:01"),
        profile=profile_by_name(profile),
        channel_model=channel,
        network_timing=TIMING_BG_MIXED,
        rng=random.Random(seed),
        mobility=Mobility(speed_mps=0.0, _position=Position(3, 3)),
        bssid=MacAddress.parse("00:0f:b5:0a:00:00"),
    )
    station.peer_position = Position(30, 30) if lossy else Position(4, 4)
    return station


class TestRetryHandling:
    def test_failed_exchange_keeps_frame_queued(self):
        station = _station(lossy=True)
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        outcome = station.execute_exchange(10_000.0)
        assert not outcome.dequeued
        assert station.retry_count == 1
        assert station.queue  # still pending

    def test_retry_bit_set_on_retransmission(self):
        station = _station(lossy=True)
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        station.execute_exchange(10_000.0)
        outcome = station.execute_exchange(50_000.0)
        data = [c for c in outcome.captures if c.frame.is_data]
        if data:  # capture to the monitor may itself be lossy
            assert data[0].frame.retry

    def test_drop_after_retry_limit(self):
        station = _station(lossy=True)
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        time = 10_000.0
        for _ in range(station.profile.retry_limit + 1):
            outcome = station.execute_exchange(time)
            time = outcome.busy_until_us + 1000
        assert not station.queue
        assert station.stats.dropped == 1
        assert station.retry_count == 0

    def test_contention_window_grows_with_retries(self):
        station = _station()
        assert station.timing.backoff_window(0) == 15
        assert station.timing.backoff_window(3) == 127


class TestBackoffState:
    def test_consume_elapsed_slots(self):
        station = _station()
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        station.backoff_counter = 10
        station.pending_difs_us = 50.0
        # Medium went busy 4 slots (80 µs) after DIFS completed.
        station.consume_elapsed_slots(1000.0 + 50.0 + 80.0, 1000.0)
        assert station.backoff_counter == 6

    def test_consume_never_negative(self):
        station = _station()
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        station.backoff_counter = 2
        station.pending_difs_us = 50.0
        station.consume_elapsed_slots(1000.0 + 50.0 + 500.0, 1000.0)
        assert station.backoff_counter == 0

    def test_no_consumption_before_difs(self):
        station = _station()
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        station.backoff_counter = 5
        station.pending_difs_us = 50.0
        station.consume_elapsed_slots(1020.0, 1000.0)  # mid-DIFS
        assert station.backoff_counter == 5

    def test_access_time_without_backoff_raises(self):
        station = _station()
        with pytest.raises(RuntimeError):
            station.access_time(0.0)

    def test_exchange_with_empty_queue_raises(self):
        station = _station()
        with pytest.raises(RuntimeError):
            station.execute_exchange(0.0)


class TestQosDowngrade:
    def test_non_qos_card_sends_plain_data(self):
        station = _station(profile="broadcom-4318-win")  # qos_capable=False
        frame = station.materialize(
            AppFrame(subtype=FrameSubtype.QOS_DATA, size=500), retry=False
        )
        assert frame.subtype is FrameSubtype.DATA

    def test_non_qos_card_sends_plain_null(self):
        station = _station(profile="broadcom-4318-win")
        frame = station.materialize(
            AppFrame(subtype=FrameSubtype.QOS_NULL, size=30), retry=False
        )
        assert frame.subtype is FrameSubtype.NULL_FUNCTION

    def test_qos_card_keeps_qos(self):
        station = _station(profile="intel-2200bg-linux")
        frame = station.materialize(
            AppFrame(subtype=FrameSubtype.QOS_DATA, size=500), retry=False
        )
        assert frame.subtype is FrameSubtype.QOS_DATA

    def test_mgmt_frames_unaffected(self):
        station = _station(profile="broadcom-4318-win")
        frame = station.materialize(
            AppFrame(subtype=FrameSubtype.PROBE_REQUEST, size=120,
                     destination="broadcast"),
            retry=False,
        )
        assert frame.subtype is FrameSubtype.PROBE_REQUEST


class TestControlResponseRates:
    def test_ofdm_response_rates(self):
        station = _station()
        assert station.control_response_rate(54.0) == 24.0
        assert station.control_response_rate(18.0) == 12.0
        assert station.control_response_rate(6.0) == 6.0

    def test_dsss_response_rates(self):
        station = _station()
        assert station.control_response_rate(11.0) == 2.0
        assert station.control_response_rate(1.0) == 1.0
