"""Tests for the sharded reference database and its executors.

Exactness contract (DESIGN.md §5): every shard is matched by the
unmodified single-shard engine, so a shard's score columns are *bitwise
identical* to running that engine on a database holding exactly the
shard's devices; K=1 is bitwise identical to the unsharded database;
K>1 whole-matrix comparisons against the unsharded engine agree to
BLAS reduction-order (≤ a few ULP, asserted at atol 1e-12).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dot11.mac import vendor_mac
from repro.core.database import ReferenceDatabase
from repro.core.matcher import batch_match_signatures, best_match, match_signature
from repro.core.sharding import (
    ConsistentHashRing,
    ProcessPoolShardExecutor,
    SequentialShardExecutor,
    ShardedReferenceDatabase,
)
from repro.core.signature import Signature
from repro.core.similarity import intersection_similarity
from tests.test_batch_matching import random_database, random_signature


def sharded_copy(database: ReferenceDatabase, k: int) -> ShardedReferenceDatabase:
    return ShardedReferenceDatabase.from_database(database, shard_count=k)


class TestConsistentHashRing:
    def test_deterministic_across_instances(self):
        devices = [vendor_mac("00:13:e8", i + 1) for i in range(200)]
        a, b = ConsistentHashRing(4), ConsistentHashRing(4)
        assert [a.shard_of(d) for d in devices] == [b.shard_of(d) for d in devices]

    def test_single_shard_maps_everything_to_zero(self):
        ring = ConsistentHashRing(1)
        assert {ring.shard_of(vendor_mac("00:13:e8", i + 1)) for i in range(50)} == {0}

    def test_growth_moves_about_one_kth(self):
        devices = [vendor_mac("00:13:e8", i + 1) for i in range(2000)]
        before, after = ConsistentHashRing(4), ConsistentHashRing(5)
        moved = sum(before.shard_of(d) != after.shard_of(d) for d in devices)
        # Consistency: only ~1/5 of devices relocate (vnode variance
        # allowed for), nothing like the 4/5 a modular rehash causes.
        assert moved / len(devices) < 0.40

    def test_reasonable_balance(self):
        devices = [vendor_mac("00:13:e8", i + 1) for i in range(4000)]
        ring = ConsistentHashRing(4)
        counts = [0, 0, 0, 0]
        for device in devices:
            counts[ring.shard_of(device)] += 1
        assert min(counts) > 0.4 * (len(devices) / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)
        with pytest.raises(ValueError):
            ConsistentHashRing(2, vnodes=0)


class TestMembership:
    def test_mirrors_reference_database_api(self):
        rng = np.random.default_rng(21)
        database = random_database(rng, devices=40)
        sharded = sharded_copy(database, 4)
        assert len(sharded) == len(database)
        assert sharded.devices == database.devices  # global insertion order
        assert list(sharded) == database.devices
        for device, signature in database.items():
            assert device in sharded
            assert sharded.get(device) is signature
        assert sum(sharded.shard_sizes()) == len(database)
        assert [d for d, _ in sharded.items()] == database.devices

    def test_add_remove_replace(self):
        rng = np.random.default_rng(22)
        sharded = ShardedReferenceDatabase(shard_count=3)
        a = vendor_mac("00:13:e8", 1)
        b = vendor_mac("00:18:f8", 2)
        sharded.add(a, random_signature(rng))
        sharded.add(b, random_signature(rng))
        assert sharded.devices == [a, b]
        replacement = random_signature(rng)
        sharded.add(a, replacement)  # replace keeps insertion position
        assert sharded.devices == [a, b]
        assert sharded.get(a) is replacement
        assert sharded.remove(a) is True
        assert sharded.remove(a) is False
        assert a not in sharded and sharded.devices == [b]

    def test_device_always_lands_on_its_ring_shard(self):
        rng = np.random.default_rng(23)
        sharded = ShardedReferenceDatabase(shard_count=5)
        for i in range(60):
            device = vendor_mac("00:13:e8", i + 1)
            sharded.add(device, random_signature(rng))
            owner = sharded.shard_index(device)
            assert device in sharded.shards[owner]

    def test_merge_policies(self):
        rng = np.random.default_rng(24)
        database = random_database(rng, devices=10)
        sharded = sharded_copy(database, 4)
        other = ReferenceDatabase()
        conflicting = database.devices[3]
        fresh = vendor_mac("00:18:f8", 99)
        other.add(conflicting, random_signature(rng))
        other.add(fresh, random_signature(rng))
        report = sharded.merge(other)
        assert report.added == [fresh] and report.replaced == [conflicting]
        assert sharded.get(conflicting) is other.get(conflicting)
        with pytest.raises(ValueError):
            sharded.merge(other, on_conflict="error")
        keep = sharded.merge(other, on_conflict="keep")
        assert keep.skipped == [conflicting, fresh] and not keep.added
        with pytest.raises(ValueError):
            sharded.merge(other, on_conflict="bogus")


class TestScoreEquality:
    def test_k1_is_bitwise_identical_to_unsharded(self):
        rng = np.random.default_rng(25)
        database = random_database(rng, devices=60)
        candidates = [random_signature(rng) for _ in range(25)]
        reference = batch_match_signatures(candidates, database)
        sharded = sharded_copy(database, 1)
        assert np.array_equal(sharded.batch_match(candidates), reference)

    def test_each_shard_is_bitwise_identical_to_single_shard_engine(self):
        """A shard's columns equal the engine run on that shard alone."""
        rng = np.random.default_rng(26)
        database = random_database(rng, devices=80)
        candidates = [random_signature(rng) for _ in range(15)]
        sharded = sharded_copy(database, 4)
        merged = sharded.batch_match(candidates)
        column_of = {device: i for i, device in enumerate(sharded.devices)}
        for shard in sharded.shards:
            if not len(shard):
                continue
            alone = ReferenceDatabase()
            for device, signature in shard.items():
                alone.add(device, signature)
            expected = batch_match_signatures(candidates, alone)
            columns = [column_of[device] for device in shard.devices]
            assert np.array_equal(merged[:, columns], expected)

    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_unsharded_engine(self, k):
        rng = np.random.default_rng(27)
        database = random_database(rng, devices=60)
        candidates = [random_signature(rng) for _ in range(25)]
        reference = batch_match_signatures(candidates, database)
        sharded = sharded_copy(database, k)
        np.testing.assert_allclose(
            sharded.batch_match(candidates), reference, rtol=0, atol=1e-12
        )

    def test_non_cosine_measure_fans_out_too(self):
        rng = np.random.default_rng(28)
        database = random_database(rng, devices=20)
        candidates = [random_signature(rng) for _ in range(6)]
        reference = batch_match_signatures(
            candidates, database, intersection_similarity
        )
        sharded = sharded_copy(database, 3)
        np.testing.assert_allclose(
            sharded.batch_match(candidates, intersection_similarity),
            reference,
            rtol=0,
            atol=1e-12,
        )

    def test_matcher_dispatch(self):
        """match_signature / batch / best_match accept a sharded db."""
        rng = np.random.default_rng(29)
        database = random_database(rng, devices=30)
        sharded = sharded_copy(database, 4)
        candidate = random_signature(rng)
        via_matcher = match_signature(candidate, sharded)
        assert list(via_matcher) == sharded.devices
        np.testing.assert_allclose(
            list(via_matcher.values()),
            list(match_signature(candidate, database).values()),
            rtol=0,
            atol=1e-12,
        )
        matrix = batch_match_signatures([candidate], sharded)
        assert matrix.shape == (1, len(database))
        winner, score = best_match(candidate, sharded)
        ref_winner, ref_score = best_match(candidate, database)
        assert winner == ref_winner
        assert score == pytest.approx(ref_score, abs=1e-12)

    def test_empty_database_and_empty_candidates(self):
        sharded = ShardedReferenceDatabase(shard_count=4)
        assert sharded.batch_match([]).shape == (0, 0)
        rng = np.random.default_rng(30)
        assert sharded.batch_match([random_signature(rng)]).shape == (1, 0)
        assert sharded.top_k([random_signature(rng)], 3) == [[]]


class TestTopKMerge:
    def brute_force(self, sharded, candidates, k):
        scores = sharded.batch_match(candidates)
        devices = sharded.devices
        out = []
        for row in scores:
            order = sorted(range(len(row)), key=lambda i: (-row[i], i))[:k]
            out.append([(devices[i], float(row[i])) for i in order])
        return out

    @pytest.mark.parametrize("k", [1, 3, 10, 200])
    def test_equals_global_selection(self, k):
        rng = np.random.default_rng(31)
        database = random_database(rng, devices=50)
        sharded = sharded_copy(database, 4)
        candidates = [random_signature(rng) for _ in range(12)]
        assert sharded.top_k(candidates, k) == self.brute_force(
            sharded, candidates, k
        )

    def test_tie_break_towards_earliest_insertion(self):
        """Duplicate signatures score identically: earliest device wins."""
        rng = np.random.default_rng(32)
        shared = random_signature(rng)
        sharded = ShardedReferenceDatabase(shard_count=4)
        devices = [vendor_mac("00:13:e8", i + 1) for i in range(12)]
        for device in devices:
            sharded.add(device, shared)
        [top] = sharded.top_k([shared], 5)
        assert [device for device, _ in top] == devices[:5]

    def test_k_must_be_positive(self):
        sharded = ShardedReferenceDatabase(shard_count=2)
        with pytest.raises(ValueError):
            sharded.top_k([], 0)


class TestProcessPoolExecutor:
    def test_pool_matches_sequential_bitwise(self):
        rng = np.random.default_rng(33)
        database = random_database(rng, devices=40)
        sharded = sharded_copy(database, 4)
        candidates = [random_signature(rng) for _ in range(10)]
        sequential = sharded.batch_match(candidates)
        with ProcessPoolShardExecutor(sharded, max_workers=2) as executor:
            pooled = sharded.batch_match(candidates, executor=executor)
            assert np.array_equal(pooled, sequential)
            assert sharded.top_k(candidates, 4, executor=executor) == sharded.top_k(
                candidates, 4
            )

    def test_pool_respawns_after_mutation(self):
        rng = np.random.default_rng(34)
        database = random_database(rng, devices=20)
        sharded = sharded_copy(database, 2)
        candidates = [random_signature(rng) for _ in range(5)]
        with ProcessPoolShardExecutor(sharded, max_workers=2) as executor:
            sharded.batch_match(candidates, executor=executor)
            newcomer = vendor_mac("00:18:f8", 77)
            sharded.add(newcomer, random_signature(rng))
            pooled = sharded.batch_match(candidates, executor=executor)
            assert pooled.shape == (5, 21)
            assert np.array_equal(pooled, sharded.batch_match(candidates))

    def test_pool_rejects_foreign_database(self):
        rng = np.random.default_rng(35)
        a = sharded_copy(random_database(rng, devices=5), 2)
        b = sharded_copy(random_database(rng, devices=5), 2)
        with ProcessPoolShardExecutor(a, max_workers=1) as executor:
            with pytest.raises(ValueError):
                b.batch_match([random_signature(rng)], executor=executor)


class TestExecutorProtocol:
    def test_sequential_executor_is_the_default(self):
        rng = np.random.default_rng(36)
        database = random_database(rng, devices=15)
        sharded = sharded_copy(database, 3)
        candidates = [random_signature(rng) for _ in range(4)]
        explicit = sharded.batch_match(
            candidates, executor=SequentialShardExecutor()
        )
        assert np.array_equal(explicit, sharded.batch_match(candidates))


class TestApplicationsAcceptShardedDatabase:
    """The Section VII detectors run unchanged on a sharded database."""

    def test_spoof_detector_with_sharded_database(self, small_office_trace):
        from repro.applications.spoof_detector import SpoofDetector, SpoofVerdict

        frames = small_office_trace.frames
        half = len(frames) // 2
        learner = SpoofDetector(min_observations=30)
        allowed = {
            sender for sender in small_office_trace.senders() if sender is not None
        }
        learner.learn(frames[:half], allowed)
        sharded = ShardedReferenceDatabase.from_database(learner.database, 4)
        guarded = SpoofDetector(min_observations=30, database=sharded)
        plain_checks = learner.check_window(frames[half:])
        sharded_checks = guarded.check_window(frames[half:])
        assert [c.device for c in sharded_checks] == [
            c.device for c in plain_checks
        ]
        assert [c.verdict for c in sharded_checks] == [
            c.verdict for c in plain_checks
        ]
        assert any(
            c.verdict is SpoofVerdict.GENUINE for c in sharded_checks
        )

    def test_tracker_with_sharded_database(self, small_office_trace):
        from repro.applications.tracker import DeviceTracker

        frames = small_office_trace.frames
        half = len(frames) // 2
        learner = DeviceTracker(min_observations=30)
        learner.learn(frames[:half])
        sharded = ShardedReferenceDatabase.from_database(learner.database, 3)
        tracker = DeviceTracker(min_observations=30, database=sharded)
        import random

        rng = random.Random(9)
        pseudonym_of: dict = {}
        pseudonymous = []
        for frame in frames[half:]:
            sender = frame.sender
            if sender is None or not frame.frame.subtype.has_transmitter_address:
                pseudonymous.append(frame)
                continue
            if sender not in pseudonym_of:
                pseudonym_of[sender] = sender.randomized(rng)
            pseudonymous.append(frame.with_sender(pseudonym_of[sender]))
        links = tracker.link_signatures(
            tracker.builder.build(pseudonymous), window_index=0
        )
        plain_links = learner.link_signatures(
            learner.builder.build(pseudonymous), window_index=0
        )
        assert links  # the office devices are active enough to link
        assert [link.pseudonym for link in links] == [
            link.pseudonym for link in plain_links
        ]
        assert [link.linked_device for link in links] == [
            link.linked_device for link in plain_links
        ]
