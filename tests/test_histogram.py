"""Unit and property tests for histogram binning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import CategoricalBins, Histogram, UniformBins


class TestUniformBins:
    def test_bin_count(self):
        assert UniformBins(lo=0, hi=100, width=10).bin_count == 10
        assert UniformBins(lo=0, hi=105, width=10).bin_count == 11

    def test_index_interior(self):
        bins = UniformBins(lo=0, hi=100, width=10)
        assert bins.index(0.0) == 0
        assert bins.index(9.999) == 0
        assert bins.index(10.0) == 1
        assert bins.index(99.9) == 9

    def test_clipping_default(self):
        bins = UniformBins(lo=0, hi=100, width=10)
        assert bins.index(-5.0) == 0
        assert bins.index(150.0) == 9

    def test_drop_outside(self):
        bins = UniformBins(lo=0, hi=100, width=10, drop_outside=True)
        assert bins.index(-5.0) is None
        assert bins.index(150.0) is None
        assert bins.index(50.0) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformBins(lo=0, hi=100, width=0)
        with pytest.raises(ValueError):
            UniformBins(lo=100, hi=100, width=10)

    def test_labels(self):
        bins = UniformBins(lo=0, hi=30, width=10)
        assert bins.bin_label(0) == "[0,10)"
        assert bins.bin_label(2) == "[20,30)"

    @given(st.floats(min_value=0, max_value=99.999, allow_nan=False))
    def test_index_in_range_property(self, value):
        bins = UniformBins(lo=0, hi=100, width=7)
        index = bins.index(value)
        assert index is not None
        assert 0 <= index < bins.bin_count
        low = bins.lo + index * bins.width
        assert low <= value < low + bins.width + 1e-9


class TestCategoricalBins:
    def test_rate_categories(self):
        bins = CategoricalBins(categories=(1.0, 2.0, 5.5, 11.0, 54.0))
        assert bins.index(5.5) == 2
        assert bins.index(54.0) == 4

    def test_unknown_category_dropped(self):
        bins = CategoricalBins(categories=(1.0, 2.0))
        assert bins.index(3.0) is None

    def test_tolerance(self):
        bins = CategoricalBins(categories=(5.5,), tolerance=0.01)
        assert bins.index(5.505) == 0
        assert bins.index(5.6) is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoricalBins(categories=())

    def test_labels(self):
        bins = CategoricalBins(categories=(5.5, 54.0))
        assert bins.bin_label(0) == "5.5"
        assert bins.bin_label(1) == "54"


class TestHistogram:
    def test_add_and_frequencies(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1))
        for value in [0.5, 0.7, 3.2, 9.9]:
            assert histogram.add(value)
        frequencies = histogram.frequencies()
        assert frequencies[0] == pytest.approx(0.5)
        assert frequencies[3] == pytest.approx(0.25)
        assert frequencies.sum() == pytest.approx(1.0)

    def test_empty_frequencies_are_zero(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1))
        assert histogram.frequencies().sum() == 0.0

    def test_dropped_values_not_counted(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1, drop_outside=True))
        assert not histogram.add(50.0)
        assert histogram.total == 0

    def test_add_many(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1, drop_outside=True))
        kept = histogram.add_many([1.0, 2.0, 100.0])
        assert kept == 2

    def test_merge(self):
        spec = UniformBins(lo=0, hi=10, width=1)
        a = Histogram(spec)
        b = Histogram(spec)
        a.add_many([1.0, 2.0])
        b.add_many([2.0, 3.0])
        merged = a.merged_with(b)
        assert merged.total == 4
        assert merged.counts[2] == 2

    def test_merge_spec_mismatch(self):
        a = Histogram(UniformBins(lo=0, hi=10, width=1))
        b = Histogram(UniformBins(lo=0, hi=20, width=1))
        with pytest.raises(ValueError):
            a.merged_with(b)

    @given(st.lists(st.floats(min_value=-50, max_value=150, allow_nan=False), max_size=200))
    def test_frequencies_always_normalised(self, values):
        histogram = Histogram(UniformBins(lo=0, hi=100, width=10))
        histogram.add_many(values)
        frequencies = histogram.frequencies()
        assert np.all(frequencies >= 0)
        if values:
            assert frequencies.sum() == pytest.approx(1.0)
        assert histogram.total == len(values)  # clipping keeps everything
