"""Unit and property tests for histogram binning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import BinSpec, CategoricalBins, Histogram, UniformBins


class TestUniformBins:
    def test_bin_count(self):
        assert UniformBins(lo=0, hi=100, width=10).bin_count == 10
        assert UniformBins(lo=0, hi=105, width=10).bin_count == 11

    def test_index_interior(self):
        bins = UniformBins(lo=0, hi=100, width=10)
        assert bins.index(0.0) == 0
        assert bins.index(9.999) == 0
        assert bins.index(10.0) == 1
        assert bins.index(99.9) == 9

    def test_clipping_default(self):
        bins = UniformBins(lo=0, hi=100, width=10)
        assert bins.index(-5.0) == 0
        assert bins.index(150.0) == 9

    def test_drop_outside(self):
        bins = UniformBins(lo=0, hi=100, width=10, drop_outside=True)
        assert bins.index(-5.0) is None
        assert bins.index(150.0) is None
        assert bins.index(50.0) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformBins(lo=0, hi=100, width=0)
        with pytest.raises(ValueError):
            UniformBins(lo=100, hi=100, width=10)

    def test_labels(self):
        bins = UniformBins(lo=0, hi=30, width=10)
        assert bins.bin_label(0) == "[0,10)"
        assert bins.bin_label(2) == "[20,30)"

    @given(st.floats(min_value=0, max_value=99.999, allow_nan=False))
    def test_index_in_range_property(self, value):
        bins = UniformBins(lo=0, hi=100, width=7)
        index = bins.index(value)
        assert index is not None
        assert 0 <= index < bins.bin_count
        low = bins.lo + index * bins.width
        assert low <= value < low + bins.width + 1e-9


class TestCategoricalBins:
    def test_rate_categories(self):
        bins = CategoricalBins(categories=(1.0, 2.0, 5.5, 11.0, 54.0))
        assert bins.index(5.5) == 2
        assert bins.index(54.0) == 4

    def test_unknown_category_dropped(self):
        bins = CategoricalBins(categories=(1.0, 2.0))
        assert bins.index(3.0) is None

    def test_tolerance(self):
        bins = CategoricalBins(categories=(5.5,), tolerance=0.01)
        assert bins.index(5.505) == 0
        assert bins.index(5.6) is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoricalBins(categories=())

    def test_labels(self):
        bins = CategoricalBins(categories=(5.5, 54.0))
        assert bins.bin_label(0) == "5.5"
        assert bins.bin_label(1) == "54"


class TestHistogram:
    def test_add_and_frequencies(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1))
        for value in [0.5, 0.7, 3.2, 9.9]:
            assert histogram.add(value)
        frequencies = histogram.frequencies()
        assert frequencies[0] == pytest.approx(0.5)
        assert frequencies[3] == pytest.approx(0.25)
        assert frequencies.sum() == pytest.approx(1.0)

    def test_empty_frequencies_are_zero(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1))
        assert histogram.frequencies().sum() == 0.0

    def test_dropped_values_not_counted(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1, drop_outside=True))
        assert not histogram.add(50.0)
        assert histogram.total == 0

    def test_add_many(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1, drop_outside=True))
        kept = histogram.add_many([1.0, 2.0, 100.0])
        assert kept == 2

    def test_merge(self):
        spec = UniformBins(lo=0, hi=10, width=1)
        a = Histogram(spec)
        b = Histogram(spec)
        a.add_many([1.0, 2.0])
        b.add_many([2.0, 3.0])
        merged = a.merged_with(b)
        assert merged.total == 4
        assert merged.counts[2] == 2

    def test_merge_spec_mismatch(self):
        a = Histogram(UniformBins(lo=0, hi=10, width=1))
        b = Histogram(UniformBins(lo=0, hi=20, width=1))
        with pytest.raises(ValueError):
            a.merged_with(b)

    @given(st.lists(st.floats(min_value=-50, max_value=150, allow_nan=False), max_size=200))
    def test_frequencies_always_normalised(self, values):
        histogram = Histogram(UniformBins(lo=0, hi=100, width=10))
        histogram.add_many(values)
        frequencies = histogram.frequencies()
        assert np.all(frequencies >= 0)
        if values:
            assert frequencies.sum() == pytest.approx(1.0)
        assert histogram.total == len(values)  # clipping keeps everything


VECTOR_SPECS = [
    UniformBins(lo=0, hi=100, width=7),
    UniformBins(lo=-20, hi=80, width=13, drop_outside=True),
    CategoricalBins(categories=(5.5, 1.0, 54.0, 2.0, 11.0)),
    CategoricalBins(categories=(1.0, 1.1, 1.2), tolerance=0.08),
    # Overlapping tolerance windows exercise the declared-order
    # fallback path.
    CategoricalBins(categories=(5.0, 5.1), tolerance=0.2),
]


class TestVectorizedEquivalence:
    """The scalar and vectorized paths must agree bin for bin."""

    @pytest.mark.parametrize("spec", VECTOR_SPECS, ids=lambda s: type(s).__name__ + str(s.bin_count))
    @given(values=st.lists(st.floats(min_value=-60, max_value=160, allow_nan=False), max_size=150))
    def test_index_many_matches_index(self, spec, values):
        array = np.array(values, dtype=np.float64)
        vectorized = spec.index_many(array)
        scalar = [spec.index(v) for v in values]
        assert [None if i < 0 else int(i) for i in vectorized] == scalar

    @pytest.mark.parametrize("spec", VECTOR_SPECS, ids=lambda s: type(s).__name__ + str(s.bin_count))
    @given(values=st.lists(st.floats(min_value=-60, max_value=160, allow_nan=False), max_size=150))
    def test_add_array_matches_add_many(self, spec, values):
        one_by_one = Histogram(spec)
        batched = Histogram(spec)
        kept_scalar = one_by_one.add_many(values)
        kept_vector = batched.add_array(np.array(values, dtype=np.float64))
        assert kept_scalar == kept_vector
        assert one_by_one.total == batched.total
        assert np.array_equal(one_by_one.counts, batched.counts)

    def test_add_array_empty(self):
        histogram = Histogram(UniformBins(lo=0, hi=10, width=1))
        assert histogram.add_array(np.array([])) == 0
        assert histogram.total == 0

    def test_uniform_nan_raises_like_scalar(self):
        bins = UniformBins(lo=0, hi=10, width=1)
        with pytest.raises(ValueError):
            bins.index(float("nan"))
        with pytest.raises(ValueError):
            bins.index_many(np.array([1.0, float("nan")]))

    def test_uniform_infinities_clip_like_scalar(self):
        for drop in (False, True):
            bins = UniformBins(lo=0, hi=10, width=1, drop_outside=drop)
            values = np.array([float("-inf"), float("inf"), 5.0])
            vectorized = bins.index_many(values)
            scalar = [bins.index(v) for v in values]
            assert [None if i < 0 else int(i) for i in vectorized] == scalar

    def test_categorical_nan_discarded_both_paths(self):
        bins = CategoricalBins(categories=(1.0, 2.0))
        assert bins.index(float("nan")) is None
        assert bins.index_many(np.array([float("nan"), 1.0])).tolist() == [-1, 0]

    def test_index_many_generic_fallback(self):
        bins = CategoricalBins(categories=(1.0, 2.0, 3.0))
        values = np.array([1.0, 2.5, 3.0, 9.0])
        generic = BinSpec.index_many(bins, values)
        assert np.array_equal(generic, bins.index_many(values))

    def test_categorical_index_is_sublinear_ready(self):
        # The sorted lookup must keep exact declared-order positions.
        bins = CategoricalBins(categories=(54.0, 1.0, 11.0, 2.0, 5.5))
        for position, category in enumerate(bins.categories):
            assert bins.index(category) == position
            assert bins.index_many(np.array([category]))[0] == position
