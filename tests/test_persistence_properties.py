"""Property-based tests for persistence round-trips and the pack.

Two properties the ISSUE pins down:

* ``load(save(db)) == db`` bin for bin, for *arbitrary* generated
  databases — including sparse histograms, devices missing frame
  types, missing observation counts, and ragged bin widths;
* under any add/replace/remove sequence the incrementally maintained
  :class:`~repro.core.database.PackedDatabase` stays equal to a fresh
  :meth:`PackedDatabase.from_signatures` rebuild (the stateful
  counterpart of the example-based tests in ``tests/test_database.py``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.dot11.mac import MacAddress, vendor_mac
from repro.core.database import PackedDatabase, ReferenceDatabase
from repro.core.matcher import batch_match_signatures
from repro.core.signature import Signature
from repro.persistence import load_database, save_database
from tests.test_database import assert_pack_equivalent
from tests.test_persistence import assert_databases_equal

FRAME_TYPES = ("Data", "Beacon", "RTS", "Probe Request", "QoS Data")


@st.composite
def signatures(draw, bin_count: int | None = None) -> Signature:
    """Arbitrary (but valid) signatures, sparse support included."""
    present = draw(
        st.lists(
            st.sampled_from(FRAME_TYPES), min_size=1, max_size=4, unique=True
        )
    )
    bins = (
        bin_count
        if bin_count is not None
        else draw(st.integers(min_value=1, max_value=12))
    )
    histograms: dict[str, np.ndarray] = {}
    weights: dict[str, float] = {}
    counts: dict[str, int] = {}
    for ftype in present:
        values = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=bins,
                max_size=bins,
            )
        )
        histograms[ftype] = np.asarray(values, dtype=np.float64)
        weights[ftype] = draw(st.floats(min_value=0.0, max_value=1.0))
        if draw(st.booleans()):
            counts[ftype] = draw(st.integers(min_value=0, max_value=10_000))
    return Signature(
        histograms=histograms, weights=weights, observation_counts=counts
    )


@st.composite
def databases(draw) -> ReferenceDatabase:
    """Databases mixing device structure; sometimes ragged."""
    database = ReferenceDatabase()
    device_count = draw(st.integers(min_value=0, max_value=8))
    ragged = draw(st.booleans())
    shared_bins = draw(st.integers(min_value=1, max_value=12))
    for index in range(device_count):
        bins = None if ragged else shared_bins
        database.add(
            vendor_mac("00:13:e8", index + 1), draw(signatures(bin_count=bins))
        )
    return database


class TestRoundTripProperty:
    @given(database=databases())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_load_save_identity(self, database, tmp_path_factory):
        store = tmp_path_factory.mktemp("prop-store") / "db"
        save_database(database, store, parameter="interarrival")
        loaded = load_database(store)
        assert loaded.parameter == "interarrival"
        assert_databases_equal(database, loaded.database)

    @given(database=databases())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_loaded_scores_bitwise_equal(self, database, tmp_path_factory):
        assume(len(database) > 0 and database.packed() is not None)
        store = tmp_path_factory.mktemp("prop-score") / "db"
        save_database(database, store)
        loaded = load_database(store).database
        # The database's own signatures double as window candidates —
        # guaranteed bin-compatible with every reference.
        candidates = [signature for _, signature in database.items()][:3]
        assert np.array_equal(
            batch_match_signatures(candidates, database),
            batch_match_signatures(candidates, loaded),
        )


class PackConsistencyMachine(RuleBasedStateMachine):
    """Stateful property: the incremental pack never drifts.

    Random interleavings of add / replace / remove (including ragged
    transitions and frame-type purges) must leave
    ``ReferenceDatabase.packed()`` equal to a from-scratch
    ``PackedDatabase.from_signatures`` rebuild.
    """

    POOL = [vendor_mac("00:13:e8", index + 1) for index in range(8)]

    def __init__(self) -> None:
        super().__init__()
        self.database = ReferenceDatabase()
        self.database.packed()  # start on the incremental path

    @rule(index=st.integers(min_value=0, max_value=7), signature=signatures())
    def add_or_replace(self, index: int, signature: Signature) -> None:
        self.database.add(self.POOL[index], signature)

    @rule(index=st.integers(min_value=0, max_value=7))
    def remove(self, index: int) -> None:
        self.database.remove(self.POOL[index])

    @rule()
    def read_pack(self) -> None:
        # Materialising the snapshot between mutations exercises the
        # cache-staleness bookkeeping, not just the final state.
        self.database.packed()

    @invariant()
    def pack_matches_fresh_rebuild(self) -> None:
        assert_pack_equivalent(self.database)

    @invariant()
    def membership_is_consistent(self) -> None:
        packed = self.database.packed()
        if packed is not None:
            assert list(packed.devices) == self.database.devices


PackConsistencyMachine.TestCase.settings = settings(
    max_examples=30,
    stateful_step_count=30,
    suppress_health_check=[HealthCheck.too_slow],
)
TestPackConsistency = PackConsistencyMachine.TestCase
