"""End-to-end tests for the streaming engine.

The load-bearing invariant: with decay off and tumbling windows, the
engine consuming a frame source one frame at a time produces exactly
the matches of the batch pipeline
(:func:`~repro.core.detection.extract_window_candidates`) on the same
trace — across in-memory, pcap and live-simulator sources.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.database import ReferenceDatabase
from repro.core.detection import DetectionConfig, extract_window_candidates
from repro.core.parameters import InterArrivalTime
from repro.core.signature import SignatureBuilder
from repro.streaming import (
    CollectingSink,
    DeviceMatched,
    JsonLinesSink,
    LiveTracker,
    OnlineRogueApGuard,
    OnlineSpoofGuard,
    PseudonymLinked,
    RogueApAlert,
    SpoofAlert,
    StreamEngine,
    StreamingSignatureBuilder,
    WindowClosed,
    WindowConfig,
    pcap_source,
    replay_source,
)

PARAMETER = InterArrivalTime()
WINDOW_S = 15.0
MIN_OBS = 30


@pytest.fixture(scope="module")
def reference_setup(small_office_trace):
    """Training database + validation remainder of the office trace."""
    split = small_office_trace.split(45.0)
    builder = SignatureBuilder(PARAMETER, min_observations=MIN_OBS)
    database = ReferenceDatabase.from_training(builder, split.training.frames)
    assert len(database) >= 2
    return builder, database, split


def make_engine(database, window_s=WINDOW_S, **kwargs):
    return StreamEngine(
        lambda: StreamingSignatureBuilder(PARAMETER, min_observations=MIN_OBS),
        database=database,
        window=WindowConfig(window_s=window_s),
        **kwargs,
    )


def batch_best(candidates):
    """(window, device) → (best reference, similarity) from the batch run."""
    out = {}
    for candidate in candidates:
        best = max(candidate.similarities, key=lambda d: candidate.similarities[d])
        out[(candidate.window_index, candidate.device)] = (
            best,
            candidate.similarities[best],
        )
    return out


class TestBatchPipelineEquivalence:
    def test_matches_equal_extract_window_candidates(self, reference_setup):
        builder, database, split = reference_setup
        config = DetectionConfig(window_s=WINDOW_S, min_observations=MIN_OBS)
        expected = batch_best(
            extract_window_candidates(split.validation, builder, database, config)
        )
        sink = CollectingSink()
        engine = make_engine(database, sinks=[sink])
        stats = engine.run(replay_source(split.validation.frames))
        matches = {
            (m.window_index, m.device): (m.best_device, m.similarity)
            for m in sink.of_type(DeviceMatched)
        }
        assert set(matches) == set(expected)
        for key, (device, similarity) in expected.items():
            assert matches[key][0] == device
            assert matches[key][1] == pytest.approx(similarity, abs=1e-9)
        assert stats.frames == len(split.validation.frames)
        assert stats.candidates == len(expected)

    def test_pcap_source_equals_loaded_trace(self, reference_setup, tmp_path):
        """Chunked pcap iteration == materialising the same pcap.

        (The pcap container itself quantises timestamps to whole µs,
        so the reference is the *loaded* trace, not the pre-write one.)
        """
        from repro.traces.trace import Trace

        _, database, split = reference_setup
        path = tmp_path / "validation.pcap"
        split.validation.to_pcap(path)

        def run(source):
            sink = CollectingSink()
            make_engine(database, sinks=[sink]).run(source)
            return [
                (m.window_index, m.device, m.best_device, round(m.similarity, 9))
                for m in sink.of_type(DeviceMatched)
            ]

        loaded = Trace.from_pcap(path)
        assert run(pcap_source(path)) == run(replay_source(loaded.frames))

    def test_live_simulator_source(self, reference_setup):
        """The engine consumes the simulator's incremental feed."""
        from repro.simulator import CbrTraffic, Scenario, StationSpec

        _, database, _ = reference_setup
        scenario = Scenario(duration_s=40.0, seed=5, encrypted=True)
        scenario.add_station(
            StationSpec(
                name="alice",
                profile="intel-2200bg-linux",
                sources=[CbrTraffic(interval_ms=30)],
            )
        )
        sink = CollectingSink()
        stats = make_engine(database, sinks=[sink]).run(scenario.stream(chunk_s=2.0))
        assert stats.frames > 0
        assert stats.windows_closed >= 2
        assert sink.of_type(WindowClosed)


class TestEngineBehaviour:
    def test_window_closed_events_carry_bookkeeping(self, reference_setup):
        _, database, split = reference_setup
        sink = CollectingSink()
        stats = make_engine(database, sinks=[sink]).run(
            replay_source(split.validation.frames)
        )
        closed = sink.of_type(WindowClosed)
        assert len(closed) == stats.windows_closed
        assert [event.window_index for event in closed] == sorted(
            event.window_index for event in closed
        )
        assert sum(event.frame_count for event in closed) >= len(
            split.validation.frames
        )
        assert stats.peak_resident_devices >= max(
            event.candidate_count for event in closed
        )
        assert stats.duration_s > 0

    def test_engine_without_database_still_windows(self, reference_setup):
        _, _, split = reference_setup
        sink = CollectingSink()
        engine = StreamEngine(
            lambda: StreamingSignatureBuilder(PARAMETER, min_observations=MIN_OBS),
            sinks=[sink],
        )
        engine.run(replay_source(split.validation.frames[:2000]))
        assert engine.matcher is None
        assert sink.of_type(WindowClosed)
        assert not sink.of_type(DeviceMatched)

    def test_live_reference_updates_between_windows(self, reference_setup):
        """learn/forget mid-stream rides the incremental pack."""
        _, database, split = reference_setup
        frames = split.validation.frames
        sink = CollectingSink()
        engine = make_engine(database, sinks=[sink])
        midpoint = len(frames) // 2
        for frame in frames[:midpoint]:
            engine.process_frame(frame)
        retired = engine.matcher.database.devices[0]
        assert engine.matcher.forget(retired) is True
        assert engine.matcher.forget(retired) is False  # no-op on miss
        seen_before_forget = len(sink.of_type(DeviceMatched))
        for frame in frames[midpoint:]:
            engine.process_frame(frame)
        engine.flush()
        late = sink.of_type(DeviceMatched)[seen_before_forget:]
        assert late  # the stream kept matching after the removal
        assert all(m.best_device != retired for m in late)
        # Re-learning the device is a single O(bins) row append.
        signature = database.get(database.devices[0])
        engine.matcher.learn(retired, signature)
        assert retired in engine.matcher.database

    def test_jsonl_sink_round_trips(self, reference_setup):
        _, database, split = reference_setup
        buffer = io.StringIO()
        make_engine(database, sinks=[JsonLinesSink(buffer)]).run(
            replay_source(split.validation.frames[:3000])
        )
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines
        assert all("event" in payload for payload in lines)
        closed = [p for p in lines if p["event"] == "WindowClosed"]
        assert closed and all("candidate_count" in p for p in closed)

    def test_jsonl_sink_flushes_every_event_by_default(self):
        flushes = []

        class SpyStream(io.StringIO):
            def flush(self) -> None:
                flushes.append(self.getvalue().count("\n"))
                super().flush()

        sink = JsonLinesSink(SpyStream())
        for i in range(3):
            sink(WindowClosed(float(i), i, 0.0, 1.0, 0, 0, 0))
        # Default flush_every=1: every written line reaches the stream
        # immediately (a tailing process or crash sees all of them).
        assert flushes == [1, 2, 3]

    def test_jsonl_sink_flush_every_batches(self):
        flushes = []

        class SpyStream(io.StringIO):
            def flush(self) -> None:
                flushes.append(self.getvalue().count("\n"))
                super().flush()

        with JsonLinesSink(SpyStream(), flush_every=3) as sink:
            for i in range(7):
                sink(WindowClosed(float(i), i, 0.0, 1.0, 0, 0, 0))
        # Two batched flushes, then the context exit drains the tail.
        assert flushes == [3, 6, 7]

    def test_jsonl_sink_open_owns_and_closes_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesSink.open(path, flush_every=100) as sink:
            sink(WindowClosed(0.0, 0, 0.0, 1.0, 5, 2, 3))
            stream = sink._stream
        assert stream.closed
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["event"] == "WindowClosed"

    def test_jsonl_sink_rejects_negative_flush_every(self):
        with pytest.raises(ValueError):
            JsonLinesSink(io.StringIO(), flush_every=-1)


class TestApplicationAdapters:
    def test_spoof_guard_matches_batch_detector(self, reference_setup):
        """Per-window streaming verdicts == batch check_window verdicts."""
        from repro.applications.spoof_detector import SpoofDetector

        _, _, split = reference_setup
        detector = SpoofDetector(min_observations=MIN_OBS)
        detector.learn(split.training.frames, set(split.training.senders()))
        sink = CollectingSink()
        engine = StreamEngine(
            lambda: StreamingSignatureBuilder(PARAMETER, min_observations=MIN_OBS),
            window=WindowConfig(window_s=WINDOW_S),
            analyzers=[OnlineSpoofGuard(detector)],
            sinks=[sink],
        )
        engine.run(replay_source(split.validation.frames))
        streamed = {
            (alert.window_index, alert.device): alert.verdict
            for alert in sink.of_type(SpoofAlert)
        }
        expected = {}
        for index, window in enumerate(split.validation.windows(WINDOW_S)):
            for check in detector.check_window(window.frames):
                if check.verdict.value in ("spoofed", "unknown"):
                    expected[(index, check.device)] = check.verdict.value
        assert streamed == expected

    def test_live_tracker_matches_batch_tracker(self, reference_setup):
        import random

        from repro.applications.attacks import spoof_mac
        from repro.applications.tracker import DeviceTracker

        _, _, split = reference_setup
        tracker = DeviceTracker(min_observations=MIN_OBS, link_threshold=0.3)
        assert tracker.learn(split.training.frames) >= 2
        device = tracker.database.devices[0]
        pseudonym = device.randomized(random.Random(3))
        observed = spoof_mac(split.validation.frames, device, pseudonym)

        sink = CollectingSink()
        engine = StreamEngine(
            lambda: StreamingSignatureBuilder(PARAMETER, min_observations=MIN_OBS),
            window=WindowConfig(window_s=WINDOW_S),
            analyzers=[LiveTracker(tracker)],
            sinks=[sink],
        )
        engine.run(replay_source(observed))
        events = sink.of_type(PseudonymLinked)
        assert events
        batch_windows = [
            window.frames for window in _windows_of(observed, WINDOW_S)
        ]
        report = tracker.track(batch_windows)
        expected = {
            (link.window_index, link.pseudonym): (link.linked_device, link.similarity)
            for link in report.links
        }
        streamed = {
            (event.window_index, event.pseudonym): (
                event.linked_device,
                event.similarity,
            )
            for event in events
        }
        assert set(streamed) == set(expected)
        for key, (linked, similarity) in expected.items():
            assert streamed[key][0] == linked
            assert streamed[key][1] == pytest.approx(similarity, abs=1e-9)

    def test_rogue_ap_guard_alerts_on_impostor(self, reference_setup):
        from repro.applications.attacks import spoof_mac
        from repro.applications.rogue_ap import RogueApDetector
        from repro.core.parameters import FrameSize
        from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic

        def run_ap(profile: str, seed: int, beacon_size: int):
            scenario = Scenario(
                duration_s=90.0, seed=seed, ap_profile=profile, ap_beacon_size=beacon_size
            )
            scenario.add_station(
                StationSpec(
                    name="client",
                    profile="intel-2200bg-linux",
                    sources=[CbrTraffic(interval_ms=4), WebTraffic(mean_think_s=1.5)],
                )
            )
            return scenario.run()

        genuine = run_ap("atheros-ar9285-ath9k", seed=31, beacon_size=180)
        rogue = run_ap("broadcom-4318-win", seed=32, beacon_size=212)
        ap = next(m for m, n in genuine.station_names.items() if n == "ap-0")
        rogue_ap = next(m for m, n in rogue.station_names.items() if n == "ap-0")

        detector = RogueApDetector(parameter=FrameSize(), min_observations=MIN_OBS)
        assert detector.learn(genuine.captures, ap)

        def alerts_for(frames):
            sink = CollectingSink()
            engine = StreamEngine(
                lambda: StreamingSignatureBuilder(FrameSize(), min_observations=MIN_OBS),
                window=WindowConfig(window_s=30.0),
                analyzers=[OnlineRogueApGuard(detector, ap)],
                sinks=[sink],
            )
            engine.run(replay_source(frames))
            return sink.of_type(RogueApAlert)

        assert alerts_for(genuine.captures) == []
        impersonated = spoof_mac(rogue.captures, rogue_ap, ap)
        rogue_alerts = alerts_for(impersonated)
        assert rogue_alerts
        assert all(alert.ap == ap for alert in rogue_alerts)

    def test_rogue_guard_window_boundaries_match_batch(self):
        """A frame at a window's end belongs to the *next* guard span.

        Regression test: the engine must close windows (resetting the
        guard's accumulator) before the guard sees the boundary frame,
        or per-window observation counts drift from the batch truth.
        """
        from repro.applications.rogue_ap import RogueApDetector, ap_own_frames
        from repro.core.parameters import FrameSize
        from repro.dot11.frames import Dot11Frame, FrameSubtype
        from repro.dot11.mac import MacAddress

        ap = MacAddress.parse("00:0f:b5:00:00:01")

        def beacon(t_s: float):
            from repro.dot11.capture import CapturedFrame

            return CapturedFrame(
                timestamp_us=t_s * 1e6,
                frame=Dot11Frame(subtype=FrameSubtype.BEACON, size=180, addr2=ap, addr3=ap),
                rate_mbps=1.0,
            )

        frames = [beacon(t) for t in (0.0, 0.2, 0.4, 0.6, 1.0, 1.2)]
        detector = RogueApDetector(parameter=FrameSize(), min_observations=1)
        detector.learn(frames, ap)
        detector.accept_threshold = 1.01  # force an alert per window

        sink = CollectingSink()
        engine = StreamEngine(
            lambda: StreamingSignatureBuilder(FrameSize(), min_observations=1),
            window=WindowConfig(window_s=1.0),
            analyzers=[OnlineRogueApGuard(detector, ap)],
            sinks=[sink],
        )
        engine.run(replay_source(frames))
        streamed = [a.observations for a in sink.of_type(RogueApAlert)]
        expected = [
            len(ap_own_frames(window.frames, ap))
            for window in _windows_of(frames, 1.0)
        ]
        assert streamed == expected == [4, 2]


def _windows_of(frames, window_s):
    from repro.traces.trace import Trace

    return Trace(frames=list(frames), name="w").windows(window_s)
