"""Unit tests for the device profile library and backoff quirks."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.simulator.profiles import (
    BackoffStyle,
    PROFILE_LIBRARY,
    draw_backoff,
    profile_by_name,
)


class TestLibrary:
    def test_names_unique(self):
        names = [p.name for p in PROFILE_LIBRARY]
        assert len(names) == len(set(names))

    def test_lookup(self):
        profile = profile_by_name("intel-2200bg-linux")
        assert profile.oui == "00:13:e8"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            profile_by_name("nonexistent-card")

    def test_profiles_are_behaviourally_diverse(self):
        styles = {p.backoff_style for p in PROFILE_LIBRARY}
        assert len(styles) >= 4
        rts = {p.rts_threshold for p in PROFILE_LIBRARY}
        assert None in rts and any(t is not None for t in rts)
        assert any(p.power_save.enabled for p in PROFILE_LIBRARY)
        assert any(not p.power_save.enabled for p in PROFILE_LIBRARY)

    def test_phy_construction(self):
        for profile in PROFILE_LIBRARY:
            phy = profile.phy()
            if profile.b_only:
                assert max(phy.supported_rates) == 11.0
            else:
                assert max(phy.supported_rates) == 54.0


class TestBackoffDraws:
    def _draws(self, style: BackoffStyle, cw: int = 15, n: int = 4000) -> Counter:
        rng = random.Random(9)
        return Counter(draw_backoff(style, cw, rng) for _ in range(n))

    def test_uniform_range(self):
        draws = self._draws(BackoffStyle.UNIFORM)
        assert min(draws) == 0
        assert max(draws) == 15
        # Roughly uniform: every slot hit a plausible number of times.
        for count in draws.values():
            assert count > 100

    def test_extra_early_slot(self):
        draws = self._draws(BackoffStyle.EXTRA_EARLY_SLOT)
        assert min(draws) == -1
        assert max(draws) == 15

    def test_first_slot_bias(self):
        draws = self._draws(BackoffStyle.FIRST_SLOT_BIAS)
        # Slot 0 receives the 30% bias plus its uniform share.
        assert draws[0] > 2.5 * draws[8]
        assert min(draws) == 0

    def test_truncated(self):
        draws = self._draws(BackoffStyle.TRUNCATED)
        assert max(draws) <= 7

    def test_low_biased(self):
        draws = self._draws(BackoffStyle.LOW_BIASED)
        assert draws[0] + draws[1] > draws[14] + draws[15]
        assert 0 <= min(draws) and max(draws) <= 15

    def test_invalid_cw(self):
        with pytest.raises(ValueError):
            draw_backoff(BackoffStyle.UNIFORM, 0, random.Random(1))

    @pytest.mark.parametrize("style", list(BackoffStyle))
    def test_all_styles_within_window(self, style):
        rng = random.Random(11)
        for _ in range(500):
            value = draw_backoff(style, 31, rng)
            assert -1 <= value <= 31
