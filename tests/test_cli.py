"""Tests for the command-line tool."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, load_database, main, save_database
from repro.core.database import ReferenceDatabase
from repro.core.parameters import InterArrivalTime
from repro.core.signature import SignatureBuilder


@pytest.fixture(scope="module")
def office_pcap(tmp_path_factory, small_office_trace):
    path = tmp_path_factory.mktemp("cli") / "office.pcap"
    small_office_trace.to_pcap(path)
    return path


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("learn", "match", "evaluate", "simulate", "histogram"):
            args = None
            try:
                if command == "learn":
                    args = parser.parse_args(["learn", "x.pcap", "--db", "d.json"])
                elif command == "match":
                    args = parser.parse_args(["match", "x.pcap", "--db", "d.json"])
                elif command == "evaluate":
                    args = parser.parse_args(["evaluate", "x.pcap", "--training-s", "60"])
                elif command == "simulate":
                    args = parser.parse_args(["simulate", "office2", "--out", "o.pcap"])
                else:
                    args = parser.parse_args(
                        ["histogram", "x.pcap", "--device", "00:11:22:33:44:55"]
                    )
            except SystemExit:  # pragma: no cover
                pytest.fail(f"subcommand {command} failed to parse")
            assert args.command == command

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDatabasePersistence:
    def test_round_trip(self, tmp_path, small_office_trace):
        builder = SignatureBuilder(InterArrivalTime(), min_observations=50)
        database = ReferenceDatabase.from_training(
            builder, small_office_trace.frames
        )
        path = tmp_path / "db.json"
        save_database(database, "interarrival", path)
        loaded, parameter_name = load_database(path)
        assert parameter_name == "interarrival"
        assert set(loaded.devices) == set(database.devices)
        device = database.devices[0]
        original = database.get(device)
        restored = loaded.get(device)
        assert original.frame_types == restored.frame_types
        for ftype in original.frame_types:
            assert original.weight(ftype) == pytest.approx(restored.weight(ftype))

    def test_json_is_valid(self, tmp_path, small_office_trace):
        builder = SignatureBuilder(InterArrivalTime(), min_observations=50)
        database = ReferenceDatabase.from_training(
            builder, small_office_trace.frames
        )
        path = tmp_path / "db.json"
        save_database(database, "interarrival", path)
        payload = json.loads(path.read_text())
        assert "devices" in payload and payload["parameter"] == "interarrival"


class TestCommands:
    def test_learn_then_match(self, tmp_path, office_pcap, capsys):
        db_path = tmp_path / "refs.json"
        assert main(["learn", str(office_pcap), "--db", str(db_path)]) == 0
        out = capsys.readouterr().out
        assert "learnt" in out
        assert main(
            ["match", str(office_pcap), "--db", str(db_path), "--window-s", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "MATCH" in out

    def test_evaluate(self, office_pcap, capsys):
        code = main(
            [
                "evaluate",
                str(office_pcap),
                "--training-s",
                "30",
                "--window-s",
                "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Inter-arrival time" in out
        assert "AUC" in out

    def test_histogram(self, office_pcap, small_office_trace, capsys):
        device = sorted(small_office_trace.senders(), key=lambda m: m.value)[0]
        code = main(
            [
                "histogram",
                str(office_pcap),
                "--device",
                str(device),
                "--min-observations",
                "30",
            ]
        )
        assert code == 0
        assert "weight" in capsys.readouterr().out

    def test_histogram_unknown_device(self, office_pcap, capsys):
        code = main(
            ["histogram", str(office_pcap), "--device", "00:00:00:00:00:99"]
        )
        assert code == 1

    def test_simulate(self, tmp_path, capsys):
        out_path = tmp_path / "sim.pcap"
        code = main(
            ["simulate", "office2", "--out", str(out_path), "--scale", "0.05"]
        )
        assert code == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_stream(self, tmp_path, office_pcap, capsys):
        db_path = tmp_path / "refs.json"
        assert main(["learn", str(office_pcap), "--db", str(db_path)]) == 0
        capsys.readouterr()
        events_path = tmp_path / "events.jsonl"
        code = main(
            [
                "stream",
                str(office_pcap),
                "--db",
                str(db_path),
                "--window-s",
                "30",
                "--spoof-guard",
                "--track",
                "--events",
                str(events_path),
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streamed" in out and "windows" in out
        assert "events:" in out
        import json

        lines = [json.loads(line) for line in events_path.read_text().splitlines()]
        assert any(payload["event"] == "WindowClosed" for payload in lines)
        assert any(payload["event"] == "DeviceMatched" for payload in lines)

    def test_stream_parser_defaults(self):
        args = build_parser().parse_args(["stream", "x.pcap", "--db", "d.json"])
        assert args.command == "stream"
        assert args.window_s == 300.0 and args.slide_s is None
        assert not args.spoof_guard and not args.track
        assert args.checkpoint is None and args.resume is None


class TestDbCommands:
    @pytest.fixture()
    def store(self, tmp_path, office_pcap, capsys):
        path = tmp_path / "store"
        assert main(
            ["db", "save", str(office_pcap), str(path), "--min-observations", "30"]
        ) == 0
        capsys.readouterr()
        return path

    def test_db_save_creates_versioned_store(self, store, capsys):
        assert (store / "meta.json").is_file()
        assert (store / "matrices.npz").is_file()
        assert (store / "devices.jsonl").is_file()

    def test_db_info(self, store, capsys):
        assert main(["db", "info", str(store)]) == 0
        out = capsys.readouterr().out
        assert "repro-refdb v1" in out
        assert "parameter: interarrival" in out

    def test_db_load_lists_devices_and_exports_json(self, store, tmp_path, capsys):
        legacy = tmp_path / "legacy.json"
        assert main(["db", "load", str(store), "--json", str(legacy)]) == 0
        out = capsys.readouterr().out
        assert "devices" in out and "observations" in out
        payload = json.loads(legacy.read_text())
        assert payload["parameter"] == "interarrival" and payload["devices"]

    def test_db_merge_reports_conflicts(self, store, tmp_path, capsys):
        merged = tmp_path / "merged"
        assert main(
            ["db", "merge", str(store), str(store), "--out", str(merged)]
        ) == 0
        out = capsys.readouterr().out
        assert "replaced" in out and "merged" in out
        assert main(["db", "info", str(merged)]) == 0

    def test_match_accepts_store_directory(self, store, office_pcap, capsys):
        assert main(
            ["match", str(office_pcap), "--db", str(store), "--window-s", "30"]
        ) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_stream_accepts_store_directory(self, store, office_pcap, capsys):
        assert main(
            [
                "stream",
                str(office_pcap),
                "--db",
                str(store),
                "--window-s",
                "30",
                "--min-observations",
                "30",
            ]
        ) == 0
        assert "streamed" in capsys.readouterr().out


class TestStreamCheckpointCli:
    def test_checkpoint_then_resume(self, tmp_path, office_pcap, capsys):
        store = tmp_path / "store"
        assert main(
            ["db", "save", str(office_pcap), str(store), "--min-observations", "30"]
        ) == 0
        checkpoint = tmp_path / "ck.json"
        assert main(
            [
                "stream",
                str(office_pcap),
                "--db",
                str(store),
                "--window-s",
                "30",
                "--min-observations",
                "30",
                "--checkpoint",
                str(checkpoint),
                "--checkpoint-every-s",
                "20",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpoint ->" in out
        assert checkpoint.is_file()
        assert main(
            [
                "stream",
                str(office_pcap),
                "--db",
                str(store),
                "--window-s",
                "30",
                "--min-observations",
                "30",
                "--resume",
                str(checkpoint),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out

    def test_resume_on_same_capture_skips_processed_frames(
        self, tmp_path, office_pcap, small_office_trace, capsys
    ):
        """Crash recovery: resuming against the original pcap must not
        re-feed the already-processed prefix into the restored windows."""
        store = tmp_path / "store"
        assert main(
            ["db", "save", str(office_pcap), str(store), "--min-observations", "30"]
        ) == 0
        checkpoint = tmp_path / "ck.json"
        args = [
            "stream",
            str(office_pcap),
            "--db",
            str(store),
            "--window-s",
            "30",
            "--min-observations",
            "30",
        ]
        assert main(args + ["--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(args + ["--resume", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        total = len(small_office_trace.frames)
        # The whole capture was already consumed before the snapshot,
        # so the resumed run skips it all: the frame count must stay at
        # the original total instead of doubling.
        assert f"streamed {total} frames" in out


class TestScenarioCommands:
    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "office-baseline" in out
        assert "iot-swarm" in out
        assert "traffic" in out

    def test_evaluate_matrix_writes_bench_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_experiments.json"
        code = main(
            [
                "evaluate",
                "--scenario",
                "office-baseline",
                "--parameter",
                "rate",
                "--measure",
                "cosine",
                "--out",
                str(out_path),
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "evaluation matrix" in out
        assert "office-baseline" in out
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "experiments"
        assert payload["cell_count"] == 1
        cell = payload["cells"][0]
        assert cell["scenario"] == "office-baseline"
        assert cell["parameter"] == "rate"
        assert cell["measure"] == "cosine"
        assert 0.0 <= cell["auc"] <= 1.0

    def test_evaluate_matrix_resume(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_experiments.json"
        base = [
            "evaluate",
            "--scenario",
            "office-baseline",
            "--measure",
            "cosine",
            "--out",
            str(out_path),
        ]
        assert main(base + ["--parameter", "rate"]) == 0
        capsys.readouterr()
        code = main(
            base + ["--parameter", "rate", "--parameter", "size", "--resume"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resuming: 1 cells" in out
        payload = json.loads(out_path.read_text())
        assert payload["cell_count"] == 2

    def test_evaluate_rejects_pcap_plus_scenario(self, office_pcap, capsys):
        code = main(
            [
                "evaluate",
                str(office_pcap),
                "--scenario",
                "office-baseline",
                "--training-s",
                "30",
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_evaluate_pcap_requires_training_s(self, office_pcap, capsys):
        assert main(["evaluate", str(office_pcap)]) == 2
        assert "--training-s" in capsys.readouterr().err

    def test_evaluate_rejects_unknown_scenario(self, capsys):
        code = main(["evaluate", "--scenario", "no-such-place"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err
