"""Golden-file regression for the end-to-end evaluation numbers.

``evaluate_trace`` is the measurement the whole reproduction hangs off
(Tables II/III); engine refactors — vectorisation, sharding,
persistence — must not drift its outputs.  This test pins AUC and
identification ratios for all five parameters on the fixed-seed
90-second office scenario against ``tests/golden/evaluate_small_office.json``.

The numbers are pure float64 pipeline outputs on a deterministic
simulation, so they are compared near-exactly (atol 1e-9 absorbs at
most summation-order noise from a legitimate refactor of the score
accumulation).  If a *deliberate* semantic change moves them, regenerate
the golden file:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_regression.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.detection import DetectionConfig
from repro.core.parameters import ALL_PARAMETERS
from repro.core.pipeline import evaluate_trace

GOLDEN_PATH = Path(__file__).parent / "golden" / "evaluate_small_office.json"


def compute_results(trace) -> dict:
    config = DetectionConfig(window_s=15.0, min_observations=30)
    results = {}
    for parameter in ALL_PARAMETERS:
        outcome = evaluate_trace(trace, parameter, 45.0, config)
        results[parameter.name] = {
            "reference_devices": outcome.reference_devices,
            "known_candidates": outcome.identification.known_candidates,
            "total_candidates": outcome.identification.total_candidates,
            "auc": outcome.auc,
            "identification_at_0.01": outcome.identification_at(0.01),
            "identification_at_0.1": outcome.identification_at(0.1),
        }
    return results


def test_evaluation_matches_golden_file(small_office_trace):
    results = compute_results(small_office_trace)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        payload = {
            "trace": "small-office",
            "training_s": 45.0,
            "window_s": 15.0,
            "min_observations": 30,
            "parameters": results,
        }
        GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden file regenerated at {GOLDEN_PATH}")
    golden = json.loads(GOLDEN_PATH.read_text())["parameters"]
    assert set(results) == set(golden), "parameter set drifted"
    for name, expected in golden.items():
        got = results[name]
        for key in ("reference_devices", "known_candidates", "total_candidates"):
            assert got[key] == expected[key], (
                f"{name}.{key}: {got[key]} != golden {expected[key]}"
            )
        for key in ("auc", "identification_at_0.01", "identification_at_0.1"):
            assert got[key] == pytest.approx(expected[key], abs=1e-9), (
                f"{name}.{key}: {got[key]!r} drifted from golden {expected[key]!r}"
            )


def test_golden_file_is_discriminative():
    """Guard against a regenerated-but-degenerate golden file: the
    pinned scenario must actually separate devices (AUC well above
    chance for every parameter)."""
    golden = json.loads(GOLDEN_PATH.read_text())["parameters"]
    assert len(golden) == 5
    for name, expected in golden.items():
        assert expected["auc"] > 0.85, f"{name} golden AUC suspiciously low"
        assert expected["reference_devices"] >= 3
