"""Tests for the Prism monitoring-header codec."""

from __future__ import annotations

import io

import pytest

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress
from repro.radiotap.pcap import PcapError, write_trace_pcap
from repro.radiotap.prism import (
    PRISM_HEADER_LEN,
    PrismError,
    build_prism,
    parse_prism,
    read_trace_pcap_prism,
    write_trace_pcap_prism,
)

A = MacAddress.parse("00:13:e8:00:00:01")
B = MacAddress.parse("00:18:f8:00:00:02")


class TestHeaderCodec:
    def test_round_trip(self):
        raw = build_prism(
            mactime_us=123456,
            channel=11,
            rate_mbps=5.5,
            frame_length=1500,
            signal_dbm=-63,
            noise_dbm=-91,
            device_name="wlan1",
        )
        assert len(raw) == PRISM_HEADER_LEN
        header = parse_prism(raw)
        assert header.mactime_us == 123456
        assert header.channel == 11
        assert header.rate_mbps == 5.5
        assert header.frame_length == 1500
        assert header.signal_dbm == -63
        assert header.noise_dbm == -91
        assert header.device_name == "wlan1"

    def test_bad_msgcode(self):
        raw = bytearray(build_prism(1, 6, 54.0, 100))
        raw[0] = 0xFF
        with pytest.raises(PrismError):
            parse_prism(bytes(raw))

    def test_too_short(self):
        with pytest.raises(PrismError):
            parse_prism(b"\x00" * 50)

    def test_unencodable_rate(self):
        with pytest.raises(PrismError):
            build_prism(1, 6, 500.0, 100)

    def test_absent_items_are_none(self):
        header = parse_prism(build_prism(1, 6, 54.0, 100))
        # RSSI and SQ are marked absent by the builder.
        assert header.signal_dbm is not None
        assert header.rate_mbps == 54.0


class TestPrismPcap:
    def _frames(self, count: int = 5) -> list[CapturedFrame]:
        return [
            CapturedFrame(
                timestamp_us=10_000.0 * (i + 1),
                frame=Dot11Frame(
                    subtype=FrameSubtype.QOS_DATA,
                    size=400 + i,
                    addr1=B,
                    addr2=A,
                    addr3=B,
                ),
                rate_mbps=24.0,
                signal_dbm=-58.0,
                channel=6,
            )
            for i in range(count)
        ]

    def test_round_trip(self):
        frames = self._frames()
        buffer = io.BytesIO()
        count = write_trace_pcap_prism(buffer, frames)
        assert count == 5
        restored = read_trace_pcap_prism(buffer.getvalue())
        assert len(restored) == 5
        for original, loaded in zip(frames, restored):
            assert loaded.sender == A
            assert loaded.size == original.size
            assert loaded.rate_mbps == original.rate_mbps
            assert loaded.channel == original.channel
            assert loaded.timestamp_us == pytest.approx(
                original.timestamp_us, abs=1.0
            )

    def test_rejects_radiotap_pcap(self):
        buffer = io.BytesIO()
        write_trace_pcap(buffer, self._frames(2))
        with pytest.raises(PcapError):
            read_trace_pcap_prism(buffer.getvalue())

    def test_fingerprinting_from_prism_capture(self, small_office_trace):
        """The full pipeline works identically off Prism captures."""
        from repro.core import InterArrivalTime, SignatureBuilder

        buffer = io.BytesIO()
        write_trace_pcap_prism(buffer, small_office_trace.frames[:5000])
        restored = read_trace_pcap_prism(buffer.getvalue())
        builder = SignatureBuilder(InterArrivalTime(), min_observations=50)
        signatures = builder.build(restored)
        assert len(signatures) >= 2
