"""Unit tests for MAC timing constants."""

from __future__ import annotations

import pytest

from repro.dot11.phy import PhyKind
from repro.dot11.timing import (
    TIMING_B,
    TIMING_BG_MIXED,
    TIMING_G,
    MacTiming,
    timing_for,
)


class TestDerivedIntervals:
    def test_difs_formula(self):
        assert TIMING_G.difs_us == pytest.approx(10 + 2 * 9)
        assert TIMING_B.difs_us == pytest.approx(10 + 2 * 20)

    def test_eifs_exceeds_difs(self):
        for timing in (TIMING_B, TIMING_G, TIMING_BG_MIXED):
            assert timing.eifs_us > timing.difs_us


class TestBackoffWindow:
    def test_initial_window(self):
        assert TIMING_G.backoff_window(0) == 15

    def test_doubles_per_retry(self):
        assert TIMING_G.backoff_window(1) == 31
        assert TIMING_G.backoff_window(2) == 63

    def test_clamps_at_cw_max(self):
        assert TIMING_G.backoff_window(10) == 1023
        assert TIMING_G.backoff_window(20) == 1023

    def test_negative_retry_rejected(self):
        with pytest.raises(ValueError):
            TIMING_G.backoff_window(-1)


class TestValidation:
    def test_positive_durations(self):
        with pytest.raises(ValueError):
            MacTiming(slot_us=0, sifs_us=10, cw_min=15, cw_max=1023)
        with pytest.raises(ValueError):
            MacTiming(slot_us=9, sifs_us=-1, cw_min=15, cw_max=1023)

    def test_cw_ordering(self):
        with pytest.raises(ValueError):
            MacTiming(slot_us=9, sifs_us=10, cw_min=100, cw_max=50)
        with pytest.raises(ValueError):
            MacTiming(slot_us=9, sifs_us=10, cw_min=0, cw_max=50)


class TestSelection:
    def test_dsss_gets_long_slots(self):
        assert timing_for(PhyKind.DSSS) is TIMING_B

    def test_ofdm_pure_vs_mixed(self):
        assert timing_for(PhyKind.OFDM) is TIMING_G
        assert timing_for(PhyKind.OFDM, mixed_mode=True) is TIMING_BG_MIXED
