"""Unit tests for the five network-parameter extractors.

The Figure 1 example from the paper is encoded as a test: frames
DATA(A), ACK, DATA(A→ null sender), ... with ACK/CTS values dropped but
still advancing the channel clock.
"""

from __future__ import annotations

import pytest

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import FrameSubtype, ack_frame, cts_frame, rts_frame
from repro.dot11.mac import MacAddress
from repro.core.parameters import (
    ALL_PARAMETERS,
    FrameSize,
    InterArrivalTime,
    MediumAccessTime,
    TransmissionRate,
    TransmissionTime,
    parameter_by_name,
)
from tests.conftest import make_data_capture

A = MacAddress.parse("00:13:e8:00:00:0a")
B = MacAddress.parse("00:18:f8:00:00:0b")
C = MacAddress.parse("00:14:a4:00:00:0c")
AP = MacAddress.parse("00:0f:b5:00:00:01")


def figure1_frames() -> list[CapturedFrame]:
    """The paper's Figure 1 sequence: DATA, ACK, DATA, ACK, RTS, CTS."""
    return [
        make_data_capture(1000.0, A, AP, size=540, rate=54.0),
        CapturedFrame(timestamp_us=1100.0, frame=ack_frame(A), rate_mbps=24.0),
        make_data_capture(1400.0, A, AP, size=540, rate=54.0),
        CapturedFrame(timestamp_us=1500.0, frame=ack_frame(A), rate_mbps=24.0),
        CapturedFrame(
            timestamp_us=1800.0, frame=rts_frame(C, AP, 500), rate_mbps=24.0
        ),
        CapturedFrame(timestamp_us=1900.0, frame=cts_frame(C), rate_mbps=24.0),
    ]


class TestSenderAttribution:
    def test_anonymous_frames_yield_nothing(self):
        observations = list(TransmissionRate().observations(figure1_frames()))
        senders = {o.sender for o in observations}
        assert senders == {A, C}

    def test_observation_count(self):
        # 6 frames, 3 anonymous (2 ACK + 1 CTS) -> 3 attributed.
        observations = list(FrameSize().observations(figure1_frames()))
        assert len(observations) == 3

    def test_ftype_keys(self):
        observations = list(TransmissionRate().observations(figure1_frames()))
        keys = {o.ftype_key for o in observations}
        assert keys == {"QoS Data", "RTS"}


class TestInterArrival:
    def test_figure1_intervals(self):
        observations = list(InterArrivalTime().observations(figure1_frames()))
        by_sender = {}
        for o in observations:
            by_sender.setdefault(o.sender, []).append(o.value)
        # i_2 = t_2 - t_1 (previous frame was the ACK at 1100).
        assert by_sender[A] == [pytest.approx(300.0)]
        # i_4 = t_4 - t_3 for station C's RTS.
        assert by_sender[C] == [pytest.approx(300.0)]

    def test_first_frame_yields_nothing(self):
        frames = [make_data_capture(1000.0, A, AP)]
        assert list(InterArrivalTime().observations(frames)) == []

    def test_anonymous_frames_advance_clock(self):
        frames = figure1_frames()
        observations = list(InterArrivalTime().observations(frames))
        # The DATA at 1400 measures against the ACK at 1100, not the
        # DATA at 1000.
        values = [o.value for o in observations if o.sender == A]
        assert 300.0 in [pytest.approx(v) for v in values] or values == [
            pytest.approx(300.0)
        ]


class TestTransmissionTime:
    def test_value(self):
        frames = [make_data_capture(1000.0, A, AP, size=1500, rate=54.0)]
        observations = list(TransmissionTime().observations(frames))
        assert observations[0].value == pytest.approx(1500 * 8 / 54.0)

    def test_rate_dependence(self):
        fast = make_data_capture(1000.0, A, AP, size=1500, rate=54.0)
        slow = make_data_capture(2000.0, A, AP, size=1500, rate=11.0)
        values = [o.value for o in TransmissionTime().observations([fast, slow])]
        assert values[1] > values[0]


class TestMediumAccessTime:
    def test_idle_gap(self):
        # Frame ends at 1400, took tt=80 µs, previous ended at 1100:
        # the sender waited (1400-80) - 1100 = 220 µs.
        frames = [
            make_data_capture(1100.0, B, AP, size=540, rate=54.0),
            make_data_capture(1400.0, A, AP, size=540, rate=54.0),
        ]
        observations = list(MediumAccessTime().observations(frames))
        tt = 540 * 8 / 54.0
        assert observations[-1].value == pytest.approx(300.0 - tt)

    def test_requires_previous_frame(self):
        frames = [make_data_capture(1000.0, A, AP)]
        assert list(MediumAccessTime().observations(frames)) == []


class TestRegistry:
    def test_all_parameters_present(self):
        names = [p.name for p in ALL_PARAMETERS]
        assert names == ["rate", "size", "access", "txtime", "interarrival"]

    def test_lookup(self):
        assert parameter_by_name("rate").label == "Transmission rate"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            parameter_by_name("entropy")

    def test_default_bins_constructible(self):
        for parameter in ALL_PARAMETERS:
            bins = parameter.default_bins()
            assert bins.bin_count > 0


class TestRateExtraction:
    def test_values_match_capture(self):
        frames = [
            make_data_capture(1000.0, A, AP, rate=54.0),
            make_data_capture(2000.0, A, AP, rate=5.5),
        ]
        values = [o.value for o in TransmissionRate().observations(frames)]
        assert values == [54.0, 5.5]

    def test_rate_bins_cover_paper_axis(self):
        bins = TransmissionRate().default_bins()
        for rate in (1, 2, 5.5, 11, 12, 18, 24, 36, 48, 54):
            assert bins.index(float(rate)) is not None


class TestOnlineStreams:
    """The online extractors must match the batch extractors frame-for-frame."""

    def test_builtin_streams_match_batch_on_figure1(self):
        frames = figure1_frames()
        for parameter in ALL_PARAMETERS:
            stream = parameter.online()
            streamed = [obs for frame in frames for obs in stream.push(frame)]
            assert streamed == list(parameter.observations(frames)), parameter.name

    def test_builtin_streams_match_batch_on_simulation(self, small_office_trace):
        frames = small_office_trace.frames
        for parameter in ALL_PARAMETERS:
            stream = parameter.online()
            streamed = [obs for frame in frames for obs in stream.push(frame)]
            assert streamed == list(parameter.observations(frames)), parameter.name

    def test_generic_base_stream_matches_batch(self, small_office_trace):
        """The Markov-1 pair trick must also reproduce the batch sequence."""
        from repro.core.parameters import ObservationStream

        frames = small_office_trace.frames[:500]
        for parameter in ALL_PARAMETERS:
            stream = ObservationStream(parameter)  # bypass the fast overrides
            streamed = [obs for frame in frames for obs in stream.push(frame)]
            assert streamed == list(parameter.observations(frames)), parameter.name

    def test_unattributable_frames_advance_the_clock(self):
        from repro.dot11.frames import ack_frame

        stream = InterArrivalTime().online()
        assert stream.push(make_data_capture(1000.0, A, AP)) == ()
        assert (
            stream.push(
                CapturedFrame(timestamp_us=1200.0, frame=ack_frame(A), rate_mbps=24.0)
            )
            == ()
        )
        (obs,) = stream.push(make_data_capture(1500.0, B, AP))
        assert obs.sender == B and obs.value == pytest.approx(300.0)
