"""CLI coverage for the ingest service and graceful shutdown.

``serve``/``sensor`` end-to-end over loopback TCP, SIGINT/SIGTERM
winding down ``stream`` and ``serve`` cleanly (final checkpoint, sinks
flushed, machine-readable stats), and the ``--stats-json`` dumps both
commands grew in this PR.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time

import pytest

from repro.cli import build_parser, main
from repro.persistence.store import is_database_store, load_database


@pytest.fixture(scope="module")
def office_pcap(tmp_path_factory, small_office_trace):
    path = tmp_path_factory.mktemp("cli-service") / "office.pcap"
    small_office_trace.to_pcap(path)
    return path


def free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_port(port: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return
        except OSError:
            if time.monotonic() > deadline:
                raise AssertionError(f"port {port} never opened")
            time.sleep(0.02)


class TestServeParser:
    def test_serve_and_sensor_subcommands_parse(self):
        parser = build_parser()
        serve = parser.parse_args(["serve", "--sessions", "3"])
        assert serve.command == "serve"
        assert serve.shards == 4 and serve.queue_chunks == 8
        assert serve.merge_policy == "replace" and serve.port == 0
        sensor = parser.parse_args(
            ["sensor", "x.pcap", "--connect", "127.0.0.1:9", "--sensor-id", "s0"]
        )
        assert sensor.command == "sensor"
        assert sensor.chunk_frames == 8192
        assert sensor.abort_after_chunks is None

    def test_stream_grew_stats_json(self):
        args = build_parser().parse_args(
            ["stream", "x.pcap", "--db", "d.json", "--stats-json", "s.json"]
        )
        assert args.stats_json == "s.json"

    def test_sensor_rejects_malformed_connect(self, office_pcap, capsys):
        code = main(
            [
                "sensor",
                str(office_pcap),
                "--connect",
                "nonsense",
                "--sensor-id",
                "s0",
            ]
        )
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestServeSensorEndToEnd:
    def run_sensors(self, port, jobs):
        """Run each ``main(argv)`` sensor job once the port is open."""
        codes = {}

        def run(name, argv):
            wait_for_port(port)
            codes[name] = main(argv)

        threads = [
            threading.Thread(target=run, args=(name, argv))
            for name, argv in jobs.items()
        ]
        for thread in threads:
            thread.start()
        return threads, codes

    def test_two_sensors_publish_merged_store(self, tmp_path, office_pcap, capsys):
        port = free_port()
        store = tmp_path / "refs.store"
        stats_path = tmp_path / "serve-stats.json"
        jobs = {
            sensor_id: [
                "sensor",
                str(office_pcap),
                "--connect",
                f"127.0.0.1:{port}",
                "--sensor-id",
                sensor_id,
                "--chunk-frames",
                "256",
            ]
            for sensor_id in ("s0", "s1")
        }
        threads, codes = self.run_sensors(port, jobs)
        code = main(
            [
                "serve",
                "--port",
                str(port),
                "--window-s",
                "30",
                "--min-observations",
                "30",
                "--shards",
                "3",
                "--sessions",
                "2",
                "--db-out",
                str(store),
                "--stats-json",
                str(stats_path),
            ]
        )
        for thread in threads:
            thread.join(timeout=30.0)
        assert code == 0
        assert codes == {"s0": 0, "s1": 0}
        out = capsys.readouterr().out
        assert "listening on 127.0.0.1" in out
        assert "served 2 sensors" in out and "published" in out

        assert is_database_store(store)
        loaded = load_database(store)
        assert loaded.parameter == "interarrival"
        assert len(loaded.database.devices) > 0

        payload = json.loads(stats_path.read_text())
        assert payload["interrupted"] is False
        assert payload["shard_count"] == 3
        assert {s["sensor"] for s in payload["sensors"]} == {"s0", "s1"}
        assert all(s["completed"] for s in payload["sensors"])
        assert payload["frames"] == 2 * payload["sensors"][0]["frames"]
        assert payload["queue_peak"] <= 8

    def test_aborted_sensor_resumes_through_cli(self, tmp_path, office_pcap, capsys):
        port = free_port()
        ckpt = tmp_path / "ckpts"
        stats_path = tmp_path / "stats.json"
        base = [
            "sensor",
            str(office_pcap),
            "--connect",
            f"127.0.0.1:{port}",
            "--sensor-id",
            "flaky",
            "--chunk-frames",
            "128",
        ]

        outcome = {}

        def crash_then_resume():
            wait_for_port(port)
            outcome["abort"] = main(base + ["--abort-after-chunks", "3"])
            # Give the server a moment to drain and checkpoint the
            # paused session before reconnecting.
            deadline = time.monotonic() + 10.0
            while not (ckpt / "flaky" / "manifest.json").exists():
                assert time.monotonic() < deadline
                time.sleep(0.05)
            outcome["resume"] = main(base)

        thread = threading.Thread(target=crash_then_resume)
        thread.start()
        code = main(
            [
                "serve",
                "--port",
                str(port),
                "--window-s",
                "30",
                "--min-observations",
                "30",
                "--sessions",
                "1",
                "--checkpoint-dir",
                str(ckpt),
                "--stats-json",
                str(stats_path),
            ]
        )
        thread.join(timeout=30.0)
        assert code == 0
        assert outcome["abort"] == 1  # aborted sessions exit non-zero
        assert outcome["resume"] == 0
        payload = json.loads(stats_path.read_text())
        (sensor,) = payload["sensors"]
        assert sensor["sensor"] == "flaky"
        assert sensor["completed"] is True
        out = capsys.readouterr().out
        assert "completed" in out


class TestGracefulShutdown:
    def test_stream_sigint_checkpoints_and_reports(
        self, tmp_path, office_pcap, capsys, monkeypatch
    ):
        db_path = tmp_path / "refs.json"
        assert main(["learn", str(office_pcap), "--db", str(db_path)]) == 0
        capsys.readouterr()

        import repro.streaming as streaming

        real_source = streaming.pcap_source

        def interrupting_source(path, skip_bad_fcs=False):
            for index, frame in enumerate(real_source(path, skip_bad_fcs=skip_bad_fcs)):
                if index == 200:
                    signal.raise_signal(signal.SIGINT)
                yield frame

        monkeypatch.setattr(streaming, "pcap_source", interrupting_source)
        checkpoint = tmp_path / "engine.ckpt"
        stats_path = tmp_path / "stream-stats.json"
        code = main(
            [
                "stream",
                str(office_pcap),
                "--db",
                str(db_path),
                "--window-s",
                "30",
                "--checkpoint",
                str(checkpoint),
                "--stats-json",
                str(stats_path),
            ]
        )
        assert code == 128 + signal.SIGINT
        out = capsys.readouterr().out
        assert "interrupted (SIGINT)" in out
        assert checkpoint.exists()
        payload = json.loads(stats_path.read_text())
        assert payload["interrupted"] is True
        assert payload["frames"] == 201  # stopped right after the signal

        # The interrupted run left resumable state: picking the same
        # capture back up processes exactly the remaining frames.
        monkeypatch.setattr(streaming, "pcap_source", real_source)
        code = main(
            [
                "stream",
                str(office_pcap),
                "--db",
                str(db_path),
                "--window-s",
                "30",
                "--resume",
                str(checkpoint),
                "--stats-json",
                str(stats_path),
            ]
        )
        assert code == 0
        total = sum(1 for _ in real_source(office_pcap))
        payload = json.loads(stats_path.read_text())
        assert payload["interrupted"] is False
        assert payload["frames"] == total

    def test_stream_stats_json_uninterrupted(self, tmp_path, office_pcap, capsys):
        db_path = tmp_path / "refs.json"
        assert main(["learn", str(office_pcap), "--db", str(db_path)]) == 0
        stats_path = tmp_path / "stats.json"
        code = main(
            [
                "stream",
                str(office_pcap),
                "--db",
                str(db_path),
                "--window-s",
                "30",
                "--chunk-frames",
                "512",
                "--stats-json",
                str(stats_path),
            ]
        )
        assert code == 0
        payload = json.loads(stats_path.read_text())
        assert payload["interrupted"] is False
        assert payload["frames"] > 0
        assert payload["windows_closed"] > 0
        assert payload["duration_s"] > 0
        assert "WindowClosed" in payload["events_by_type"]
        assert "stats ->" in capsys.readouterr().out

    def test_serve_sigterm_winds_down(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        timer = threading.Timer(
            0.6, signal.raise_signal, [signal.SIGTERM]
        )
        timer.start()
        try:
            code = main(
                [
                    "serve",
                    "--port",
                    str(free_port()),
                    "--stats-json",
                    str(stats_path),
                ]
            )
        finally:
            timer.cancel()
        assert code == 128 + signal.SIGTERM
        out = capsys.readouterr().out
        assert "interrupted (SIGTERM)" in out
        payload = json.loads(stats_path.read_text())
        assert payload["interrupted"] is True
        assert payload["sensors"] == []
