"""Chunked columnar ingest is bit-identical to the per-frame path.

The chunked fast path (``StreamEngine.process_chunk``,
``StreamingSignatureBuilder.update_table``,
``WindowManager.update_table``) exists purely for throughput — every
test here pins that it produces exactly the events, stats, and
resumable state of the per-frame reference path, for every chunking of
the same frames.  Signatures and ``ClosedWindow`` objects hold ndarray
fields, so equivalence is asserted through events (scalar frozen
dataclasses), ``StreamStats``, and ``export_state()`` dictionaries.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import BinSpec, UniformBins
from repro.core.parameters import (
    ALL_PARAMETERS,
    InterArrivalTime,
    NetworkParameter,
    Observation,
)
from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress, vendor_mac
from repro.streaming import (
    CollectingSink,
    DeviceEvicted,
    StreamEngine,
    StreamingSignatureBuilder,
    WindowClosed,
    WindowConfig,
    replay_chunk_source,
    table_chunks,
)
from repro.traces.table import FrameTable
from tests.conftest import make_data_capture

AP = vendor_mac("00:0f:66", 99)


def synth_frames(
    count: int = 1200, seed: int = 3, devices: int = 5, ack_share: float = 0.1
) -> list[CapturedFrame]:
    """A mixed capture: several devices, ACKs advancing the channel clock."""
    rng = random.Random(seed)
    senders = [vendor_mac("00:13:e8", i + 1) for i in range(devices)]
    frames = []
    t = 10_000.0
    for _ in range(count):
        t += rng.uniform(400, 5000)
        if rng.random() < ack_share:
            frames.append(
                CapturedFrame(
                    timestamp_us=t,
                    frame=Dot11Frame(subtype=FrameSubtype.ACK, size=14, addr1=AP),
                    rate_mbps=24.0,
                )
            )
        else:
            frames.append(
                make_data_capture(
                    t,
                    rng.choice(senders),
                    AP,
                    size=rng.choice([90, 400, 1500]),
                    rate=rng.choice([6.0, 24.0, 54.0]),
                    subtype=rng.choice(
                        [FrameSubtype.QOS_DATA, FrameSubtype.DATA, FrameSubtype.BEACON]
                    ),
                )
            )
    return frames


FRAMES = synth_frames()
TABLE = FrameTable.from_frames(FRAMES)


def chunk_spans(total: int, sizes: list[int]):
    """Cut ``[0, total)`` into spans cycling through ``sizes``."""
    spans, lo, i = [], 0, 0
    while lo < total:
        hi = min(total, lo + sizes[i % len(sizes)])
        spans.append((lo, hi))
        lo, i = hi, i + 1
    return spans


class SignedSize(NetworkParameter):
    """A custom parameter with no columnar path (fallback coverage)."""

    name = "signedsize"
    label = "negated frame size"

    def default_bins(self) -> BinSpec:
        return UniformBins(lo=-2400.0, hi=0.0, width=100.0)

    def observations(self, frames):
        for frame in frames:
            if frame.sender is not None:
                yield Observation(
                    frame.sender, frame.ftype_key, -float(frame.frame.size)
                )


class TestBuilderEquivalence:
    @pytest.mark.parametrize("parameter", ALL_PARAMETERS, ids=lambda p: p.name)
    @pytest.mark.parametrize("half_life", [None, 3.0], ids=["nodecay", "decay"])
    @given(sizes=st.lists(st.integers(1, 400), min_size=1, max_size=6))
    @settings(deadline=None, max_examples=15)
    def test_update_table_matches_per_frame(self, parameter, half_life, sizes):
        reference = StreamingSignatureBuilder(
            parameter, min_observations=10, decay_half_life_s=half_life
        )
        for frame in FRAMES:
            reference.update(frame)

        chunked = StreamingSignatureBuilder(
            parameter, min_observations=10, decay_half_life_s=half_life
        )
        for lo, hi in chunk_spans(len(TABLE), sizes):
            chunked.update_table(TABLE, lo, hi)

        assert chunked.export_state() == reference.export_state()

    @given(sizes=st.lists(st.integers(1, 400), min_size=1, max_size=6))
    @settings(deadline=None, max_examples=10)
    def test_fallback_for_parameter_without_columnar_path(self, sizes):
        parameter = SignedSize()
        reference = StreamingSignatureBuilder(parameter, min_observations=10)
        for frame in FRAMES:
            reference.update(frame)
        chunked = StreamingSignatureBuilder(parameter, min_observations=10)
        for lo, hi in chunk_spans(len(TABLE), sizes):
            chunked.update_table(TABLE, lo, hi)
        assert chunked.export_state() == reference.export_state()

    def test_mid_burst_chunk_boundary_carries_channel_clock(self):
        """A chunk cut between two frames of one device's burst must
        still observe the gap across the cut (the carried ``t_{i-1}``)."""
        a = vendor_mac("00:13:e8", 1)
        frames = [make_data_capture(1000.0 * i, a, AP) for i in range(1, 11)]
        table = FrameTable.from_frames(frames)
        parameter = InterArrivalTime()
        reference = StreamingSignatureBuilder(parameter, min_observations=1)
        for frame in frames:
            reference.update(frame)
        for cut in range(1, len(frames)):
            chunked = StreamingSignatureBuilder(parameter, min_observations=1)
            chunked.update_table(table, 0, cut)
            chunked.update_table(table, cut, len(frames))
            assert chunked.export_state() == reference.export_state()


def make_engine(parameter, sink, window_s=10.0, slide_s=None, idle_timeout_s=None):
    return StreamEngine(
        lambda: StreamingSignatureBuilder(parameter, min_observations=10),
        window=WindowConfig(
            window_s=window_s, slide_s=slide_s, idle_timeout_s=idle_timeout_s
        ),
        sinks=[sink],
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize("parameter", ALL_PARAMETERS, ids=lambda p: p.name)
    @pytest.mark.parametrize(
        "slide_s", [None, 3.0], ids=["tumbling", "sliding"]
    )
    @given(chunk_frames=st.integers(1, 2000))
    @settings(deadline=None, max_examples=10)
    def test_run_chunked_matches_run(self, parameter, slide_s, chunk_frames):
        ref_sink = CollectingSink()
        reference = make_engine(parameter, ref_sink, slide_s=slide_s)
        reference.run(FRAMES)

        chunk_sink = CollectingSink()
        chunked = make_engine(parameter, chunk_sink, slide_s=slide_s)
        chunked.run_chunked(replay_chunk_source(TABLE, chunk_frames))

        assert chunk_sink.events == ref_sink.events
        assert chunked.stats == reference.stats

    def test_chunk_boundary_exactly_on_window_boundary(self):
        """Windows of 10 s, one frame per second, chunks of 10 frames:
        every chunk boundary coincides with a window boundary — the
        hardest alignment for the splitting logic."""
        a, b = vendor_mac("00:13:e8", 1), vendor_mac("00:18:f8", 2)
        frames = [
            make_data_capture(1e6 * i, a if i % 2 else b, AP) for i in range(100)
        ]
        for chunk_frames in (10, 20, 5):
            ref_sink, chunk_sink = CollectingSink(), CollectingSink()
            reference = make_engine(InterArrivalTime(), ref_sink)
            reference.run(frames)
            chunked = make_engine(InterArrivalTime(), chunk_sink)
            chunked.run_chunked(table_chunks(frames, chunk_frames))
            assert chunk_sink.events == ref_sink.events
            assert chunked.stats == reference.stats
        assert ref_sink.of_type(WindowClosed)  # the scenario closes windows

    def test_checkpoint_at_chunk_boundary_resumes_identically(self, tmp_path):
        """Checkpoint after N whole chunks, restore into a fresh engine,
        finish with the remaining chunks: the two halves must splice
        into exactly the uninterrupted run's event stream and stats."""
        parameter = InterArrivalTime()
        whole_sink = CollectingSink()
        whole = make_engine(parameter, whole_sink)
        whole.run(FRAMES)

        chunks = list(replay_chunk_source(TABLE, 170))
        for boundary in (1, len(chunks) // 2, len(chunks) - 1):
            first_sink = CollectingSink()
            first = make_engine(parameter, first_sink)
            for chunk in chunks[:boundary]:
                first.process_chunk(chunk)
            checkpoint = first.checkpoint(tmp_path / "ck.json")

            second_sink = CollectingSink()
            second = make_engine(parameter, second_sink)
            second.restore(checkpoint)
            for chunk in chunks[boundary:]:
                second.process_chunk(chunk)
            second.flush()

            assert first_sink.events + second_sink.events == whole_sink.events
            assert second.stats == whole.stats


class TestPromptEviction:
    def frames_with_idle_device(self):
        a, b = vendor_mac("00:13:e8", 1), vendor_mac("00:18:f8", 2)
        frames = [
            make_data_capture(0.0, a, AP),
            make_data_capture(1000.0, a, AP),
        ]
        t = 1000.0
        for _ in range(1100):  # B alone, far past A's idle timeout
            t += 20_000.0
            frames.append(make_data_capture(t, b, AP))
        return frames, a

    def test_eviction_emitted_at_sweep_time_not_window_close(self):
        frames, a = self.frames_with_idle_device()
        sink = CollectingSink()
        engine = make_engine(
            InterArrivalTime(), sink, window_s=3600.0, idle_timeout_s=5.0
        )
        engine.run(frames)
        (evicted,) = sink.of_type(DeviceEvicted)
        (closed,) = sink.of_type(WindowClosed)
        assert evicted.device == a
        # Prompt emission: the sweep fires mid-window, long before the
        # window's end stamps the closure.
        assert evicted.timestamp_us < closed.end_us
        assert sink.events.index(evicted) < sink.events.index(closed)

    def test_eviction_events_identical_under_chunking(self):
        frames, _ = self.frames_with_idle_device()
        ref_sink = CollectingSink()
        make_engine(
            InterArrivalTime(), ref_sink, window_s=3600.0, idle_timeout_s=5.0
        ).run(frames)
        for chunk_frames in (1, 256, 512, 513, 4096):
            sink = CollectingSink()
            make_engine(
                InterArrivalTime(), sink, window_s=3600.0, idle_timeout_s=5.0
            ).run_chunked(table_chunks(frames, chunk_frames))
            assert sink.events == ref_sink.events
