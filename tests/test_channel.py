"""Unit tests for the channel model and mobility."""

from __future__ import annotations

import random

import pytest

from repro.simulator.channel import (
    RATE_SNR_THRESHOLD_DB,
    ChannelModel,
    Mobility,
    Position,
)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_distance_floor(self):
        assert Position(1, 1).distance_to(Position(1, 1)) == pytest.approx(0.5)


class TestSnr:
    def test_snr_decreases_with_distance(self):
        channel = ChannelModel(shadowing_sigma_db=0.0)
        rng = random.Random(1)
        near = channel.snr_db(2.0, rng)
        far = channel.snr_db(40.0, rng)
        assert near > far

    def test_shadowing_variation(self):
        channel = ChannelModel(shadowing_sigma_db=4.0)
        rng = random.Random(1)
        values = {round(channel.snr_db(10.0, rng), 3) for _ in range(20)}
        assert len(values) > 10


class TestSuccessProbability:
    def test_monotone_in_snr(self):
        channel = ChannelModel()
        low = channel.success_probability(10.0, 54.0, 1500)
        high = channel.success_probability(40.0, 54.0, 1500)
        assert high > low

    def test_lower_rate_more_robust(self):
        channel = ChannelModel()
        snr = 10.0
        assert channel.success_probability(snr, 6.0, 1500) > channel.success_probability(
            snr, 54.0, 1500
        )

    def test_longer_frames_fail_more(self):
        channel = ChannelModel()
        snr = RATE_SNR_THRESHOLD_DB[54.0]  # borderline link
        assert channel.success_probability(snr, 54.0, 100) > channel.success_probability(
            snr, 54.0, 2000
        )

    def test_noiseless_channel_always_succeeds(self):
        channel = ChannelModel(noiseless=True)
        rng = random.Random(1)
        assert all(
            channel.frame_succeeds(100.0, 54.0, 2000, rng) for _ in range(100)
        )
        assert all(
            channel.monitor_captures(100.0, 54.0, 2000, rng) for _ in range(100)
        )

    def test_every_rate_has_threshold(self):
        from repro.dot11.phy import ALL_RATES

        for rate in ALL_RATES:
            assert rate in RATE_SNR_THRESHOLD_DB


class TestBestRate:
    def test_high_snr_gets_top_rate(self):
        channel = ChannelModel()
        rates = (1.0, 2.0, 5.5, 11.0, 12.0, 24.0, 54.0)
        assert channel.best_rate_for_snr(60.0, rates) == 54.0

    def test_low_snr_gets_bottom_rate(self):
        channel = ChannelModel()
        rates = (1.0, 2.0, 5.5, 11.0, 12.0, 24.0, 54.0)
        assert channel.best_rate_for_snr(-5.0, rates) == 1.0

    def test_mid_snr_intermediate(self):
        channel = ChannelModel()
        rates = (1.0, 11.0, 24.0, 54.0)
        # 54 needs 24+2 dB, 24 needs 14+2: at 18 dB the best is 24.
        assert channel.best_rate_for_snr(18.0, rates) == 24.0
        # At 12 dB only 11 Mbps (8+2) still clears the margin.
        assert channel.best_rate_for_snr(12.0, rates) == 11.0


class TestMobility:
    def test_static_station_stays_put(self):
        mobility = Mobility(speed_mps=0.0, _position=Position(5, 5))
        rng = random.Random(2)
        first = mobility.position_at(0.0, rng)
        later = mobility.position_at(1e9, rng)
        assert (later.x, later.y) == (first.x, first.y)

    def test_moving_station_moves(self):
        mobility = Mobility(area_m=50.0, speed_mps=2.0, pause_s=0.0,
                            _position=Position(0, 0))
        rng = random.Random(2)
        start = mobility.position_at(0.0, rng)
        start_xy = (start.x, start.y)
        end = mobility.position_at(60e6, rng)  # one minute
        assert (end.x, end.y) != start_xy

    def test_stays_in_area(self):
        mobility = Mobility(area_m=20.0, speed_mps=3.0, pause_s=1.0,
                            _position=Position(10, 10))
        rng = random.Random(7)
        for step in range(1, 200):
            position = mobility.position_at(step * 5e6, rng)
            assert -0.01 <= position.x <= 20.01
            assert -0.01 <= position.y <= 20.01

    def test_time_never_goes_backwards(self):
        mobility = Mobility(area_m=20.0, speed_mps=1.0, _position=Position(0, 0))
        rng = random.Random(3)
        mobility.position_at(50e6, rng)
        # Queries at earlier times return the latest state, not crash.
        position = mobility.position_at(10e6, rng)
        assert position is not None
