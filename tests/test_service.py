"""Multi-sensor ingest service: equivalence, resume, backpressure.

The load-bearing claims (DESIGN.md §9) pinned here:

* **Concurrent == sequential**: K sensors streaming interleaved over
  TCP produce a merged reference database bin-for-bin identical to
  :func:`repro.service.run_inline` — the no-threads no-sockets
  reference — and per-sensor event streams identical to their inline
  pipelines.
* **Kill-and-resume identity**: a sensor session aborted mid-stream
  (no END record) is checkpointed; re-sending the same capture —
  against the live server or a freshly restarted one — replays the
  remainder event-for-event identically to an uninterrupted run.
* **Backpressure**: the per-sensor ingest queue never exceeds its
  configured bound.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.database import ReferenceDatabase
from repro.core.parameters import InterArrivalTime, TransmissionRate
from repro.persistence.store import load_database
from repro.service import (
    IngestServer,
    ReferenceHarvester,
    SensorPipeline,
    SensorSession,
    ServiceConfig,
    ShardRouter,
    run_inline,
)
from repro.streaming import (
    CollectingSink,
    StreamEngine,
    StreamingSignatureBuilder,
    WindowConfig,
    replay_chunk_source,
)
from repro.traces.table import FrameTable

from tests.test_persistence import assert_databases_equal
from tests.test_streaming_chunked import synth_frames


def make_config(**overrides) -> ServiceConfig:
    defaults = dict(
        parameter=InterArrivalTime(),
        shard_count=3,
        window=WindowConfig(window_s=0.5),
        min_observations=5,
        queue_chunks=4,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def sensor_captures(
    count_sensors: int = 3, frames: int = 900, chunk_frames: int = 64
) -> dict[str, list[FrameTable]]:
    """Per-sensor chunk lists — overlapping devices, distinct timing."""
    captures = {}
    for i in range(count_sensors):
        table = FrameTable.from_frames(
            synth_frames(count=frames, seed=100 + i, devices=4 + i)
        )
        captures[f"sensor-{i}"] = list(replay_chunk_source(table, chunk_frames))
    return captures


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached before timeout")
        time.sleep(interval)


class SinkRegistry:
    """A ``sink_factory`` that remembers every sensor's sink."""

    def __init__(self) -> None:
        self.sinks: dict[str, CollectingSink] = {}

    def __call__(self, sensor: str) -> CollectingSink:
        sink = self.sinks.setdefault(sensor, CollectingSink())
        return sink


class TestShardRouter:
    def setup_method(self) -> None:
        self.table = FrameTable.from_frames(synth_frames(count=600, seed=7))

    def test_partition_covers_rows_and_broadcasts_sentinels(self):
        router = ShardRouter(shard_count=3)
        parts = router.partition(self.table)
        assert len(parts) == 3
        sentinel_total = int((self.table.sender_idx == -1).sum())
        attributable = 0
        for part in parts:
            part_sentinels = int((part.sender_idx == -1).sum())
            assert part_sentinels == sentinel_total  # broadcast to every shard
            attributable += len(part) - part_sentinels
            # Relative order survives the mask selection.
            assert (part.timestamp_us[1:] >= part.timestamp_us[:-1]).all()
        assert attributable == len(self.table) - sentinel_total

    def test_each_sender_lands_on_exactly_one_shard(self):
        router = ShardRouter(shard_count=4)
        parts = router.partition(self.table)
        for idx, sender in enumerate(self.table.senders):
            owner = router.shard_of(sender)
            for shard, part in enumerate(parts):
                rows = int((part.sender_idx == idx).sum())
                expected = int((self.table.sender_idx == idx).sum())
                assert rows == (expected if shard == owner else 0)

    def test_single_shard_is_passthrough(self):
        router = ShardRouter(shard_count=1)
        parts = router.partition(self.table)
        assert parts == [self.table]

    def test_routing_is_stable_across_instances(self):
        a, b = ShardRouter(5), ShardRouter(5)
        for sender in self.table.senders:
            assert a.shard_of(sender) == b.shard_of(sender)


class TestMultiSensorEquivalence:
    def test_concurrent_service_matches_sequential_inline(self, tmp_path):
        captures = sensor_captures(3)
        config = make_config()

        service_sinks = SinkRegistry()
        with IngestServer(config, sink_factory=service_sinks) as server:
            port = server.listen()
            threads = [
                threading.Thread(
                    target=SensorSession(sensor, chunks).connect,
                    args=("127.0.0.1", port),
                )
                for sensor, chunks in captures.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert server.wait_for_sessions(len(captures), timeout=60.0)
            merged = server.merged_database()
            shard_dbs = server.shard_databases()
            stats = server.stats()

        inline_sinks = SinkRegistry()
        inline = run_inline(captures, config, sink_factory=inline_sinks)

        # The one shared database: bin-for-bin identical.
        assert len(merged.devices) > 0
        assert_databases_equal(merged, inline.database)
        # Each shard's learnt sub-database matches too.
        for service_shard, inline_shard in zip(shard_dbs, inline.shard_databases):
            assert_databases_equal(service_shard, inline_shard)
        # Per-sensor event streams are identical despite concurrency.
        for sensor in captures:
            assert (
                service_sinks.sinks[sensor].events
                == inline_sinks.sinks[sensor].events
            )
        # Counters line up with what the sensors shipped.
        expected_frames = sum(
            sum(len(chunk) for chunk in chunks) for chunks in captures.values()
        )
        assert stats.frames == expected_frames
        assert all(sensor.completed for sensor in stats.sensors)

    def test_single_shard_service_matches_plain_engine(self):
        captures = sensor_captures(1, frames=600)
        (sensor, chunks), = captures.items()
        config = make_config(shard_count=1, parameter=TransmissionRate())

        with IngestServer(config) as server:
            port = server.listen()
            SensorSession(sensor, chunks).connect("127.0.0.1", port)
            assert server.wait_for_sessions(1, timeout=60.0)
            merged = server.merged_database()

        # An independently wired engine + harvester, no service layer.
        reference = ReferenceDatabase()
        engine = StreamEngine(
            config.builder_factory,
            window=config.window,
            analyzers=[ReferenceHarvester(reference)],
        )
        engine.run_chunked(iter(chunks))

        assert len(merged.devices) > 0
        assert_databases_equal(merged, reference)

    def test_publish_writes_loadable_store(self, tmp_path):
        captures = sensor_captures(2, frames=500)
        config = make_config(shard_count=2)
        with IngestServer(config) as server:
            port = server.listen()
            for sensor, chunks in captures.items():
                SensorSession(sensor, chunks).connect("127.0.0.1", port)
            assert server.wait_for_sessions(2, timeout=60.0)
            store = server.publish(tmp_path / "refs.store")
            merged = server.merged_database()
        loaded = load_database(store)
        assert loaded.parameter == config.parameter.name
        assert_databases_equal(loaded.database, merged)


class TestKillAndResume:
    def _uninterrupted(self, sensor, chunks, config):
        sinks = SinkRegistry()
        result = run_inline({sensor: chunks}, config, sink_factory=sinks)
        return result.database, sinks.sinks[sensor].events

    def test_killed_session_resumes_event_for_event(self, tmp_path):
        captures = sensor_captures(1, frames=800)
        (sensor, chunks), = captures.items()
        config = make_config()
        baseline_db, baseline_events = self._uninterrupted(sensor, chunks, config)

        sinks = SinkRegistry()
        ckpt = tmp_path / "ckpts"
        with IngestServer(config, checkpoint_dir=ckpt, sink_factory=sinks) as server:
            port = server.listen()
            # Phase 1: the sensor dies after 5 chunks, END never sent.
            report = SensorSession(sensor, chunks).connect(
                "127.0.0.1", port, abort_after_chunks=5
            )
            assert not report.ended
            # The pause checkpoint lands once the worker drains the queue.
            assert server.wait_for_detach(sensor, timeout=30.0)
            assert SensorPipeline.has_checkpoint(ckpt, sensor)
            frames_at_pause = server.stats().sensors[0].frames
            assert 0 < frames_at_pause < sum(len(c) for c in chunks)

            # Phase 2: reconnect, re-send the whole capture; the server
            # trims the already-processed prefix.
            report = SensorSession(sensor, chunks).connect("127.0.0.1", port)
            assert report.ended
            assert server.wait_for_sessions(1, timeout=60.0)
            merged = server.merged_database()
            stats = server.stats().sensors[0]

        assert stats.frames == sum(len(c) for c in chunks)
        assert stats.completed
        assert_databases_equal(merged, baseline_db)
        # Same events, same order, nothing dropped or duplicated.
        assert sinks.sinks[sensor].events == baseline_events

    def test_resume_survives_server_restart(self, tmp_path):
        captures = sensor_captures(1, frames=800)
        (sensor, chunks), = captures.items()
        config = make_config()
        baseline_db, baseline_events = self._uninterrupted(sensor, chunks, config)

        ckpt = tmp_path / "ckpts"
        first_sinks = SinkRegistry()
        with IngestServer(
            config, checkpoint_dir=ckpt, sink_factory=first_sinks
        ) as server:
            port = server.listen()
            report = SensorSession(sensor, chunks).connect(
                "127.0.0.1", port, abort_after_chunks=4
            )
            assert not report.ended
            assert server.wait_for_detach(sensor, timeout=30.0)
            assert SensorPipeline.has_checkpoint(ckpt, sensor)
        phase1_events = list(first_sinks.sinks[sensor].events)

        # A brand-new server process restores the sensor from disk.
        second_sinks = SinkRegistry()
        with IngestServer(
            config, checkpoint_dir=ckpt, sink_factory=second_sinks
        ) as server:
            port = server.listen()
            report = SensorSession(sensor, chunks).connect("127.0.0.1", port)
            assert report.ended
            assert server.wait_for_sessions(1, timeout=60.0)
            merged = server.merged_database()
            stats = server.stats().sensors[0]

        assert stats.resumed_from_frames > 0
        assert stats.frames == sum(len(c) for c in chunks)
        assert_databases_equal(merged, baseline_db)
        # Pre-crash events plus post-restore events == uninterrupted run.
        replayed = phase1_events + list(second_sinks.sinks[sensor].events)
        assert replayed == baseline_events

    def test_checkpoint_rejects_config_mismatch(self, tmp_path):
        config = make_config()
        pipeline = SensorPipeline("sensor-0", config)
        for chunk in sensor_captures(1, frames=300)["sensor-0"]:
            pipeline.ingest(chunk)
        pipeline.checkpoint(tmp_path)

        other = make_config(shard_count=4)
        with pytest.raises(ValueError, match="config mismatch"):
            SensorPipeline.restore(tmp_path, "sensor-0", other)

    def test_pipeline_checkpoint_round_trip(self, tmp_path):
        config = make_config()
        chunks = sensor_captures(1, frames=700)["sensor-0"]
        pipeline = SensorPipeline("sensor-0", config)
        for chunk in chunks[:6]:
            pipeline.ingest(chunk)
        pipeline.checkpoint(tmp_path)

        restored = SensorPipeline.restore(tmp_path, "sensor-0", config)
        assert restored.frames == pipeline.frames
        assert restored.chunks == pipeline.chunks
        assert restored.horizon_us == pipeline.horizon_us
        for a, b in zip(pipeline.harvests, restored.harvests):
            assert_databases_equal(a, b)

        # Feeding both the remaining chunks converges identically.
        for chunk in chunks[6:]:
            pipeline.ingest(chunk)
            restored.ingest(chunk)
        pipeline.finish()
        restored.finish()
        for a, b in zip(pipeline.harvests, restored.harvests):
            assert_databases_equal(a, b)


class TestServerBehaviour:
    def test_queue_depth_stays_bounded(self):
        captures = sensor_captures(2, frames=900, chunk_frames=32)
        config = make_config(queue_chunks=2)
        with IngestServer(config) as server:
            port = server.listen()
            threads = [
                threading.Thread(
                    target=SensorSession(sensor, chunks).connect,
                    args=("127.0.0.1", port),
                )
                for sensor, chunks in captures.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert server.wait_for_sessions(2, timeout=60.0)
            stats = server.stats()
        assert stats.queue_peak <= config.queue_chunks
        assert stats.frames_per_s > 0

    def test_duplicate_active_sensor_rejected(self):
        config = make_config()
        server = IngestServer(config, attach_wait_s=0.1)
        try:
            server._attach("sensor-0")
            with pytest.raises(RuntimeError, match="already connected"):
                server._attach("sensor-0")
        finally:
            server.close()

    def test_completed_sensor_rejected(self):
        captures = sensor_captures(1, frames=300)
        (sensor, chunks), = captures.items()
        config = make_config()
        with IngestServer(config) as server:
            port = server.listen()
            SensorSession(sensor, chunks).connect("127.0.0.1", port)
            assert server.wait_for_sessions(1, timeout=60.0)
            with pytest.raises(RuntimeError, match="already completed"):
                server._attach(sensor)

    def test_garbage_after_hello_pauses_not_crashes(self):
        from repro.service.wire import RECORD_HELLO, encode_json

        config = make_config()
        with IngestServer(config) as server:
            port = server.listen()
            import socket as socket_module

            with socket_module.create_connection(("127.0.0.1", port)) as conn:
                conn.sendall(encode_json(RECORD_HELLO, {"sensor": "mangled"}))
                conn.sendall(b"\x00garbage-that-is-not-a-record\xff" * 4)
            wait_until(lambda: "mangled" in server._sensors)
            wait_until(lambda: not server._sensors["mangled"].attached)
            stats = server.stats()
        assert stats.sensors[0].sensor == "mangled"
        assert stats.sensors[0].frames == 0
        assert not stats.sensors[0].completed

    def test_bad_sensor_ids_rejected(self):
        with pytest.raises(ValueError):
            SensorPipeline("", make_config())
        with pytest.raises(ValueError):
            SensorPipeline("../escape", make_config())

    def test_stats_to_dict_shape(self):
        captures = sensor_captures(1, frames=400)
        (sensor, chunks), = captures.items()
        config = make_config()
        with IngestServer(config) as server:
            port = server.listen()
            SensorSession(sensor, chunks).connect("127.0.0.1", port)
            assert server.wait_for_sessions(1, timeout=60.0)
            payload = server.stats().to_dict()
        assert payload["shard_count"] == config.shard_count
        assert payload["frames"] == sum(len(c) for c in chunks)
        assert payload["sensors"][0]["sensor"] == sensor
        assert payload["sensors"][0]["completed"] is True
        assert payload["frames_per_s"] >= 0
