"""Unit and property tests for the 802.11 MAC wire codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.frames import Dot11Frame, FrameSubtype, ack_frame, cts_frame, rts_frame
from repro.dot11.mac import BROADCAST, MacAddress
from repro.radiotap.dot11_codec import (
    Dot11CodecError,
    decode_dot11,
    encode_dot11,
    header_length,
)

A = MacAddress.parse("00:13:e8:00:00:01")
B = MacAddress.parse("00:18:f8:00:00:02")
C = MacAddress.parse("00:14:a4:00:00:03")


class TestHeaderLengths:
    def test_ack_cts_header(self):
        assert header_length(ack_frame(A)) == 10
        assert header_length(cts_frame(A)) == 10

    def test_rts_header(self):
        assert header_length(rts_frame(A, B, 100)) == 16

    def test_data_header(self):
        frame = Dot11Frame(subtype=FrameSubtype.DATA, size=100, addr1=B, addr2=A)
        assert header_length(frame) == 24

    def test_qos_data_header(self):
        frame = Dot11Frame(subtype=FrameSubtype.QOS_DATA, size=100, addr1=B, addr2=A)
        assert header_length(frame) == 26


class TestRoundTrip:
    def test_data_frame(self):
        frame = Dot11Frame(
            subtype=FrameSubtype.QOS_DATA,
            size=1200,
            addr1=B,
            addr2=A,
            addr3=C,
            retry=True,
            to_ds=True,
            protected=True,
            power_mgmt=True,
            duration_us=314,
            seq=1234,
            payload=b"hello world",
        )
        raw = encode_dot11(frame)
        assert len(raw) == 1200
        decoded = decode_dot11(raw)
        assert decoded.fcs_ok
        back = decoded.frame
        assert back.subtype is FrameSubtype.QOS_DATA
        assert (back.addr1, back.addr2, back.addr3) == (B, A, C)
        assert back.retry and back.to_ds and back.protected and back.power_mgmt
        assert back.duration_us == 314
        assert back.seq == 1234
        assert back.payload.startswith(b"hello world")

    def test_ack_round_trip(self):
        raw = encode_dot11(ack_frame(A))
        decoded = decode_dot11(raw)
        assert decoded.frame.subtype is FrameSubtype.ACK
        assert decoded.frame.addr1 == A
        assert decoded.frame.transmitter is None

    def test_rts_round_trip(self):
        raw = encode_dot11(rts_frame(A, B, 765))
        decoded = decode_dot11(raw)
        assert decoded.frame.subtype is FrameSubtype.RTS
        assert decoded.frame.transmitter == A
        assert decoded.frame.duration_us == 765

    def test_beacon_round_trip(self):
        frame = Dot11Frame(
            subtype=FrameSubtype.BEACON, size=180, addr1=BROADCAST, addr2=A, addr3=A
        )
        decoded = decode_dot11(encode_dot11(frame))
        assert decoded.frame.subtype is FrameSubtype.BEACON
        assert decoded.frame.is_broadcast

    @given(
        subtype=st.sampled_from(
            [
                FrameSubtype.DATA,
                FrameSubtype.QOS_DATA,
                FrameSubtype.NULL_FUNCTION,
                FrameSubtype.PROBE_REQUEST,
                FrameSubtype.BEACON,
                FrameSubtype.PROBE_RESPONSE,
            ]
        ),
        size=st.integers(min_value=40, max_value=2346),
        seq=st.integers(min_value=0, max_value=4095),
        retry=st.booleans(),
        protected=st.booleans(),
    )
    def test_round_trip_property(self, subtype, size, seq, retry, protected):
        frame = Dot11Frame(
            subtype=subtype,
            size=size,
            addr1=B,
            addr2=A,
            addr3=C,
            seq=seq,
            retry=retry,
            protected=protected,
        )
        raw = encode_dot11(frame)
        assert len(raw) == size
        decoded = decode_dot11(raw)
        assert decoded.fcs_ok
        assert decoded.frame.subtype is subtype
        assert decoded.frame.size == size
        assert decoded.frame.seq == seq
        assert decoded.frame.retry == retry
        assert decoded.frame.protected == protected


class TestFcs:
    def test_corruption_detected(self):
        raw = bytearray(encode_dot11(ack_frame(A)))
        raw[-1] ^= 0xFF
        assert not decode_dot11(bytes(raw)).fcs_ok

    def test_payload_corruption_detected(self):
        frame = Dot11Frame(subtype=FrameSubtype.DATA, size=200, addr1=B, addr2=A)
        raw = bytearray(encode_dot11(frame))
        raw[100] ^= 0x01
        assert not decode_dot11(bytes(raw)).fcs_ok


class TestErrors:
    def test_size_smaller_than_header(self):
        frame = Dot11Frame(subtype=FrameSubtype.QOS_DATA, size=20, addr1=B, addr2=A)
        with pytest.raises(Dot11CodecError):
            encode_dot11(frame)

    def test_missing_addr2(self):
        frame = Dot11Frame(subtype=FrameSubtype.DATA, size=100, addr1=B)
        with pytest.raises(Dot11CodecError):
            encode_dot11(frame)

    def test_truncated_input(self):
        with pytest.raises(Dot11CodecError):
            decode_dot11(b"\x08\x00\x00")

    def test_bad_protocol_version(self):
        raw = bytearray(encode_dot11(ack_frame(A)))
        raw[0] |= 0x03
        with pytest.raises(Dot11CodecError):
            decode_dot11(bytes(raw))
