"""Unit tests for access-point behaviour."""

from __future__ import annotations

import random

import pytest

from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import BROADCAST, MacAddress
from repro.dot11.timing import TIMING_BG_MIXED
from repro.simulator.ap import AccessPoint, BeaconSource
from repro.simulator.channel import ChannelModel, Position
from repro.simulator.profiles import profile_by_name


def _make_ap() -> AccessPoint:
    return AccessPoint(
        mac=MacAddress.parse("00:0f:b5:00:00:01"),
        profile=profile_by_name("atheros-ar9285-ath9k"),
        channel_model=ChannelModel(noiseless=True),
        network_timing=TIMING_BG_MIXED,
        rng=random.Random(4),
        position=Position(10, 10),
        beacon_size=200,
    )


def _client_station():
    from repro.simulator.device import Station
    from repro.simulator.channel import Mobility

    return Station(
        mac=MacAddress.parse("00:13:e8:00:00:07"),
        profile=profile_by_name("intel-2200bg-linux"),
        channel_model=ChannelModel(noiseless=True),
        network_timing=TIMING_BG_MIXED,
        rng=random.Random(5),
        mobility=Mobility(speed_mps=0.0, _position=Position(5, 5)),
    )


class TestBeaconSource:
    def test_interval(self):
        source = BeaconSource(beacon_size=200)
        rng = random.Random(1)
        frames, next_time = source.next_burst(0.0, rng)
        assert len(frames) == 1
        assert frames[0].subtype is FrameSubtype.BEACON
        assert frames[0].size == 200
        assert next_time == pytest.approx(102_400.0)

    def test_start_delay_within_interval(self):
        source = BeaconSource()
        rng = random.Random(1)
        for _ in range(20):
            assert 0 <= source.start_delay_us(rng) <= source.interval_us


class TestProbeResponse:
    def test_responds_to_probe_request(self):
        ap = _make_ap()
        client = _client_station()
        probe = Dot11Frame(
            subtype=FrameSubtype.PROBE_REQUEST,
            size=120,
            addr1=BROADCAST,
            addr2=client.mac,
        )
        assert ap.on_frame_aired(client, probe, 1000.0)
        assert ap.queue
        queued = ap.queue[0]
        assert queued.subtype is FrameSubtype.PROBE_RESPONSE
        assert queued.peer == client.mac

    def test_ignores_own_probes(self):
        ap = _make_ap()
        probe = Dot11Frame(
            subtype=FrameSubtype.PROBE_REQUEST,
            size=120,
            addr1=BROADCAST,
            addr2=ap.mac,
        )
        assert not ap.on_frame_aired(ap, probe, 1000.0)

    def test_ignores_data_frames(self):
        ap = _make_ap()
        client = _client_station()
        data = Dot11Frame(
            subtype=FrameSubtype.QOS_DATA, size=500, addr1=ap.mac, addr2=client.mac
        )
        assert not ap.on_frame_aired(client, data, 1000.0)

    def test_probe_response_is_acked_exchange(self):
        ap = _make_ap()
        client = _client_station()
        probe = Dot11Frame(
            subtype=FrameSubtype.PROBE_REQUEST,
            size=120,
            addr1=BROADCAST,
            addr2=client.mac,
        )
        ap.on_frame_aired(client, probe, 1000.0)
        outcome = ap.execute_exchange(5000.0)
        subtypes = [c.subtype for c in outcome.captures]
        assert FrameSubtype.PROBE_RESPONSE in subtypes
        assert FrameSubtype.ACK in subtypes  # unicast mgmt is acked

    def test_ap_is_its_own_bssid(self):
        ap = _make_ap()
        assert ap.bssid == ap.mac
