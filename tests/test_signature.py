"""Unit tests for signature construction (Definition 1)."""

from __future__ import annotations

import pytest

from repro.dot11.mac import MacAddress
from repro.core.parameters import FrameSize, InterArrivalTime
from repro.core.signature import Signature, SignatureBuilder
from repro.dot11.frames import FrameSubtype
from tests.conftest import make_data_capture

A = MacAddress.parse("00:13:e8:00:00:0a")
B = MacAddress.parse("00:18:f8:00:00:0b")
AP = MacAddress.parse("00:0f:b5:00:00:01")


def _frames(sender, count, start=0.0, gap=1000.0, subtype=FrameSubtype.QOS_DATA, size=500):
    return [
        make_data_capture(start + i * gap, sender, AP, size=size, subtype=subtype)
        for i in range(count)
    ]


class TestMinimumObservations:
    def test_below_threshold_omitted(self):
        builder = SignatureBuilder(FrameSize(), min_observations=50)
        signatures = builder.build(_frames(A, 49))
        assert A not in signatures

    def test_at_threshold_included(self):
        builder = SignatureBuilder(FrameSize(), min_observations=50)
        signatures = builder.build(_frames(A, 50))
        assert A in signatures

    def test_threshold_counts_kept_observations(self):
        # Inter-arrival yields n-1 observations for n frames.
        builder = SignatureBuilder(InterArrivalTime(), min_observations=50)
        assert A not in builder.build(_frames(A, 50))
        assert A in builder.build(_frames(A, 51))

    def test_validation(self):
        with pytest.raises(ValueError):
            SignatureBuilder(FrameSize(), min_observations=0)


class TestWeights:
    def test_weights_reflect_frame_type_mix(self):
        frames = _frames(A, 30, subtype=FrameSubtype.QOS_DATA) + _frames(
            A, 70, start=1e6, subtype=FrameSubtype.PROBE_REQUEST, size=120
        )
        builder = SignatureBuilder(FrameSize(), min_observations=50)
        signature = builder.build(frames)[A]
        assert signature.weight("QoS Data") == pytest.approx(0.3)
        assert signature.weight("Probe Request") == pytest.approx(0.7)

    def test_weights_sum_to_one(self):
        frames = _frames(A, 40) + _frames(A, 25, start=1e6, subtype=FrameSubtype.DATA)
        signature = SignatureBuilder(FrameSize(), min_observations=50).build(frames)[A]
        assert sum(signature.weights.values()) == pytest.approx(1.0)

    def test_absent_type_weight_zero(self):
        signature = SignatureBuilder(FrameSize(), min_observations=10).build(
            _frames(A, 20)
        )[A]
        assert signature.weight("Beacon") == 0.0


class TestHistogramContent:
    def test_histograms_normalised(self):
        signature = SignatureBuilder(FrameSize(), min_observations=10).build(
            _frames(A, 20, size=500) + _frames(A, 20, start=1e6, size=1500)
        )[A]
        histogram = signature.histogram("QoS Data")
        assert histogram is not None
        assert histogram.sum() == pytest.approx(1.0)

    def test_distinct_sizes_in_distinct_bins(self):
        signature = SignatureBuilder(FrameSize(), min_observations=10).build(
            _frames(A, 10, size=100) + _frames(A, 10, start=1e6, size=2000)
        )[A]
        histogram = signature.histogram("QoS Data")
        assert (histogram > 0).sum() == 2

    def test_per_device_separation(self):
        frames = sorted(
            _frames(A, 30, size=100) + _frames(B, 30, start=500.0, size=2000),
            key=lambda c: c.timestamp_us,
        )
        signatures = SignatureBuilder(FrameSize(), min_observations=10).build(frames)
        assert set(signatures) == {A, B}
        hist_a = signatures[A].histogram("QoS Data")
        hist_b = signatures[B].histogram("QoS Data")
        assert (hist_a * hist_b).sum() == pytest.approx(0.0)  # disjoint bins

    def test_build_single(self):
        builder = SignatureBuilder(FrameSize(), min_observations=10)
        assert builder.build_single(_frames(A, 20), A) is not None
        assert builder.build_single(_frames(A, 20), B) is None


class TestSignatureValidation:
    def test_mismatched_keys_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            Signature(histograms={"Data": np.zeros(4)}, weights={})

    def test_negative_weight_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            Signature(
                histograms={"Data": np.zeros(4)}, weights={"Data": -0.1}
            )

    def test_total_observations(self):
        signature = SignatureBuilder(FrameSize(), min_observations=10).build(
            _frames(A, 25)
        )[A]
        assert signature.total_observations == 25
        assert signature.frame_types == {"QoS Data"}
