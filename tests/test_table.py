"""The columnar trace backbone: FrameTable, vectorized extraction.

Property-pins the tentpole equivalences of DESIGN.md §6:

* ``observe_table`` reproduces ``observations()`` **bit for bit** for
  all five parameters on arbitrary frame sequences — including
  sender-less ACK/CTS frames that advance the channel clock without
  ever yielding an observation;
* ``FrameTable.from_frames`` / ``to_frames`` round-trip losslessly;
* ``SignatureBuilder.build_table`` matches ``build`` bin for bin,
  weight for weight, in the same dict order;
* the columnar window-candidate fast path matches the per-window
  object path, similarities included.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import ReferenceDatabase
from repro.core.detection import DetectionConfig, extract_window_candidates
from repro.core.parameters import ALL_PARAMETERS
from repro.core.signature import SignatureBuilder
from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype, ack_frame, cts_frame
from repro.dot11.mac import vendor_mac
from repro.dot11.phy import ALL_RATES
from repro.traces.table import FrameTable, window_bounds
from repro.traces.trace import Trace

SENDERS = [vendor_mac("00:13:e8", i) for i in range(1, 5)]
AP = vendor_mac("00:0f:b5", 1)

_SUBTYPES = [
    FrameSubtype.QOS_DATA,
    FrameSubtype.DATA,
    FrameSubtype.NULL_FUNCTION,
    FrameSubtype.PROBE_REQUEST,
    FrameSubtype.BEACON,
    FrameSubtype.RTS,
]


@st.composite
def capture_sequences(draw):
    """Time-ordered frame mixes with sender-less ACK/CTS interleaved."""
    count = draw(st.integers(min_value=0, max_value=80))
    frames = []
    t = 0.0
    for _ in range(count):
        t += draw(st.floats(min_value=0.0, max_value=5000.0))
        kind = draw(st.integers(min_value=0, max_value=9))
        if kind == 0:
            frame = ack_frame(draw(st.sampled_from(SENDERS)))
        elif kind == 1:
            frame = cts_frame(draw(st.sampled_from(SENDERS)))
        else:
            frame = Dot11Frame(
                subtype=draw(st.sampled_from(_SUBTYPES)),
                size=draw(st.integers(min_value=20, max_value=2400)),
                addr1=AP,
                addr2=draw(st.sampled_from(SENDERS)),
                addr3=AP,
            )
        frames.append(
            CapturedFrame(
                timestamp_us=t,
                frame=frame,
                rate_mbps=draw(st.sampled_from(ALL_RATES)),
            )
        )
    return frames


class TestObserveTableEquivalence:
    @given(frames=capture_sequences())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_observe_table_matches_observations_bitwise(self, frames):
        table = FrameTable.from_frames(frames)
        for parameter in ALL_PARAMETERS:
            scalar = list(parameter.observations(frames))
            batch = parameter.observe_table(table)
            assert batch is not None
            assert len(scalar) == batch.values.shape[0], parameter.name
            for row, observation in enumerate(scalar):
                assert table.senders[batch.sender_idx[row]] == observation.sender
                assert table.ftype_keys[batch.ftype_idx[row]] == observation.ftype_key
                # Bit-for-bit, not approx: the vectorized arithmetic
                # must replay the scalar operations exactly.
                assert batch.values[row] == observation.value, parameter.name

    @given(frames=capture_sequences())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_from_frames_to_frames_round_trip(self, frames):
        table = FrameTable.from_frames(frames)
        assert table.to_frames() == frames
        # Row slices round-trip the corresponding sub-list.
        if len(frames) >= 2:
            lo, hi = 1, len(frames) - 1
            assert table.slice_rows(lo, hi).to_frames() == frames[lo:hi]

    @given(frames=capture_sequences())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_build_table_matches_build(self, frames):
        for parameter in ALL_PARAMETERS:
            builder = SignatureBuilder(parameter, min_observations=1)
            table = FrameTable.from_frames(frames)
            scalar = builder.build(frames)
            columnar = builder.build_table(table)
            assert list(scalar) == list(columnar), parameter.name
            for device, expected in scalar.items():
                actual = columnar[device]
                assert list(expected.histograms) == list(actual.histograms)
                for key, histogram in expected.histograms.items():
                    assert np.array_equal(histogram, actual.histograms[key])
                    assert expected.weights[key] == actual.weights[key]
                    assert (
                        expected.observation_counts[key]
                        == actual.observation_counts[key]
                    )


class TestTableSlicing:
    def _frames(self, stamps):
        return [
            CapturedFrame(
                timestamp_us=t,
                frame=Dot11Frame(
                    subtype=FrameSubtype.QOS_DATA, size=100, addr1=AP,
                    addr2=SENDERS[0], addr3=AP,
                ),
                rate_mbps=54.0,
            )
            for t in stamps
        ]

    def test_slice_us_is_a_view(self):
        table = FrameTable.from_frames(self._frames([0.0, 10.0, 20.0, 30.0]))
        window = table.slice_us(10.0, 30.0)
        assert len(window) == 2
        assert window.timestamp_us.base is not None  # view, not copy
        assert window.senders is table.senders
        assert window.to_frames() == table.to_frames()[1:3]

    def test_windows_match_trace_windows(self):
        stamps = [0.0, 40.0, 100.0, 160.0, 200.0]
        frames = self._frames(stamps)
        table = FrameTable.from_frames(frames)
        trace = Trace(frames=frames)
        for window_s in (100 / 1e6, 60 / 1e6, 250 / 1e6):
            table_lens = [len(w) for w in table.windows(window_s)]
            trace_lens = [len(w) for w in trace.windows(window_s)]
            assert table_lens == trace_lens

    def test_window_bounds_cover_all_frames(self):
        stamps = np.array([0.0, 30.0, 60.0, 90.0])
        bounds = list(window_bounds(stamps, 30 / 1e6))
        assert bounds[0][0] == 0 and bounds[-1][1] == len(stamps)
        covered = sum(hi - lo for lo, hi in bounds)
        assert covered == len(stamps)

    def test_mask_ftypes_and_sender_code(self):
        frames = self._frames([0.0, 5.0]) + [
            CapturedFrame(timestamp_us=9.0, frame=ack_frame(SENDERS[0]), rate_mbps=1.0)
        ]
        table = FrameTable.from_frames(frames)
        assert table.mask_ftypes({"QoS Data"}).sum() == 2
        assert table.mask_ftypes({"Beacon"}).sum() == 0
        assert table.sender_code(SENDERS[0]) == 0
        assert table.sender_code(SENDERS[3]) == -1

    def test_read_trace_table_matches_read_trace_pcap(self, tmp_path):
        from repro.radiotap.pcap import read_trace_pcap, read_trace_table, write_trace_pcap

        frames = self._frames([0.0, 100.0, 250.0]) + [
            CapturedFrame(timestamp_us=300.0, frame=ack_frame(SENDERS[0]), rate_mbps=1.0)
        ]
        path = tmp_path / "t.pcap"
        write_trace_pcap(path, frames)
        table = read_trace_table(path)
        assert table.to_frames() == read_trace_pcap(path)
        assert len(table) == 4
        assert table.sender_idx.tolist()[-1] == -1  # ACK stays sender-less

    def test_to_frames_requires_backing(self):
        table = FrameTable.from_frames(self._frames([0.0]))
        bare = FrameTable(
            timestamp_us=table.timestamp_us,
            size=table.size,
            rate_mbps=table.rate_mbps,
            sender_idx=table.sender_idx,
            ftype_idx=table.ftype_idx,
            senders=table.senders,
            ftype_keys=table.ftype_keys,
        )
        with pytest.raises(ValueError):
            bare.to_frames()


class TestColumnarDetectionEquivalence:
    @pytest.mark.parametrize("parameter", ALL_PARAMETERS, ids=lambda p: p.name)
    def test_window_candidates_match_object_path(
        self, small_office_trace, parameter
    ):
        builder = SignatureBuilder(parameter, min_observations=10)
        split = small_office_trace.split(30.0)
        database = ReferenceDatabase.from_training(builder, split.training.frames)
        table_db = ReferenceDatabase.from_training_table(
            builder, split.training.table()
        )
        assert database.devices == table_db.devices
        config = DetectionConfig(window_s=10.0, min_observations=10)
        reference = extract_window_candidates(
            split.validation, builder, database, config, columnar=False
        )
        columnar = extract_window_candidates(
            split.validation, builder, database, config, columnar=True
        )
        assert [(c.device, c.window_index) for c in reference] == [
            (c.device, c.window_index) for c in columnar
        ]
        for expected, actual in zip(reference, columnar):
            assert expected.similarities == actual.similarities
