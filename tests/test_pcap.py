"""Unit tests for the pcap container and trace persistence."""

from __future__ import annotations

import io
import struct

import pytest

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype, ack_frame
from repro.dot11.mac import MacAddress
from repro.radiotap.pcap import (
    LINKTYPE_IEEE802_11_RADIOTAP,
    PcapError,
    PcapReader,
    PcapWriter,
    read_trace_pcap,
    write_trace_pcap,
)

A = MacAddress.parse("00:13:e8:00:00:01")
B = MacAddress.parse("00:18:f8:00:00:02")


def _sample_frames(count: int = 5) -> list[CapturedFrame]:
    frames = []
    for index in range(count):
        frame = Dot11Frame(
            subtype=FrameSubtype.QOS_DATA,
            size=200 + index,
            addr1=B,
            addr2=A,
            addr3=B,
            seq=index,
        )
        frames.append(
            CapturedFrame(
                timestamp_us=1000.0 * (index + 1),
                frame=frame,
                rate_mbps=24.0,
                signal_dbm=-55.0,
                channel=6,
            )
        )
    return frames


class TestRawContainer:
    def test_global_header(self):
        buffer = io.BytesIO()
        PcapWriter(buffer).close()
        raw = buffer.getvalue()
        assert len(raw) == 24
        magic, major, minor = struct.unpack_from("<IHH", raw)
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)

    def test_record_round_trip(self):
        buffer = io.BytesIO()
        with PcapWriter(buffer) as writer:
            writer.write_record(1_500_000.0, b"abcdef")
            writer.write_record(2_500_000.0, b"xyz")
        reader = PcapReader(buffer.getvalue())
        records = list(reader)
        assert len(records) == 2
        assert records[0].data == b"abcdef"
        assert records[0].ts_sec == 1 and records[0].ts_usec == 500_000
        assert records[1].timestamp_us == pytest.approx(2_500_000.0)

    def test_linktype_recorded(self):
        buffer = io.BytesIO()
        PcapWriter(buffer, linktype=105).close()
        assert PcapReader(buffer.getvalue()).linktype == 105

    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(b"\x00" * 24)

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(b"\xd4\xc3\xb2\xa1")

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        with PcapWriter(buffer) as writer:
            writer.write_record(0.0, b"abcdef")
        raw = buffer.getvalue()[:-3]
        with pytest.raises(PcapError):
            list(PcapReader(raw))

    def test_negative_timestamp_rejected(self):
        writer = PcapWriter(io.BytesIO())
        with pytest.raises(PcapError):
            writer.write_record(-1.0, b"x")

    def test_snaplen_truncation(self):
        buffer = io.BytesIO()
        with PcapWriter(buffer, snaplen=4) as writer:
            writer.write_record(0.0, b"abcdefgh")
        record = next(iter(PcapReader(buffer.getvalue())))
        assert record.data == b"abcd"
        assert record.orig_len == 8


class TestTracePersistence:
    def test_round_trip(self):
        frames = _sample_frames()
        buffer = io.BytesIO()
        count = write_trace_pcap(buffer, frames)
        assert count == len(frames)
        back = read_trace_pcap(buffer.getvalue())
        assert len(back) == len(frames)
        for original, loaded in zip(frames, back):
            assert loaded.timestamp_us == pytest.approx(original.timestamp_us, abs=1.0)
            assert loaded.rate_mbps == original.rate_mbps
            assert loaded.sender == A
            assert loaded.size == original.size
            assert loaded.channel == original.channel

    def test_anonymous_frames_survive(self):
        frames = [
            CapturedFrame(timestamp_us=100.0, frame=ack_frame(A), rate_mbps=24.0)
        ]
        buffer = io.BytesIO()
        write_trace_pcap(buffer, frames)
        back = read_trace_pcap(buffer.getvalue())
        assert back[0].sender is None
        assert back[0].subtype is FrameSubtype.ACK

    def test_wrong_linktype_rejected(self):
        buffer = io.BytesIO()
        with PcapWriter(buffer, linktype=1) as writer:
            writer.write_record(0.0, b"\x00" * 20)
        with pytest.raises(PcapError):
            read_trace_pcap(buffer.getvalue())

    def test_file_round_trip(self, tmp_path):
        frames = _sample_frames(3)
        path = tmp_path / "capture.pcap"
        write_trace_pcap(path, frames)
        assert read_trace_pcap(path)[2].size == frames[2].size

    def test_linktype_constant(self):
        assert LINKTYPE_IEEE802_11_RADIOTAP == 127
