"""Tests for the on-disk database store and streaming checkpoints.

The two persistence contracts (DESIGN.md §5):

* ``load(save(db))`` restores the database bin for bin, the packed
  view equals a from-scratch rebuild, and match scores against the
  loaded database are **bitwise identical** (atol 0) — same float64
  matrices, same shapes, same products;
* a :class:`~repro.streaming.engine.StreamEngine` restored from a
  checkpoint and fed the remaining frames emits exactly the events an
  uninterrupted run produces.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dot11.mac import vendor_mac
from repro.core.database import PackedDatabase, ReferenceDatabase
from repro.core.matcher import batch_match_signatures
from repro.core.sharding import ShardedReferenceDatabase
from repro.core.parameters import InterArrivalTime, MediumAccessTime, ObservationStream
from repro.core.signature import Signature, SignatureBuilder
from repro.persistence import (
    database_info,
    load_database,
    save_database,
)
from repro.persistence.store import is_database_store
from repro.streaming import (
    CollectingSink,
    StreamEngine,
    StreamingSignatureBuilder,
    WindowConfig,
)
from tests.test_batch_matching import random_database, random_signature
from tests.test_database import assert_pack_equivalent


def assert_databases_equal(a: ReferenceDatabase, b: ReferenceDatabase) -> None:
    """Bin-for-bin equality, including device and frame-type structure."""
    assert a.devices == b.devices
    for (device_a, sig_a), (device_b, sig_b) in zip(a.items(), b.items()):
        assert device_a == device_b
        assert list(sig_a.histograms) == list(sig_b.histograms)
        for ftype in sig_a.histograms:
            assert np.array_equal(sig_a.histograms[ftype], sig_b.histograms[ftype])
        assert sig_a.weights == sig_b.weights
        assert sig_a.observation_counts == sig_b.observation_counts


class TestStoreRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        rng = np.random.default_rng(50)
        database = random_database(rng, devices=30)
        save_database(database, tmp_path / "store", parameter="interarrival")
        loaded = load_database(tmp_path / "store")
        assert loaded.parameter == "interarrival"
        assert loaded.layout == "packed"
        assert_databases_equal(database, loaded.database)

    def test_match_scores_bitwise_identical(self, tmp_path):
        rng = np.random.default_rng(51)
        database = random_database(rng, devices=40)
        candidates = [random_signature(rng) for _ in range(20)]
        reference = batch_match_signatures(candidates, database)
        save_database(database, tmp_path / "store")
        loaded = load_database(tmp_path / "store").database
        assert np.array_equal(
            batch_match_signatures(candidates, loaded), reference
        )  # atol 0, bit for bit

    def test_loaded_pack_equals_fresh_rebuild_without_repack(self, tmp_path):
        rng = np.random.default_rng(52)
        database = random_database(rng, devices=25)
        save_database(database, tmp_path / "store")
        loaded = load_database(tmp_path / "store").database
        packed = loaded.packed()
        rebuilt = PackedDatabase.from_signatures(loaded.items())
        assert packed.devices == rebuilt.devices
        assert packed.frame_types == rebuilt.frame_types  # order preserved
        for ftype in rebuilt.frame_types:
            assert np.array_equal(packed.frequencies[ftype], rebuilt.frequencies[ftype])
            assert np.array_equal(packed.weights[ftype], rebuilt.weights[ftype])
            assert np.array_equal(packed.normalized[ftype], rebuilt.normalized[ftype])

    def test_loaded_database_stays_mutable_and_consistent(self, tmp_path):
        rng = np.random.default_rng(53)
        database = random_database(rng, devices=12)
        save_database(database, tmp_path / "store")
        loaded = load_database(tmp_path / "store").database
        loaded.add(vendor_mac("00:18:f8", 99), random_signature(rng))
        loaded.remove(loaded.devices[0])
        loaded.add(loaded.devices[1], random_signature(rng))
        assert_pack_equivalent(loaded)

    def test_empty_database(self, tmp_path):
        save_database(ReferenceDatabase(), tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        assert len(loaded.database) == 0
        assert loaded.database.packed() is None

    def test_ragged_database_round_trips(self, tmp_path):
        database = ReferenceDatabase()
        narrow, wide = np.zeros(4), np.zeros(9)
        narrow[1] = 1.0
        wide[5] = 1.0
        database.add(
            vendor_mac("00:13:e8", 1),
            Signature({"Data": narrow}, {"Data": 1.0}, {"Data": 60}),
        )
        database.add(
            vendor_mac("00:13:e8", 2),
            Signature({"Data": wide}, {"Data": 1.0}, {"Data": 70}),
        )
        assert database.packed() is None
        save_database(database, tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        assert loaded.layout == "ragged"
        assert_databases_equal(database, loaded.database)
        assert loaded.database.packed() is None

    def test_signature_without_observation_counts(self, tmp_path):
        database = ReferenceDatabase()
        histogram = np.zeros(5)
        histogram[0] = 1.0
        database.add(
            vendor_mac("00:13:e8", 1), Signature({"Data": histogram}, {"Data": 1.0})
        )
        save_database(database, tmp_path / "store")
        loaded = load_database(tmp_path / "store").database
        assert_databases_equal(database, loaded)

    def test_sharded_rebuild_from_loaded_store(self, tmp_path):
        """A loaded store reshards deterministically (pure MAC hash)."""
        rng = np.random.default_rng(54)
        database = random_database(rng, devices=30)
        save_database(database, tmp_path / "store")
        loaded = load_database(tmp_path / "store").database
        a = ShardedReferenceDatabase.from_database(database, 4)
        b = ShardedReferenceDatabase.from_database(loaded, 4)
        assert a.shard_sizes() == b.shard_sizes()
        assert [shard.devices for shard in a.shards] == [
            shard.devices for shard in b.shards
        ]


class TestStoreFormat:
    def test_is_database_store(self, tmp_path):
        assert not is_database_store(tmp_path / "nope")
        save_database(ReferenceDatabase(), tmp_path / "store")
        assert is_database_store(tmp_path / "store")

    def test_info_without_loading(self, tmp_path):
        rng = np.random.default_rng(55)
        save_database(
            random_database(rng, devices=8), tmp_path / "store", parameter="size"
        )
        info = database_info(tmp_path / "store")
        assert info["device_count"] == 8
        assert info["parameter"] == "size"
        assert info["layout"] == "packed"
        assert info["total_bytes"] > 0

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_database(tmp_path / "absent")

    def test_unknown_version_rejected(self, tmp_path):
        rng = np.random.default_rng(56)
        save_database(random_database(rng, devices=2), tmp_path / "store")
        meta_path = tmp_path / "store" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="version"):
            load_database(tmp_path / "store")

    def test_unknown_format_rejected(self, tmp_path):
        rng = np.random.default_rng(57)
        save_database(random_database(rng, devices=2), tmp_path / "store")
        meta_path = tmp_path / "store" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = "something-else"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format"):
            load_database(tmp_path / "store")

    def test_sidecar_device_count_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(58)
        save_database(random_database(rng, devices=3), tmp_path / "store")
        sidecar = tmp_path / "store" / "devices.jsonl"
        lines = sidecar.read_text().splitlines()
        sidecar.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="sidecar"):
            load_database(tmp_path / "store")


def make_engine(parameter, database, sink, window_s=10.0):
    return StreamEngine(
        lambda: StreamingSignatureBuilder(parameter, min_observations=30),
        database=database,
        window=WindowConfig(window_s=window_s),
        sinks=[sink],
    )


class TestStreamCheckpoint:
    @pytest.fixture(scope="class")
    def setting(self, small_office_trace):
        frames = small_office_trace.frames
        parameter = InterArrivalTime()
        builder = SignatureBuilder(parameter, min_observations=30)
        database = ReferenceDatabase.from_training(
            builder, frames[: len(frames) // 2]
        )
        return frames, parameter, database

    @pytest.mark.parametrize("fraction", [0.1, 0.4, 0.73])
    def test_resume_reproduces_uninterrupted_run(self, tmp_path, setting, fraction):
        frames, parameter, database = setting
        whole_sink = CollectingSink()
        whole = make_engine(parameter, database, whole_sink)
        whole.run(frames)

        cut = int(len(frames) * fraction)
        first_sink = CollectingSink()
        first = make_engine(parameter, database, first_sink)
        for frame in frames[:cut]:
            first.process_frame(frame)
        checkpoint = first.checkpoint(tmp_path / "ck.json")

        second_sink = CollectingSink()
        second = make_engine(parameter, database, second_sink)
        second.restore(checkpoint)
        for frame in frames[cut:]:
            second.process_frame(frame)
        second.flush()

        assert first_sink.events + second_sink.events == whole_sink.events
        assert second.stats == whole.stats

    def test_generic_extractor_state_round_trips(self, tmp_path, setting):
        """The base ObservationStream remembers its predecessor frame;
        the checkpoint embeds that frame and restores it exactly."""
        frames, _, _ = setting

        class GenericAccess(MediumAccessTime):
            def online(self):
                return ObservationStream(self)

        parameter = GenericAccess()
        whole_sink = CollectingSink()
        whole = make_engine(parameter, None, whole_sink)
        whole.run(frames)

        cut = len(frames) // 3
        first_sink = CollectingSink()
        first = make_engine(parameter, None, first_sink)
        for frame in frames[:cut]:
            first.process_frame(frame)
        checkpoint = first.checkpoint(tmp_path / "ck.json")
        second_sink = CollectingSink()
        second = make_engine(parameter, None, second_sink)
        second.restore(checkpoint)
        for frame in frames[cut:]:
            second.process_frame(frame)
        second.flush()
        assert first_sink.events + second_sink.events == whole_sink.events
        assert second.stats == whole.stats

    def test_config_mismatch_rejected(self, tmp_path, setting):
        frames, parameter, database = setting
        engine = make_engine(parameter, database, CollectingSink())
        for frame in frames[:200]:
            engine.process_frame(frame)
        checkpoint = engine.checkpoint(tmp_path / "ck.json")
        other = make_engine(parameter, database, CollectingSink(), window_s=20.0)
        with pytest.raises(ValueError, match="window config"):
            other.restore(checkpoint)

    def test_builder_config_mismatch_rejected(self, tmp_path, setting):
        frames, parameter, database = setting
        engine = make_engine(parameter, database, CollectingSink())
        for frame in frames[:500]:
            engine.process_frame(frame)
        checkpoint = engine.checkpoint(tmp_path / "ck.json")
        other = StreamEngine(
            lambda: StreamingSignatureBuilder(parameter, min_observations=7),
            database=database,
            window=WindowConfig(window_s=10.0),
        )
        with pytest.raises(ValueError, match="min_observations"):
            other.restore(checkpoint)

    def test_not_a_checkpoint_rejected(self, tmp_path, setting):
        _, parameter, database = setting
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "something"}')
        engine = make_engine(parameter, database, CollectingSink())
        with pytest.raises(ValueError, match="checkpoint"):
            engine.restore(bogus)

    def test_checkpoint_before_first_frame(self, tmp_path, setting):
        frames, parameter, database = setting
        engine = make_engine(parameter, database, CollectingSink())
        checkpoint = engine.checkpoint(tmp_path / "ck.json")
        sink = CollectingSink()
        resumed = make_engine(parameter, database, sink)
        resumed.restore(checkpoint)
        resumed.run(frames[:500])
        assert resumed.stats.frames == 500
