"""Tests for the reference database and its incremental packed view.

The incremental pack (capacity-doubling buffers, per-row updates on
``add``/``remove``) must stay numerically identical to a from-scratch
:meth:`PackedDatabase.from_signatures` rebuild after any mutation
sequence, including frame-type purges and ragged transitions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dot11.mac import vendor_mac
from repro.core.database import PackedDatabase, ReferenceDatabase
from repro.core.signature import Signature
from tests.test_batch_matching import random_database, random_signature


def assert_pack_equivalent(database: ReferenceDatabase) -> None:
    """The live pack must equal a full rebuild from the signatures."""
    incremental = database.packed()
    if len(database) == 0:
        assert incremental is None  # empty databases never pack
        return
    rebuilt = PackedDatabase.from_signatures(list(database.items()))
    if rebuilt is None:
        assert incremental is None
        return
    assert incremental is not None
    assert incremental.devices == rebuilt.devices
    assert set(incremental.frame_types) == set(rebuilt.frame_types)
    for ftype in rebuilt.frame_types:
        np.testing.assert_allclose(
            incremental.frequencies[ftype], rebuilt.frequencies[ftype], atol=1e-12
        )
        np.testing.assert_allclose(
            incremental.weights[ftype], rebuilt.weights[ftype], atol=1e-12
        )
        np.testing.assert_allclose(
            incremental.normalized[ftype], rebuilt.normalized[ftype], atol=1e-12
        )


def one_type_signature(ftype: str, bins: int) -> Signature:
    histogram = np.zeros(bins)
    histogram[0] = 1.0
    return Signature(histograms={ftype: histogram}, weights={ftype: 1.0})


class TestRemove:
    def test_remove_known_device_returns_true(self):
        rng = np.random.default_rng(10)
        database = random_database(rng, devices=3)
        victim = database.devices[1]
        assert database.remove(victim) is True
        assert victim not in database
        assert len(database) == 2

    def test_remove_unknown_device_is_a_noop(self):
        rng = np.random.default_rng(11)
        database = random_database(rng, devices=3)
        before = list(database.devices)
        assert database.remove(vendor_mac("00:13:e8", 999)) is False
        assert list(database.devices) == before
        assert_pack_equivalent(database)


class TestIncrementalPack:
    def test_random_mutation_sequence_stays_equivalent(self):
        rng = np.random.default_rng(12)
        database = ReferenceDatabase()
        pool = [vendor_mac("00:13:e8", i + 1) for i in range(25)]
        database.packed()  # start from the (empty) incremental path
        for _ in range(120):
            action = rng.random()
            device = pool[int(rng.integers(len(pool)))]
            if action < 0.6:
                database.add(device, random_signature(rng))  # add or replace
            else:
                database.remove(device)  # may be a no-op
            assert_pack_equivalent(database)

    def test_add_preserves_insertion_order_and_grows(self):
        rng = np.random.default_rng(13)
        database = ReferenceDatabase()
        devices = [vendor_mac("00:13:e8", i + 1) for i in range(40)]
        for device in devices:
            database.add(device, random_signature(rng))
            packed = database.packed()
            assert list(packed.devices) == database.devices
        assert database.packed().devices == tuple(devices)

    def test_replacement_updates_row_in_place(self):
        rng = np.random.default_rng(14)
        database = random_database(rng, devices=5)
        database.packed()
        target = database.devices[2]
        replacement = random_signature(rng)
        database.add(target, replacement)
        packed = database.packed()
        assert packed.devices == tuple(database.devices)  # position kept
        for ftype, histogram in replacement.histograms.items():
            np.testing.assert_allclose(packed.frequencies[ftype][2], histogram)
        assert_pack_equivalent(database)

    def test_removing_last_member_purges_frame_type(self):
        database = ReferenceDatabase()
        a = vendor_mac("00:13:e8", 1)
        b = vendor_mac("00:13:e8", 2)
        database.add(a, one_type_signature("Data", 4))
        database.add(b, one_type_signature("Beacon", 4))
        database.packed()
        database.remove(b)
        packed = database.packed()
        assert set(packed.frame_types) == {"Data"}
        # A later re-add may use a *different* bin count for the purged
        # type without making the pack ragged.
        database.add(b, one_type_signature("Beacon", 9))
        assert database.packed() is not None
        assert_pack_equivalent(database)

    def test_ragged_add_and_recovery_via_remove(self):
        database = ReferenceDatabase()
        a = vendor_mac("00:13:e8", 1)
        offender = vendor_mac("00:13:e8", 2)
        database.add(a, one_type_signature("Data", 4))
        assert database.packed() is not None
        database.add(offender, one_type_signature("Data", 7))
        assert database.packed() is None  # ragged
        assert database.remove(offender) is True
        packed = database.packed()  # full rebuild resolves the conflict
        assert packed is not None and packed.devices == (a,)
        assert_pack_equivalent(database)

    def test_empty_database_packs_to_none_after_removals(self):
        database = ReferenceDatabase()
        device = vendor_mac("00:13:e8", 1)
        database.add(device, one_type_signature("Data", 4))
        database.packed()
        database.remove(device)
        assert database.packed() is None
        database.add(device, one_type_signature("Data", 4))
        assert database.packed() is not None


class TestSnapshotIteration:
    """``devices``/``items()`` snapshot, so mutation mid-iteration is safe."""

    def test_items_allows_mutation_while_iterating(self):
        rng = np.random.default_rng(16)
        database = random_database(rng, devices=10)
        seen = []
        for device, signature in database.items():
            seen.append(device)
            database.remove(device)  # would blow up on a live dict view
            database.add(vendor_mac("00:18:f8", len(seen)), signature)
        assert len(seen) == 10

    def test_devices_allows_mutation_while_iterating(self):
        rng = np.random.default_rng(17)
        database = random_database(rng, devices=8)
        for device in database.devices:
            database.remove(device)
        assert len(database) == 0

    def test_items_returns_insertion_ordered_list(self):
        rng = np.random.default_rng(18)
        database = random_database(rng, devices=5)
        items = database.items()
        assert isinstance(items, list)
        assert [device for device, _ in items] == database.devices


class TestMerge:
    def test_replace_policy_reports_conflicts(self):
        rng = np.random.default_rng(19)
        target = random_database(rng, devices=6)
        source = ReferenceDatabase()
        conflicting = target.devices[2]
        fresh = vendor_mac("00:18:f8", 50)
        replacement = random_signature(rng)
        source.add(conflicting, replacement)
        source.add(fresh, random_signature(rng))
        report = target.merge(source)
        assert report.added == [fresh]
        assert report.replaced == [conflicting]
        assert report.skipped == []
        assert report.conflicts == 1 and bool(report)
        assert target.get(conflicting) is replacement
        assert target.devices.index(conflicting) == 2  # row position kept
        assert target.devices[-1] == fresh
        assert_pack_equivalent(target)

    def test_keep_policy_preserves_existing_signatures(self):
        rng = np.random.default_rng(20)
        target = random_database(rng, devices=4)
        kept = target.get(target.devices[0])
        source = ReferenceDatabase()
        source.add(target.devices[0], random_signature(rng))
        report = target.merge(source, on_conflict="keep")
        assert report.skipped == [target.devices[0]]
        assert not report.added and not report.replaced
        assert not bool(report)  # nothing changed
        assert target.get(target.devices[0]) is kept

    def test_error_policy_raises_before_mutating(self):
        rng = np.random.default_rng(21)
        target = random_database(rng, devices=4)
        before = {device: target.get(device) for device in target.devices}
        source = ReferenceDatabase()
        source.add(vendor_mac("00:18:f8", 60), random_signature(rng))
        source.add(target.devices[1], random_signature(rng))
        with pytest.raises(ValueError, match="conflict"):
            target.merge(source, on_conflict="error")
        assert {device: target.get(device) for device in target.devices} == before

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ReferenceDatabase().merge(ReferenceDatabase(), on_conflict="bogus")

    def test_merge_of_disjoint_databases_concatenates(self):
        rng = np.random.default_rng(22)
        target = random_database(rng, devices=3)
        source = ReferenceDatabase()
        extras = [vendor_mac("00:18:f8", i + 1) for i in range(3)]
        for device in extras:
            source.add(device, random_signature(rng))
        report = target.merge(source)
        assert report.added == extras and not report.conflicts
        assert target.devices[-3:] == extras
        assert_pack_equivalent(target)

    def test_merge_keeps_scores_equal_to_sequential_adds(self):
        from repro.core.matcher import batch_match_signatures

        rng = np.random.default_rng(23)
        a = random_database(rng, devices=5)
        b = random_database(rng, devices=5)
        merged = ReferenceDatabase()
        merged.merge(a)
        merged.merge(b)
        sequential = ReferenceDatabase()
        for device, signature in a.items() + b.items():
            sequential.add(device, signature)
        candidate = random_signature(rng)
        assert np.array_equal(
            batch_match_signatures([candidate], merged),
            batch_match_signatures([candidate], sequential),
        )


class TestMatchingAfterMutations:
    def test_match_scores_track_membership_changes(self):
        from repro.core.matcher import _scalar_match, match_signature
        from repro.core.similarity import cosine_similarity

        rng = np.random.default_rng(15)
        database = random_database(rng, devices=10)
        candidate = random_signature(rng)
        for step in range(20):
            device = vendor_mac("00:13:e8", int(rng.integers(1, 15)))
            if rng.random() < 0.5:
                database.add(device, random_signature(rng))
            else:
                database.remove(device)
            if len(database) == 0:
                continue
            fast = match_signature(candidate, database)
            slow = _scalar_match(candidate, database, cosine_similarity)
            assert list(fast) == list(slow)
            np.testing.assert_allclose(
                list(fast.values()), list(slow.values()), atol=1e-9
            )

    def test_stale_candidate_type_after_purge_contributes_zero(self):
        """A purged frame type must not shape-clash with candidates."""
        database = ReferenceDatabase()
        a = vendor_mac("00:13:e8", 1)
        b = vendor_mac("00:13:e8", 2)
        database.add(a, one_type_signature("Data", 4))
        database.add(b, one_type_signature("Beacon", 6))
        database.packed()
        database.remove(b)
        from repro.core.matcher import batch_match_signatures, match_signature

        candidate = one_type_signature("Beacon", 3)  # different width
        scores = match_signature(candidate, database)
        assert scores == {a: 0.0}
        matrix = batch_match_signatures([candidate], database)
        assert matrix.shape == (1, 1) and matrix[0, 0] == 0.0
