"""Shared fixtures: small deterministic scenarios and traces."""

from __future__ import annotations

import pytest

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress, vendor_mac
from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic
from repro.traces.trace import Trace


@pytest.fixture(scope="session")
def small_office_result():
    """A 90-second three-station encrypted office simulation."""
    scenario = Scenario(duration_s=90.0, seed=5, encrypted=True)
    scenario.add_station(
        StationSpec(
            name="alice",
            profile="intel-2200bg-linux",
            sources=[CbrTraffic(interval_ms=30)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="bob",
            profile="broadcom-4318-win",
            sources=[WebTraffic(mean_think_s=3.0)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="carol",
            profile="atheros-ar5212-madwifi",
            sources=[CbrTraffic(interval_ms=60)],
        )
    )
    return scenario.run()


@pytest.fixture(scope="session")
def small_office_trace(small_office_result) -> Trace:
    """The small office simulation as a Trace."""
    return Trace(
        frames=small_office_result.captures,
        name="small-office",
        encrypted=True,
        device_names=small_office_result.station_names,
    )


@pytest.fixture()
def mac_a() -> MacAddress:
    return vendor_mac("00:13:e8", 1)


@pytest.fixture()
def mac_b() -> MacAddress:
    return vendor_mac("00:18:f8", 2)


def make_data_capture(
    timestamp_us: float,
    sender: MacAddress,
    receiver: MacAddress,
    size: int = 1500,
    rate: float = 54.0,
    subtype: FrameSubtype = FrameSubtype.QOS_DATA,
    retry: bool = False,
) -> CapturedFrame:
    """Helper: one attributable captured frame."""
    frame = Dot11Frame(
        subtype=subtype,
        size=size,
        addr1=receiver,
        addr2=sender,
        addr3=receiver,
        retry=retry,
    )
    return CapturedFrame(timestamp_us=timestamp_us, frame=frame, rate_mbps=rate)
