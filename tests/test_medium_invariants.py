"""Stress-level invariants of the DCF medium under load."""

from __future__ import annotations

import pytest

from repro.dot11.frames import FrameSubtype
from repro.dot11.phy import frame_airtime_us
from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic


@pytest.fixture(scope="module")
def loaded_channel():
    """Eight saturating stations on one channel for 8 seconds."""
    scenario = Scenario(duration_s=8.0, seed=99)
    profiles = [
        "intel-2200bg-linux",
        "broadcom-4318-win",
        "atheros-ar5212-madwifi",
        "ralink-rt2500-linux",
        "apple-bcm4321-osx",
        "samsung-mobile",
        "realtek-rtl8187-linux",
        "intel-3945abg-win",
    ]
    for index, profile in enumerate(profiles):
        scenario.add_station(
            StationSpec(
                name=f"station-{index}",
                profile=profile,
                sources=[CbrTraffic(interval_ms=4), WebTraffic(mean_think_s=1.0)],
            )
        )
    return scenario.run()


class TestMediumInvariants:
    def test_timestamps_monotone(self, loaded_channel):
        times = [c.timestamp_us for c in loaded_channel.captures]
        assert times == sorted(times)

    def test_no_overlapping_airtime(self, loaded_channel):
        """Captured frames never overlap on air: each frame's start
        (end − airtime) is at or after the previous frame's end, up to
        the sub-µs tolerance of airtime reconstruction."""
        previous_end = 0.0
        for captured in loaded_channel.captures:
            start = captured.timestamp_us - frame_airtime_us(
                captured.size, captured.rate_mbps
            )
            assert start >= previous_end - 200.0  # long-preamble slack
            previous_end = captured.timestamp_us

    def test_all_senders_transmit(self, loaded_channel):
        senders = {c.sender for c in loaded_channel.captures if c.sender}
        # 8 stations + 1 AP.
        assert len(senders) == 9

    def test_acks_follow_unicast_data(self, loaded_channel):
        """Most unicast data frames are followed by an ACK (channel
        errors may drop a few)."""
        captures = loaded_channel.captures
        data_count = 0
        acked = 0
        for index, captured in enumerate(captures[:-1]):
            if (
                captured.frame.is_data
                and not captured.frame.addr1.is_multicast
                and not captured.frame.is_null_function
            ):
                data_count += 1
                acked += captures[index + 1].subtype is FrameSubtype.ACK
        assert data_count > 100
        assert acked / data_count > 0.5

    def test_contention_produces_collisions(self, loaded_channel):
        assert loaded_channel.collision_rounds > 0
        # But collisions stay a small fraction of exchanges.
        assert loaded_channel.collision_rounds < loaded_channel.exchange_count * 0.25

    def test_retry_bit_appears_under_load(self, loaded_channel):
        retries = [c for c in loaded_channel.captures if c.frame.retry]
        assert retries
