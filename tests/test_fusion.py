"""Direct unit tests for multi-parameter fusion (``core/fusion.py``).

Previously only exercised indirectly through the pipeline tests and
the extension benchmark; these pin the public surface —
``FusionMatcher.learn/extract/match/identify`` and
``FusedSignature.parameter_names`` — including the weight-normalisation
and error paths.
"""

from __future__ import annotations

import pytest

from repro.core.fusion import FusedSignature, FusionMatcher
from repro.core.matcher import match_signature
from repro.core.parameters import FrameSize, InterArrivalTime
from repro.core.signature import SignatureBuilder


@pytest.fixture(scope="module")
def split_frames(small_office_trace):
    frames = small_office_trace.frames
    half = len(frames) // 2
    return frames[:half], frames[half:]


@pytest.fixture(scope="module")
def learnt_matcher(split_frames):
    training, _ = split_frames
    matcher = FusionMatcher(
        [InterArrivalTime(), FrameSize()], min_observations=30
    )
    matcher.learn(training)
    return matcher


class TestConstruction:
    def test_needs_at_least_one_parameter(self):
        with pytest.raises(ValueError, match="at least one"):
            FusionMatcher([])

    def test_default_weights_are_uniform(self):
        matcher = FusionMatcher([InterArrivalTime(), FrameSize()])
        assert matcher.weights == {
            "interarrival": pytest.approx(0.5),
            "size": pytest.approx(0.5),
        }

    def test_weights_normalised_to_unit_sum(self):
        matcher = FusionMatcher(
            [InterArrivalTime(), FrameSize()],
            weights={"interarrival": 3.0, "size": 1.0},
        )
        assert matcher.weights["interarrival"] == pytest.approx(0.75)
        assert matcher.weights["size"] == pytest.approx(0.25)

    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError, match="missing fusion weights"):
            FusionMatcher(
                [InterArrivalTime(), FrameSize()], weights={"size": 1.0}
            )

    def test_non_positive_weight_sum_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            FusionMatcher(
                [InterArrivalTime(), FrameSize()],
                weights={"interarrival": 0.0, "size": 0.0},
            )


class TestFusedSignature:
    def test_parameter_names(self, learnt_matcher, split_frames):
        _, validation = split_frames
        fused = learnt_matcher.extract(validation)
        assert fused  # the office trace has active devices
        for signature in fused.values():
            assert signature.parameter_names == set(signature.per_parameter)
            assert signature.parameter_names <= {"interarrival", "size"}

    def test_empty_fused_signature(self):
        assert FusedSignature().parameter_names == set()


class TestLearnAndExtract:
    def test_learn_populates_per_parameter_databases(self, learnt_matcher):
        assert learnt_matcher.devices  # union over parameter databases
        for name in ("interarrival", "size"):
            database = learnt_matcher._databases[name]
            assert set(database.devices) <= learnt_matcher.devices

    def test_extract_agrees_with_plain_builders(
        self, learnt_matcher, split_frames
    ):
        _, validation = split_frames
        fused = learnt_matcher.extract(validation)
        for parameter in learnt_matcher.parameters:
            expected = SignatureBuilder(parameter, min_observations=30).build(
                validation
            )
            got = {
                device: signature.per_parameter[parameter.name]
                for device, signature in fused.items()
                if parameter.name in signature.per_parameter
            }
            assert set(got) == set(expected)


class TestMatchAndIdentify:
    def test_match_before_learn_raises(self):
        matcher = FusionMatcher([InterArrivalTime()])
        with pytest.raises(RuntimeError, match="before learn"):
            matcher.match(FusedSignature())

    def test_match_is_weighted_sum_of_single_parameter_scores(
        self, learnt_matcher, split_frames
    ):
        _, validation = split_frames
        fused = learnt_matcher.extract(validation)
        device, signature = next(iter(fused.items()))
        combined = learnt_matcher.match(signature)
        assert set(combined) == learnt_matcher.devices
        for reference in learnt_matcher.devices:
            expected = 0.0
            for name, single in signature.per_parameter.items():
                scores = match_signature(
                    single, learnt_matcher._databases[name]
                )
                expected += learnt_matcher.weights[name] * scores.get(
                    reference, 0.0
                )
            assert combined[reference] == pytest.approx(expected, abs=1e-12)

    def test_self_identification_on_office_trace(
        self, learnt_matcher, split_frames
    ):
        """Fused fingerprints identify the office devices as themselves."""
        _, validation = split_frames
        fused = learnt_matcher.extract(validation)
        correct = total = 0
        for device, signature in fused.items():
            if device not in learnt_matcher.devices:
                continue
            winner, score = learnt_matcher.identify(signature)
            total += 1
            correct += winner == device
            assert 0.0 <= score <= 1.0 + 1e-9
        assert total > 0
        assert correct == total  # static office devices: clean self-match

    def test_identify_on_empty_candidate(self, learnt_matcher):
        winner, score = learnt_matcher.identify(FusedSignature())
        # No parameters to score: every reference ties at 0, so some
        # reference is returned with a zero combined similarity.
        assert score == 0.0
        assert winner in learnt_matcher.devices

    def test_identify_with_no_references(self, split_frames):
        matcher = FusionMatcher([InterArrivalTime()], min_observations=30)
        matcher.learn([])  # nothing to learn from
        winner, score = matcher.identify(FusedSignature())
        assert winner is None and score == 0.0
