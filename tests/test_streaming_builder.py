"""Streaming/batch equivalence for the online signature builder.

The tentpole invariant (mirroring ``tests/test_batch_matching.py``):
:class:`StreamingSignatureBuilder` fed frame-by-frame with decay off
must match :meth:`SignatureBuilder.build` bin-for-bin (atol 1e-9) on
the same frames — same devices, same frame types, same histograms,
weights and observation counts — for every network parameter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import FrameSubtype, ack_frame
from repro.dot11.mac import MacAddress, vendor_mac
from repro.core.parameters import ALL_PARAMETERS, InterArrivalTime
from repro.core.signature import SignatureBuilder
from repro.streaming.builder import StreamingSignatureBuilder
from tests.conftest import make_data_capture

AP = MacAddress.parse("00:0f:b5:00:00:01")


def random_frames(
    rng: np.random.Generator, count: int = 400, senders: int = 5
) -> list[CapturedFrame]:
    """A synthetic capture: mixed sizes/rates/subtypes, ACK gaps."""
    population = [vendor_mac("00:13:e8", i + 1) for i in range(senders)]
    rates = (1.0, 2.0, 5.5, 11.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0)
    frames: list[CapturedFrame] = []
    t = 1000.0
    for _ in range(count):
        t += float(rng.integers(5, 3000))
        sender = population[int(rng.integers(senders))]
        if rng.random() < 0.2:
            # Unattributable ACK: no observation, advances the clock.
            frames.append(
                CapturedFrame(timestamp_us=t, frame=ack_frame(sender), rate_mbps=24.0)
            )
            continue
        subtype = (
            FrameSubtype.QOS_DATA if rng.random() < 0.7 else FrameSubtype.BEACON
        )
        frames.append(
            make_data_capture(
                t,
                sender,
                AP,
                size=int(rng.integers(60, 2000)),
                rate=float(rates[int(rng.integers(len(rates)))]),
                subtype=subtype,
            )
        )
    return frames


def assert_signatures_equal(batch: dict, streamed: dict) -> None:
    assert set(batch) == set(streamed)
    for device, expected in batch.items():
        actual = streamed[device]
        assert expected.frame_types == actual.frame_types
        for ftype in expected.frame_types:
            np.testing.assert_allclose(
                actual.histograms[ftype], expected.histograms[ftype], atol=1e-9
            )
            assert actual.weight(ftype) == pytest.approx(
                expected.weight(ftype), abs=1e-9
            )
        assert actual.observation_counts == expected.observation_counts


class TestBatchEquivalence:
    def test_property_random_streams_match_batch(self):
        """Property sweep: random captures × all five parameters."""
        rng = np.random.default_rng(77)
        for round_index in range(5):
            frames = random_frames(rng, count=300 + 50 * round_index)
            for parameter in ALL_PARAMETERS:
                batch = SignatureBuilder(parameter, min_observations=10).build(frames)
                online = StreamingSignatureBuilder(parameter, min_observations=10)
                for frame in frames:
                    online.update(frame)
                assert_signatures_equal(batch, online.signatures())

    def test_simulated_capture_matches_batch(self, small_office_trace):
        for parameter in ALL_PARAMETERS:
            batch = SignatureBuilder(parameter, min_observations=30).build(
                small_office_trace.frames
            )
            online = StreamingSignatureBuilder(parameter, min_observations=30)
            for frame in small_office_trace.frames:
                online.update(frame)
            assert_signatures_equal(batch, online.signatures())

    def test_gating_matches_batch(self):
        """Devices straddling the min-observation gate agree."""
        rng = np.random.default_rng(78)
        frames = random_frames(rng, count=120, senders=8)
        parameter = InterArrivalTime()
        for gate in (1, 5, 20, 1000):
            batch = SignatureBuilder(parameter, min_observations=gate).build(frames)
            online = StreamingSignatureBuilder(parameter, min_observations=gate)
            for frame in frames:
                online.update(frame)
            assert_signatures_equal(batch, online.signatures())


class TestDecay:
    def test_half_life_halves_the_mass(self):
        builder = StreamingSignatureBuilder(
            InterArrivalTime(), min_observations=1, decay_half_life_s=10.0
        )
        device = vendor_mac("00:13:e8", 1)
        t = 0.0
        for _ in range(50):
            t += 500.0
            builder.update(make_data_capture(t, device, AP))
        mass_now = builder.observation_mass(device, now_us=t)
        mass_later = builder.observation_mass(device, now_us=t + 10.0 * 1e6)
        assert mass_later == pytest.approx(mass_now / 2.0, rel=1e-9)
        # Omitting now_us anchors at the device's last update — the
        # deflated mass, never the raw inflated counters.
        assert builder.observation_mass(device) == pytest.approx(mass_now, rel=1e-9)

    def test_decay_shifts_weight_to_recent_behaviour(self):
        """After several half-lives, old behaviour barely registers."""
        builder = StreamingSignatureBuilder(
            InterArrivalTime(), min_observations=1, decay_half_life_s=5.0
        )
        device = vendor_mac("00:13:e8", 1)
        # Phase 1: tight 100 µs inter-arrivals.
        t = 0.0
        for _ in range(200):
            t += 100.0
            builder.update(make_data_capture(t, device, AP))
        # Phase 2 (40 half-lives later): 2000 µs inter-arrivals.
        t += 200.0 * 1e6
        builder.update(make_data_capture(t, device, AP))
        for _ in range(200):
            t += 2000.0
            builder.update(make_data_capture(t, device, AP))
        signature = builder.signature(device)
        assert signature is not None
        bins = builder.bins
        histogram = signature.histograms["QoS Data"]
        old_bin = bins.index(100.0)
        new_bin = bins.index(2000.0)
        assert histogram[new_bin] > 0.99
        assert histogram[old_bin] < 1e-6

    def test_decayed_mass_can_fall_below_the_gate(self):
        builder = StreamingSignatureBuilder(
            InterArrivalTime(), min_observations=30, decay_half_life_s=1.0
        )
        device = vendor_mac("00:13:e8", 1)
        t = 0.0
        for _ in range(60):
            t += 200.0
            builder.update(make_data_capture(t, device, AP))
        assert builder.signature(device, now_us=t) is not None
        assert builder.signature(device, now_us=t + 60.0 * 1e6) is None

    def test_rebase_keeps_numbers_stable_on_long_streams(self):
        """Inflated weights are rebased, not overflowed."""
        builder = StreamingSignatureBuilder(
            InterArrivalTime(), min_observations=1, decay_half_life_s=0.001
        )
        device = vendor_mac("00:13:e8", 1)
        t = 0.0
        for _ in range(3000):
            t += 300.0
            builder.update(make_data_capture(t, device, AP))
        signature = builder.signature(device)
        assert signature is not None
        for histogram in signature.histograms.values():
            assert np.isfinite(histogram).all()
        assert builder.observation_mass(device, now_us=t) > 0

    def test_invalid_half_life_rejected(self):
        with pytest.raises(ValueError):
            StreamingSignatureBuilder(InterArrivalTime(), decay_half_life_s=0.0)


class TestResidency:
    def test_evict_and_resident_count(self):
        builder = StreamingSignatureBuilder(InterArrivalTime(), min_observations=1)
        a = vendor_mac("00:13:e8", 1)
        b = vendor_mac("00:13:e8", 2)
        builder.update(make_data_capture(1000.0, a, AP))
        builder.update(make_data_capture(1500.0, a, AP))
        builder.update(make_data_capture(2000.0, b, AP))
        assert builder.resident_count == 2
        assert builder.evict(a) is True
        assert builder.evict(a) is False
        assert builder.resident_count == 1
        assert builder.signature(a) is None

    def test_evict_idle_drops_only_stale_devices(self):
        from repro.core.parameters import FrameSize

        # Frame size keeps every attributed observation, so the idle
        # device retains state across the long gaps below.
        builder = StreamingSignatureBuilder(FrameSize(), min_observations=1)
        a = vendor_mac("00:13:e8", 1)
        b = vendor_mac("00:13:e8", 2)
        builder.update(make_data_capture(1000.0, a, AP))
        builder.update(make_data_capture(1200.0, a, AP))
        t = 1200.0
        for _ in range(20):
            t += 1.0 * 1e6
            builder.update(make_data_capture(t, b, AP))
        victims = builder.evict_idle(now_us=t, idle_timeout_s=5.0)
        assert victims == [a]
        assert builder.resident_count == 1
        assert builder.last_seen_us(b) == t

    def test_min_observations_validated(self):
        with pytest.raises(ValueError):
            StreamingSignatureBuilder(InterArrivalTime(), min_observations=0)
