"""Integration tests for stations, the medium and scenarios."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.dot11.frames import FrameSubtype
from repro.dot11.mac import MacAddress
from repro.dot11.timing import TIMING_BG_MIXED
from repro.simulator import (
    CbrTraffic,
    ChannelModel,
    Scenario,
    StationSpec,
    WebTraffic,
)
from repro.simulator.channel import Mobility, Position
from repro.simulator.device import Station
from repro.simulator.events import EventQueue
from repro.simulator.medium import Medium
from repro.simulator.profiles import profile_by_name
from repro.simulator.traffic import AppFrame


def _make_station(seed: int = 1, profile: str = "intel-2200bg-linux") -> Station:
    return Station(
        mac=MacAddress.parse("00:13:e8:00:00:01"),
        profile=profile_by_name(profile),
        channel_model=ChannelModel(noiseless=True),
        network_timing=TIMING_BG_MIXED,
        rng=random.Random(seed),
        mobility=Mobility(speed_mps=0.0, _position=Position(3, 3)),
        bssid=MacAddress.parse("00:0f:b5:0a:00:00"),
    )


class TestStation:
    def test_enqueue_signals_contention_once(self):
        station = _make_station()
        first = station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        second = station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        assert first and not second
        assert station.wants_medium

    def test_access_time_includes_difs_and_backoff(self):
        station = _make_station()
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        access = station.access_time(1000.0)
        assert access >= 1000.0 + 1.0
        assert station.backoff_counter is not None

    def test_exchange_produces_data_and_ack(self):
        station = _make_station()
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        outcome = station.execute_exchange(10_000.0)
        assert outcome.dequeued
        subtypes = [c.subtype for c in outcome.captures]
        assert FrameSubtype.QOS_DATA in subtypes
        assert FrameSubtype.ACK in subtypes
        assert outcome.busy_until_us > 10_000.0

    def test_broadcast_has_no_ack(self):
        station = _make_station()
        station.enqueue(
            AppFrame(subtype=FrameSubtype.DATA, size=200, destination="broadcast")
        )
        outcome = station.execute_exchange(10_000.0)
        subtypes = [c.subtype for c in outcome.captures]
        assert FrameSubtype.ACK not in subtypes

    def test_rts_used_above_threshold(self):
        station = _make_station(profile="atheros-ar9285-ath9k")  # RTS at 2000
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=2100))
        outcome = station.execute_exchange(10_000.0)
        subtypes = [c.subtype for c in outcome.captures]
        assert FrameSubtype.RTS in subtypes
        assert FrameSubtype.CTS in subtypes

    def test_no_rts_below_threshold(self):
        station = _make_station(profile="atheros-ar9285-ath9k")
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        outcome = station.execute_exchange(10_000.0)
        assert FrameSubtype.RTS not in [c.subtype for c in outcome.captures]

    def test_monotone_capture_times_within_exchange(self):
        station = _make_station()
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=2500))
        outcome = station.execute_exchange(10_000.0)
        times = [c.timestamp_us for c in outcome.captures]
        assert times == sorted(times)

    def test_sequence_numbers_increment(self):
        station = _make_station()
        seqs = []
        for _ in range(3):
            station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        time = 10_000.0
        for _ in range(3):
            outcome = station.execute_exchange(time)
            data = next(c for c in outcome.captures if c.subtype is FrameSubtype.QOS_DATA)
            seqs.append(data.frame.seq)
            time = outcome.busy_until_us + 100
        assert seqs[1] == (seqs[0] + 1) % 4096
        assert seqs[2] == (seqs[1] + 1) % 4096

    def test_encrypted_station_sets_protected(self):
        station = _make_station()
        station.encrypted = True
        station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=500))
        outcome = station.execute_exchange(10_000.0)
        data = next(c for c in outcome.captures if c.subtype is FrameSubtype.QOS_DATA)
        assert data.frame.protected
        assert data.size == 508  # +8 bytes CCMP overhead


class TestMedium:
    def test_two_contenders_serialize(self):
        queue = EventQueue()
        medium = Medium(queue)
        a = _make_station(seed=1)
        b = _make_station(seed=2)
        b.mac = MacAddress.parse("00:18:f8:00:00:02")
        for station in (a, b):
            station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=800))
            medium.join(station, 0.0)
        queue.run_until(1e6)
        medium.verify_capture_order()
        senders = {c.sender for c in medium.captures if c.sender is not None}
        assert senders == {a.mac, b.mac}
        # No two data frames overlap in time.
        data = [c for c in medium.captures if c.subtype is FrameSubtype.QOS_DATA]
        assert len(data) == 2

    def test_exchange_counter(self):
        queue = EventQueue()
        medium = Medium(queue)
        station = _make_station()
        for _ in range(5):
            station.enqueue(AppFrame(subtype=FrameSubtype.QOS_DATA, size=400))
        medium.join(station, 0.0)
        queue.run_until(1e6)
        assert medium.exchange_count == 5
        assert not station.wants_medium


class TestScenario:
    def test_deterministic_runs(self):
        def run() -> list[float]:
            scenario = Scenario(duration_s=10.0, seed=77)
            scenario.add_station(
                StationSpec(
                    name="a",
                    profile="intel-2200bg-linux",
                    sources=[CbrTraffic(interval_ms=40)],
                )
            )
            return [c.timestamp_us for c in scenario.run().captures]

        assert run() == run()

    def test_seed_changes_output(self):
        def run(seed: int) -> int:
            scenario = Scenario(duration_s=10.0, seed=seed)
            scenario.add_station(
                StationSpec(
                    name="a",
                    profile="intel-2200bg-linux",
                    sources=[CbrTraffic(interval_ms=40)],
                )
            )
            return len(scenario.run().captures)

        assert run(1) != run(2) or True  # counts may coincide; spot-check below
        scenario_a = Scenario(duration_s=10.0, seed=1)
        scenario_b = Scenario(duration_s=10.0, seed=2)
        for scenario in (scenario_a, scenario_b):
            scenario.add_station(
                StationSpec(
                    name="a",
                    profile="intel-2200bg-linux",
                    sources=[CbrTraffic(interval_ms=40)],
                )
            )
        times_a = [c.timestamp_us for c in scenario_a.run().captures][:50]
        times_b = [c.timestamp_us for c in scenario_b.run().captures][:50]
        assert times_a != times_b

    def test_ap_emits_beacons(self, small_office_result):
        beacons = [
            c
            for c in small_office_result.captures
            if c.subtype is FrameSubtype.BEACON
        ]
        # 90 s at ~102.4 ms intervals, modulo capture loss.
        assert len(beacons) > 400

    def test_probe_requests_answered(self, small_office_result):
        types = Counter(c.subtype for c in small_office_result.captures)
        assert types[FrameSubtype.PROBE_REQUEST] > 0
        assert types[FrameSubtype.PROBE_RESPONSE] > 0

    def test_station_names_mapped(self, small_office_result):
        names = set(small_office_result.station_names.values())
        assert {"alice", "bob", "carol", "ap-0"} <= names

    def test_departure_stops_traffic(self):
        scenario = Scenario(duration_s=30.0, seed=3)
        scenario.add_station(
            StationSpec(
                name="early-leaver",
                profile="intel-2200bg-linux",
                sources=[CbrTraffic(interval_ms=20)],
                departure_s=10.0,
            )
        )
        result = scenario.run()
        leaver = next(
            mac for mac, name in result.station_names.items() if name == "early-leaver"
        )
        last = max(
            (c.timestamp_us for c in result.captures if c.sender == leaver),
            default=0.0,
        )
        assert last < 11e6

    def test_arrival_delays_traffic(self):
        scenario = Scenario(duration_s=30.0, seed=3)
        scenario.add_station(
            StationSpec(
                name="late-arriver",
                profile="intel-2200bg-linux",
                sources=[CbrTraffic(interval_ms=20)],
                arrival_s=20.0,
            )
        )
        result = scenario.run()
        arriver = next(
            mac for mac, name in result.station_names.items() if name == "late-arriver"
        )
        first = min(
            (c.timestamp_us for c in result.captures if c.sender == arriver),
            default=float("inf"),
        )
        assert first >= 20e6

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Scenario(duration_s=0.0)
        scenario = Scenario(duration_s=10.0)
        scenario.add_station(
            StationSpec(
                name="bad",
                profile="intel-2200bg-linux",
                arrival_s=5.0,
                departure_s=1.0,
            )
        )
        with pytest.raises(ValueError):
            scenario.run()

    def test_collisions_occur_under_load(self):
        scenario = Scenario(duration_s=10.0, seed=13)
        for index in range(8):
            scenario.add_station(
                StationSpec(
                    name=f"station-{index}",
                    profile="intel-2200bg-linux",
                    sources=[CbrTraffic(interval_ms=5)],
                )
            )
        result = scenario.run()
        assert result.collision_rounds > 0
        assert result.frame_count > 1000
