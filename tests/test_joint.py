"""Tests for joint (2-D) histogram signatures."""

from __future__ import annotations

import pytest

from repro.core.histogram import Histogram, UniformBins
from repro.core.joint import JointBins, JointParameter
from repro.core.signature import SignatureBuilder
from repro.dot11.mac import MacAddress
from tests.conftest import make_data_capture

A = MacAddress.parse("00:13:e8:00:00:0a")
AP = MacAddress.parse("00:0f:b5:00:00:01")


class TestJointBins:
    def test_bin_count_is_product(self):
        joint = JointBins(
            x_bins=UniformBins(lo=0, hi=100, width=10),
            y_bins=UniformBins(lo=0, hi=30, width=10),
        )
        assert joint.bin_count == 30

    def test_encode_index_round_trip(self):
        joint = JointBins(
            x_bins=UniformBins(lo=0, hi=100, width=10),
            y_bins=UniformBins(lo=0, hi=30, width=10),
        )
        encoded = joint.encode(55.0, 25.0)
        assert encoded is not None
        index = joint.index(encoded)
        assert index == 5 * 3 + 2
        assert "×" in joint.bin_label(index)

    def test_dropped_component_drops_pair(self):
        joint = JointBins(
            x_bins=UniformBins(lo=0, hi=100, width=10, drop_outside=True),
            y_bins=UniformBins(lo=0, hi=30, width=10),
        )
        assert joint.encode(500.0, 25.0) is None


class TestJointParameter:
    def test_validation(self):
        with pytest.raises(KeyError):
            JointParameter("size", "entropy")
        with pytest.raises(ValueError):
            JointParameter("size", "size")

    def test_size_rate_joint_extraction(self):
        frames = [
            make_data_capture(1000.0 * i, A, AP, size=500, rate=54.0)
            for i in range(10)
        ]
        parameter = JointParameter("size", "rate")
        observations = list(parameter.observations(frames))
        assert len(observations) == 10
        histogram = Histogram(parameter.default_bins())
        for observation in observations:
            assert histogram.add(observation.value)
        # All identical pairs land in one joint bin.
        assert (histogram.frequencies() > 0).sum() == 1

    def test_joint_separates_what_marginals_confuse(self):
        """Two devices with identical size AND inter-arrival marginals
        but opposite correlation are separable only jointly."""
        from repro.core.similarity import cosine_similarity

        # Device A: small frames after short gaps, big after long.
        # Device B: the opposite pairing. Marginals: 50/50 either way.
        frames_a, frames_b = [], []
        t_a = t_b = 0.0
        for i in range(60):
            short_gap = i % 2 == 0
            gap = 300.0 if short_gap else 1500.0
            t_a += gap
            frames_a.append(
                make_data_capture(t_a, A, AP, size=100 if short_gap else 1500)
            )
            t_b += gap
            frames_b.append(
                make_data_capture(t_b, A, AP, size=1500 if short_gap else 100)
            )
        joint = JointParameter("interarrival", "size")
        builder = SignatureBuilder(joint, min_observations=10)
        sig_a = builder.build(frames_a)[A]
        sig_b = builder.build(frames_b)[A]
        joint_sim = cosine_similarity(
            sig_a.histograms["QoS Data"], sig_b.histograms["QoS Data"]
        )
        assert joint_sim < 0.1  # jointly near-disjoint

        # The size marginal alone cannot tell them apart.
        from repro.core.parameters import FrameSize

        size_builder = SignatureBuilder(FrameSize(), min_observations=10)
        size_a = size_builder.build(frames_a)[A]
        size_b = size_builder.build(frames_b)[A]
        size_sim = cosine_similarity(
            size_a.histograms["QoS Data"], size_b.histograms["QoS Data"]
        )
        assert size_sim > 0.95

    def test_pipeline_integration(self, small_office_trace):
        """Joint signatures run through the standard evaluation."""
        from repro.core.detection import DetectionConfig
        from repro.core.pipeline import evaluate_trace

        result = evaluate_trace(
            small_office_trace,
            JointParameter("interarrival", "size"),
            training_s=30.0,
            config=DetectionConfig(window_s=15.0),
        )
        assert result.auc > 0.7
