"""Unit tests for PHY rates and airtime computation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.phy import (
    ALL_RATES,
    DSSS_RATES,
    OFDM_RATES,
    PHY_B_ONLY,
    PHY_BG,
    Phy,
    PhyKind,
    frame_airtime_us,
    paper_transmission_time_us,
    phy_kind_for_rate,
)


class TestRateClassification:
    def test_dsss_rates(self):
        for rate in DSSS_RATES:
            assert phy_kind_for_rate(rate) is PhyKind.DSSS

    def test_ofdm_rates(self):
        for rate in OFDM_RATES:
            assert phy_kind_for_rate(rate) is PhyKind.OFDM

    def test_unknown_rate_rejected(self):
        with pytest.raises(ValueError):
            phy_kind_for_rate(13.0)


class TestAirtime:
    def test_airtime_1500_at_54(self):
        # 16+4 preamble/signal + ceil((22+12000)/216) symbols * 4 = 244 µs.
        assert frame_airtime_us(1500, 54.0) == pytest.approx(244.0)

    def test_airtime_monotone_in_size(self):
        assert frame_airtime_us(1500, 54.0) > frame_airtime_us(100, 54.0)

    def test_airtime_monotone_in_rate(self):
        assert frame_airtime_us(1500, 6.0) > frame_airtime_us(1500, 54.0)

    def test_dsss_long_preamble_at_1mbps(self):
        # 1 Mbps must use the long preamble regardless of capability.
        assert frame_airtime_us(100, 1.0, short_preamble=True) == pytest.approx(
            192.0 + 800.0
        )

    def test_dsss_short_preamble(self):
        short = frame_airtime_us(100, 11.0, short_preamble=True)
        long = frame_airtime_us(100, 11.0, short_preamble=False)
        assert long - short == pytest.approx(96.0)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            frame_airtime_us(0, 54.0)

    @given(
        st.integers(min_value=14, max_value=2400),
        st.sampled_from(ALL_RATES),
    )
    def test_airtime_always_exceeds_paper_tt_for_ofdm(self, size, rate):
        # Physical airtime includes preamble overhead, so it dominates
        # the paper's idealised size/rate figure.
        airtime = frame_airtime_us(size, rate)
        assert airtime >= paper_transmission_time_us(size, rate) - 1e-9


class TestPaperTransmissionTime:
    def test_units(self):
        # 1500 bytes at 54 Mbps: 12000 bits / 54 Mbps = 222.2 µs.
        assert paper_transmission_time_us(1500, 54.0) == pytest.approx(222.22, abs=0.01)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            paper_transmission_time_us(1500, 0.0)


class TestPhy:
    def test_clamp_rate(self):
        assert PHY_B_ONLY.clamp_rate(54.0) == 11.0
        assert PHY_BG.clamp_rate(54.0) == 54.0
        assert PHY_BG.clamp_rate(0.5) == 1.0

    def test_rate_ladder(self):
        assert PHY_BG.next_rate_up(54.0) == 54.0
        assert PHY_BG.next_rate_down(1.0) == 1.0
        assert PHY_BG.next_rate_up(11.0) == 12.0
        assert PHY_BG.next_rate_down(12.0) == 11.0

    def test_unsorted_rates_rejected(self):
        with pytest.raises(ValueError):
            Phy(supported_rates=(54.0, 1.0))

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            Phy(supported_rates=())

    @given(st.sampled_from(ALL_RATES))
    def test_ladder_inverse(self, rate):
        up = PHY_BG.next_rate_up(rate)
        if up != rate:
            assert PHY_BG.next_rate_down(up) == rate
