"""Unit tests for MAC address handling."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.mac import (
    BROADCAST,
    MacAddress,
    OUI_REGISTRY,
    mac_sequence,
    vendor_mac,
)


class TestParsing:
    def test_parse_colon_notation(self):
        mac = MacAddress.parse("00:13:e8:aa:bb:cc")
        assert str(mac) == "00:13:e8:aa:bb:cc"

    def test_parse_dash_notation(self):
        assert MacAddress.parse("00-13-e8-aa-bb-cc") == MacAddress.parse(
            "00:13:e8:aa:bb:cc"
        )

    def test_parse_uppercase(self):
        assert str(MacAddress.parse("AA:BB:CC:DD:EE:FF")) == "aa:bb:cc:dd:ee:ff"

    @pytest.mark.parametrize(
        "bad", ["", "00:13:e8", "00:13:e8:aa:bb:cc:dd", "zz:13:e8:aa:bb:cc", "001122334455"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            MacAddress.parse(bad)

    def test_value_range_validation(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)


class TestBytes:
    def test_round_trip(self):
        mac = MacAddress.parse("01:02:03:04:05:06")
        assert MacAddress.from_bytes(mac.to_bytes()) == mac

    def test_from_bytes_length_check(self):
        with pytest.raises(ValueError):
            MacAddress.from_bytes(b"\x00" * 5)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_round_trip_property(self, value):
        mac = MacAddress(value)
        assert MacAddress.from_bytes(mac.to_bytes()).value == value
        assert MacAddress.parse(str(mac)) == mac


class TestFlags:
    def test_broadcast(self):
        assert BROADCAST.is_broadcast
        assert BROADCAST.is_multicast

    def test_unicast_is_not_multicast(self):
        assert not MacAddress.parse("00:13:e8:00:00:01").is_multicast

    def test_multicast_bit(self):
        assert MacAddress.parse("01:00:5e:00:00:fb").is_multicast
        assert not MacAddress.parse("01:00:5e:00:00:fb").is_broadcast

    def test_locally_administered(self):
        assert MacAddress.parse("02:00:00:00:00:01").is_locally_administered
        assert not MacAddress.parse("00:13:e8:00:00:01").is_locally_administered


class TestVendor:
    def test_known_oui(self):
        assert MacAddress.parse("00:13:e8:00:00:01").vendor == "Intel"

    def test_unknown_oui(self):
        assert MacAddress.parse("f2:00:00:00:00:01").vendor is None

    def test_vendor_mac_builder(self):
        mac = vendor_mac("00:18:f8", 7)
        assert mac.oui == "00:18:f8"
        assert mac.vendor == "Broadcom"

    def test_vendor_mac_serial_range(self):
        with pytest.raises(ValueError):
            vendor_mac("00:18:f8", 1 << 24)

    def test_registry_ouis_parse(self):
        for oui in OUI_REGISTRY:
            mac = vendor_mac(oui, 1)
            assert mac.oui == oui

    def test_mac_sequence_distinct(self):
        gen = mac_sequence("00:13:e8")
        macs = [next(gen) for _ in range(100)]
        assert len(set(macs)) == 100


class TestRandomization:
    def test_randomized_is_local_unicast(self):
        rng = random.Random(3)
        original = MacAddress.parse("00:13:e8:00:00:01")
        for _ in range(50):
            pseudo = original.randomized(rng)
            assert pseudo.is_locally_administered
            assert not pseudo.is_multicast

    def test_randomized_changes_address(self):
        rng = random.Random(3)
        original = MacAddress.parse("00:13:e8:00:00:01")
        assert original.randomized(rng) != original
