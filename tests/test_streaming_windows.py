"""Window semantics of the streaming WindowManager.

Tumbling windows must reproduce :meth:`Trace.windows` boundaries
exactly; sliding windows must keep ``ceil(W/S)`` concurrent spans; and
window indices must stay aligned with the batch enumeration across
empty stretches of the stream.
"""

from __future__ import annotations

import pytest

from repro.dot11.mac import MacAddress, vendor_mac
from repro.core.parameters import FrameSize
from repro.streaming.builder import StreamingSignatureBuilder
from repro.streaming.windows import WindowConfig, WindowManager
from tests.conftest import make_data_capture

AP = MacAddress.parse("00:0f:b5:00:00:01")
A = vendor_mac("00:13:e8", 1)
B = vendor_mac("00:13:e8", 2)


def manager(
    window_s: float = 10.0,
    slide_s: float | None = None,
    min_observations: int = 1,
    idle_timeout_s: float | None = None,
) -> WindowManager:
    return WindowManager(
        lambda: StreamingSignatureBuilder(FrameSize(), min_observations=min_observations),
        WindowConfig(window_s=window_s, slide_s=slide_s, idle_timeout_s=idle_timeout_s),
    )


class TestTumbling:
    def test_windows_align_to_first_frame(self):
        windows = manager(window_s=10.0)
        assert windows.update(make_data_capture(5_000_000.0, A, AP)) == []
        assert windows.open_windows == 1
        (index, start, end) = next(windows.window_spans())
        assert (index, start, end) == (0, 5_000_000.0, 15_000_000.0)

    def test_frame_at_boundary_closes_the_window_first(self):
        windows = manager(window_s=10.0)
        windows.update(make_data_capture(0.0, A, AP))
        closed = windows.update(make_data_capture(10_000_000.0, B, AP))
        assert [w.index for w in closed] == [0]
        assert closed[0].frame_count == 1
        assert closed[0].senders == {A}
        # The boundary frame went into window 1, not window 0.
        (index, start, _end) = next(windows.window_spans())
        assert (index, start) == (1, 10_000_000.0)

    def test_indices_stay_aligned_across_empty_gaps(self):
        windows = manager(window_s=10.0)
        windows.update(make_data_capture(0.0, A, AP))
        # A 75 s silence: windows 1–6 never open, window 7 catches the frame.
        closed = windows.update(make_data_capture(75_000_000.0, B, AP))
        assert [w.index for w in closed] == [0]
        (index, start, _end) = next(windows.window_spans())
        assert index == 7 and start == 70_000_000.0

    def test_flush_closes_the_partial_tail(self):
        windows = manager(window_s=10.0)
        windows.update(make_data_capture(0.0, A, AP))
        windows.update(make_data_capture(12_000_000.0, B, AP))
        tail = windows.flush()
        assert [w.index for w in tail] == [1]
        assert windows.open_windows == 0
        assert windows.flush() == []

    def test_gating_filters_quiet_devices_but_keeps_senders(self):
        windows = manager(window_s=10.0, min_observations=3)
        for offset in (0.0, 1000.0, 2000.0):
            windows.update(make_data_capture(offset, A, AP))
        windows.update(make_data_capture(3000.0, B, AP))  # one frame only
        (closed,) = windows.flush()
        assert set(closed.signatures) == {A}
        assert closed.senders == {A, B}


class TestSliding:
    def test_concurrent_window_count(self):
        windows = manager(window_s=10.0, slide_s=2.5)
        windows.update(make_data_capture(0.0, A, AP))
        assert windows.open_windows == 1  # only window 0 covers t=0
        windows.update(make_data_capture(9_000_000.0, A, AP))
        # Slides at 0, 2.5, 5, 7.5 s all cover t=9 s.
        assert windows.open_windows == 4

    def test_frame_lands_in_every_covering_window(self):
        windows = manager(window_s=10.0, slide_s=5.0)
        windows.update(make_data_capture(0.0, A, AP))
        windows.update(make_data_capture(7_000_000.0, B, AP))
        closed = {w.index: w for w in windows.flush()}
        assert set(closed) == {0, 1}
        assert closed[0].senders == {A, B}  # [0, 10) saw both
        assert closed[1].senders == {B}  # [5, 15) saw only the late frame

    def test_windows_close_in_index_order(self):
        windows = manager(window_s=10.0, slide_s=2.5)
        windows.update(make_data_capture(0.0, A, AP))
        windows.update(make_data_capture(9_000_000.0, A, AP))
        closed = windows.update(make_data_capture(16_000_000.0, B, AP))
        assert [w.index for w in closed] == [0, 1, 2]


class TestEviction:
    def test_idle_devices_are_swept_inside_long_windows(self):
        windows = manager(window_s=3600.0, idle_timeout_s=5.0)
        windows.update(make_data_capture(0.0, A, AP))
        windows.update(make_data_capture(1000.0, A, AP))
        t = 1000.0
        # Enough traffic from B to trigger a sweep (512-frame cadence)
        # long after A went silent.
        for _ in range(1100):
            t += 20_000.0
            windows.update(make_data_capture(t, B, AP))
        (closed,) = windows.flush()
        assert A in closed.evicted
        assert A not in closed.signatures
        assert B in closed.signatures


class TestConfigValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WindowConfig(window_s=0.0)
        with pytest.raises(ValueError):
            WindowConfig(window_s=10.0, slide_s=20.0)
        with pytest.raises(ValueError):
            WindowConfig(window_s=10.0, slide_s=0.0)
        with pytest.raises(ValueError):
            WindowConfig(window_s=10.0, idle_timeout_s=-1.0)
