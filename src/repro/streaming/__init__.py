"""Streaming fingerprint engine: online signatures, incremental
matching, live alert pipeline.

The batch pipeline (``repro.core``) takes complete frame lists; this
package feeds the same vectorized core incrementally, so captures of
unbounded length run in bounded memory at wire speed (DESIGN.md §4):

* :class:`StreamingSignatureBuilder` — per-device incremental
  histograms, O(1) per frame, optional exponential decay, provably
  equivalent to the batch builder with decay off;
* :class:`WindowManager` — tumbling/sliding detection windows with
  observation-count gating and idle-device eviction;
* :class:`OnlineMatcher` — Algorithm 1 over closed windows against a
  live (incrementally re-packed) reference database;
* :class:`StreamEngine` — pluggable frame sources in
  (:mod:`~repro.streaming.sources`), typed events out
  (:mod:`~repro.streaming.events`), with online adapters for all three
  Section VII applications (:mod:`~repro.streaming.apps`).

Ingest comes in two bit-identical flavours: the per-frame reference
path (``run``/``process_frame``) and the chunked columnar fast path
(``run_chunked``/``process_chunk``), which consumes
:class:`~repro.traces.table.FrameTable` chunks from the
``*_chunk_source`` builders and scatters whole observation batches
into the incremental histograms (DESIGN.md §8).
"""

from repro.streaming.builder import StreamingSignatureBuilder
from repro.streaming.engine import StreamEngine, StreamStats
from repro.streaming.events import (
    CollectingSink,
    DeviceEvicted,
    DeviceMatched,
    JsonLinesSink,
    PseudonymLinked,
    RogueApAlert,
    SpoofAlert,
    StreamEvent,
    WindowClosed,
)
from repro.streaming.apps import (
    LiveTracker,
    OnlineRogueApGuard,
    OnlineSpoofGuard,
    WindowAnalyzer,
)
from repro.streaming.matcher import OnlineMatcher, StreamCandidate
from repro.streaming.sources import (
    pcap_chunk_source,
    pcap_source,
    replay_chunk_source,
    replay_source,
    simulation_chunk_source,
    simulation_source,
    skip_processed_chunks,
    skip_processed_frames,
    table_chunks,
)
from repro.streaming.windows import ClosedWindow, WindowConfig, WindowManager

__all__ = [
    "ClosedWindow",
    "CollectingSink",
    "DeviceEvicted",
    "DeviceMatched",
    "JsonLinesSink",
    "LiveTracker",
    "OnlineMatcher",
    "OnlineRogueApGuard",
    "OnlineSpoofGuard",
    "PseudonymLinked",
    "RogueApAlert",
    "SpoofAlert",
    "StreamCandidate",
    "StreamEngine",
    "StreamEvent",
    "StreamStats",
    "StreamingSignatureBuilder",
    "WindowAnalyzer",
    "WindowClosed",
    "WindowConfig",
    "WindowManager",
    "pcap_chunk_source",
    "pcap_source",
    "replay_chunk_source",
    "replay_source",
    "simulation_chunk_source",
    "simulation_source",
    "skip_processed_chunks",
    "skip_processed_frames",
    "table_chunks",
]
