"""Incremental matching of window candidates against a live database.

:class:`OnlineMatcher` rides the packed matrix engine
(:func:`~repro.core.matcher.batch_match_signatures`): each closed
window is matched in one matrix product per frame type, and because
:class:`~repro.core.database.ReferenceDatabase` now maintains its
packed view incrementally (O(bins) per :meth:`learn`/:meth:`forget`
instead of a full repack), interleaving reference updates with live
matching stays cheap — the deployment loop the paper's applications
imply (learn newly authorised devices, retire old ones, keep
fingerprinting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase
from repro.core.matcher import batch_match_signatures
from repro.core.signature import Signature
from repro.core.similarity import SimilarityMeasure, cosine_similarity
from repro.streaming.windows import ClosedWindow


@dataclass(slots=True)
class StreamCandidate:
    """One matched window candidate (streaming analogue of
    :class:`~repro.core.detection.WindowCandidate`)."""

    device: MacAddress
    window_index: int
    signature: Signature
    similarities: dict[MacAddress, float]

    @property
    def best(self) -> tuple[MacAddress | None, float]:
        """Argmax reference and its similarity ((None, 0.0) if empty)."""
        winner: MacAddress | None = None
        best_score = 0.0
        for device, score in self.similarities.items():
            if winner is None or score > best_score:
                winner, best_score = device, score
        return winner, best_score


class OnlineMatcher:
    """Algorithm 1 over closed windows, with live reference updates."""

    def __init__(
        self,
        database: ReferenceDatabase | None = None,
        measure: SimilarityMeasure = cosine_similarity,
    ) -> None:
        self.database = database if database is not None else ReferenceDatabase()
        self.measure = measure

    def learn(self, device: MacAddress, signature: Signature) -> None:
        """Register (or refresh) one reference device — O(bins)."""
        self.database.add(device, signature)

    def forget(self, device: MacAddress) -> bool:
        """Retire one reference device; no-op ``False`` if unknown."""
        return self.database.remove(device)

    def match_window(self, closed: ClosedWindow) -> list[StreamCandidate]:
        """Match every candidate of one closed window in a single batch."""
        if not closed.signatures or len(self.database) == 0:
            return []
        devices = list(closed.signatures)
        scores = batch_match_signatures(
            [closed.signatures[device] for device in devices],
            self.database,
            self.measure,
        )
        references = self.database.devices
        return [
            StreamCandidate(
                device=device,
                window_index=closed.index,
                signature=closed.signatures[device],
                similarities=dict(zip(references, row.tolist())),
            )
            for device, row in zip(devices, scores)
        ]
