"""Online adapters for the Section VII applications.

Each adapter turns one batch application into a window analyzer the
:class:`~repro.streaming.engine.StreamEngine` drives: the engine calls
:meth:`on_frame` for every frame (optional pre-window state) and
:meth:`on_window` whenever a detection window closes, and the adapter
answers with typed alert events.  The underlying detectors are the
unmodified batch implementations — the adapters reuse their
signature-level entry points (``check_signatures``,
``check_signature``, ``link_signatures``), so batch and streaming
verdicts are computed by the same code.
"""

from __future__ import annotations

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.applications.rogue_ap import RogueApDetector
from repro.applications.spoof_detector import SpoofDetector, SpoofVerdict
from repro.applications.tracker import DeviceTracker
from repro.streaming.builder import StreamingSignatureBuilder
from repro.streaming.events import (
    PseudonymLinked,
    RogueApAlert,
    SpoofAlert,
    StreamEvent,
)
from repro.streaming.windows import ClosedWindow


class WindowAnalyzer:
    """Base analyzer: override the hooks you need."""

    def on_frame(self, frame: CapturedFrame) -> None:
        """Called for every frame before windowing (optional)."""

    def on_table(self, table, lo: int, hi: int) -> None:
        """Called for every routed row span of a columnar chunk.

        The default replays the span's backing frames through
        :meth:`on_frame`, so every analyzer works unchanged under the
        chunked engine; analyzers with a vectorizable frame hook can
        override this with a columnar implementation.
        """
        for row in range(lo, hi):
            self.on_frame(table.frame_at(row))

    def on_window(self, closed: ClosedWindow) -> list[StreamEvent]:
        """Called when a detection window closes; returns alert events."""
        return []


class OnlineSpoofGuard(WindowAnalyzer):
    """MAC-spoof detection per closed window (Section VII-B1, live).

    Wraps a learnt :class:`~repro.applications.spoof_detector.SpoofDetector`;
    every closed window's candidate signatures are checked against the
    allow-list references and non-genuine verdicts become
    :class:`~repro.streaming.events.SpoofAlert` events.  ``alert_on``
    selects which verdicts are alert-worthy (the default flags spoofed
    and unknown devices; INSUFFICIENT windows are routine on quiet
    devices).
    """

    def __init__(
        self,
        detector: SpoofDetector,
        alert_on: frozenset[SpoofVerdict] = frozenset(
            {SpoofVerdict.SPOOFED, SpoofVerdict.UNKNOWN_DEVICE}
        ),
    ) -> None:
        self.detector = detector
        self.alert_on = alert_on

    def on_window(self, closed: ClosedWindow) -> list[StreamEvent]:
        checks = self.detector.check_signatures(closed.signatures, closed.senders)
        return [
            SpoofAlert(
                timestamp_us=closed.end_us,
                window_index=closed.index,
                device=check.device,
                verdict=check.verdict.value,
                self_similarity=check.self_similarity,
                best_other_similarity=check.best_other_similarity,
            )
            for check in checks
            if check.verdict in self.alert_on
        ]


class OnlineRogueApGuard(WindowAnalyzer):
    """Rogue-AP detection per closed window (Section VII-B2, live).

    Maintains its own per-window accumulator over the AP's *own*
    frames (forwarded payloads excluded, as the batch detector's
    :func:`~repro.applications.rogue_ap.ap_own_frames` prescribes) and
    emits a :class:`~repro.streaming.events.RogueApAlert` whenever a
    window's fingerprint fails the reference check.  Assumes tumbling
    windows — each frame belongs to exactly one AP accumulation span.
    """

    def __init__(self, detector: RogueApDetector, ap: MacAddress) -> None:
        self.detector = detector
        self.ap = ap
        self._builder = self._new_builder()
        self._own_frames = 0

    def _new_builder(self) -> StreamingSignatureBuilder:
        return StreamingSignatureBuilder(
            self.detector.parameter,
            bins=self.detector.builder.bins,
            min_observations=self.detector.builder.min_observations,
        )

    def on_frame(self, frame: CapturedFrame) -> None:
        if frame.sender != self.ap:
            return
        if frame.frame.is_data and frame.frame.from_ds:
            return  # forwarded payload: not the AP's own behaviour
        self._own_frames += 1
        self._builder.update(frame)

    def on_window(self, closed: ClosedWindow) -> list[StreamEvent]:
        signature = self._builder.signature(self.ap)
        observations = self._own_frames
        self._builder = self._new_builder()  # next tumbling span
        self._own_frames = 0
        verdict = self.detector.check_signature(
            signature, self.ap, observations=observations
        )
        if not verdict.is_rogue:
            return []
        return [
            RogueApAlert(
                timestamp_us=closed.end_us,
                window_index=closed.index,
                ap=self.ap,
                similarity=verdict.similarity,
                observations=verdict.observations,
            )
        ]


class LiveTracker(WindowAnalyzer):
    """Cross-window pseudonym linking (Section VII-B3, live).

    The paper's tracker becomes a true live tracker: every closed
    window's randomised-looking senders are linked against the learnt
    signatures in one batch call and each link (or explicit non-link)
    is emitted as a :class:`~repro.streaming.events.PseudonymLinked`
    event.  The accumulated :class:`~repro.applications.tracker.TrackingReport`
    stays queryable mid-stream via :attr:`report`.
    """

    def __init__(self, tracker: DeviceTracker) -> None:
        from repro.applications.tracker import TrackingReport

        self.tracker = tracker
        self.report = TrackingReport()

    def on_window(self, closed: ClosedWindow) -> list[StreamEvent]:
        links = self.tracker.link_signatures(closed.signatures, closed.index)
        self.report.links.extend(links)
        return [
            PseudonymLinked(
                timestamp_us=closed.end_us,
                window_index=link.window_index,
                pseudonym=link.pseudonym,
                linked_device=link.linked_device,
                similarity=link.similarity,
            )
            for link in links
        ]
