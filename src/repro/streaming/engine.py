"""The streaming fingerprint engine: frames in, typed events out.

:class:`StreamEngine` composes the online subsystem end to end:

1. a pluggable frame source (:mod:`repro.streaming.sources`) is pulled
   one frame at a time — or one columnar
   :class:`~repro.traces.table.FrameTable` chunk at a time via
   :meth:`StreamEngine.run_chunked`, the bit-identical vectorized fast
   path (DESIGN.md §8) — the engine never holds the trace;
2. every frame feeds the :class:`~repro.streaming.windows.WindowManager`
   (and any frame-level analyzer state, e.g. the rogue-AP guard's
   own-traffic accumulator);
3. when a detection window closes, its candidates are matched against
   the live reference database in one batch call
   (:class:`~repro.streaming.matcher.OnlineMatcher`) and the window
   analyzers produce application alerts;
4. everything observable leaves as a typed
   :class:`~repro.streaming.events.StreamEvent` delivered to the
   registered sinks.

With decay off and tumbling windows the emitted matches are identical
to the batch pipeline (:func:`~repro.core.detection.extract_window_candidates`)
on the same frames — the equivalence the streaming tests pin down —
while memory stays bounded by the live working set (open windows ×
resident devices), which :class:`StreamStats` tracks as
``peak_resident_devices``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase
from repro.core.similarity import SimilarityMeasure, cosine_similarity
from repro.traces.table import FrameTable
from repro.streaming.apps import WindowAnalyzer
from repro.streaming.events import (
    DeviceEvicted,
    DeviceMatched,
    EventSink,
    StreamEvent,
    WindowClosed,
)
from repro.streaming.matcher import OnlineMatcher, StreamCandidate
from repro.streaming.windows import ClosedWindow, WindowConfig, WindowManager


@dataclass(slots=True)
class StreamStats:
    """Running counters the engine keeps while consuming a stream."""

    frames: int = 0
    windows_closed: int = 0
    candidates: int = 0
    events: int = 0
    #: Peak simultaneous per-device accumulators across open windows —
    #: the engine's working-set high-water mark.
    peak_resident_devices: int = 0
    events_by_type: dict[str, int] = field(default_factory=dict)
    first_timestamp_us: float | None = None
    last_timestamp_us: float | None = None

    @property
    def duration_s(self) -> float:
        """Capture-clock span of the consumed stream."""
        if self.first_timestamp_us is None or self.last_timestamp_us is None:
            return 0.0
        return (self.last_timestamp_us - self.first_timestamp_us) / 1e6


class StreamEngine:
    """Event-driven online fingerprinting over a frame stream."""

    def __init__(
        self,
        builder_factory,
        database: ReferenceDatabase | None = None,
        window: WindowConfig | None = None,
        measure: SimilarityMeasure = cosine_similarity,
        analyzers: Iterable[WindowAnalyzer] = (),
        sinks: Iterable[EventSink] = (),
    ) -> None:
        """``builder_factory`` makes one decay-free
        :class:`StreamingSignatureBuilder` per detection window (a
        zero-argument callable, e.g. ``lambda: StreamingSignatureBuilder(
        parameter, min_observations=50)``)."""
        self._windows = WindowManager(builder_factory, window)
        self._windows.on_evict = self._emit_eviction
        self._matcher = OnlineMatcher(database, measure) if database is not None else None
        self._analyzers: list[WindowAnalyzer] = list(analyzers)
        self._sinks: list[EventSink] = list(sinks)
        self.stats = StreamStats()

    # -- wiring --------------------------------------------------------
    def subscribe(self, sink: EventSink) -> None:
        """Register one event sink."""
        self._sinks.append(sink)

    def add_analyzer(self, analyzer: WindowAnalyzer) -> None:
        """Register one window analyzer (application adapter)."""
        self._analyzers.append(analyzer)

    @property
    def matcher(self) -> OnlineMatcher | None:
        """The live matcher (``None`` when running without a database)."""
        return self._matcher

    # -- checkpointing -------------------------------------------------
    def checkpoint(self, path) -> "object":
        """Snapshot the engine's resumable state to a file.

        Captures the stream counters and every open window's builder
        accumulators (histograms, channel clock), so a later engine can
        :meth:`restore` and continue the capture as if never stopped.
        The reference database and analyzer state are *not* included —
        persist the database with :mod:`repro.persistence.store` and
        re-attach analyzers at construction (DESIGN.md §5).  Returns
        the written path.
        """
        from repro.persistence.checkpoint import save_checkpoint

        return save_checkpoint(self, path)

    def restore(self, path) -> None:
        """Resume from a :meth:`checkpoint` file.

        Call on a freshly constructed engine with the same builder
        factory and window configuration; feeding it the remaining
        frames then produces exactly the events an uninterrupted run
        would have emitted.
        """
        from repro.persistence.checkpoint import load_checkpoint

        load_checkpoint(self, path)

    # -- ingest --------------------------------------------------------
    def process_frame(self, frame: CapturedFrame) -> None:
        """Consume one frame, emitting any events it triggers."""
        stats = self.stats
        stats.frames += 1
        if stats.first_timestamp_us is None:
            stats.first_timestamp_us = frame.timestamp_us
        stats.last_timestamp_us = frame.timestamp_us
        # Close expired windows BEFORE analyzers see the frame: a frame
        # at or past a window's end belongs to the next span, and the
        # analyzers' on_window reset must run first (batch equivalence).
        closed = self._windows.update(frame)
        if closed:
            for window in closed:
                self._handle_closed(window)
        for analyzer in self._analyzers:
            analyzer.on_frame(frame)
        resident = self._windows.resident_devices()
        if resident > stats.peak_resident_devices:
            stats.peak_resident_devices = resident

    def run(self, frames: Iterable[CapturedFrame]) -> StreamStats:
        """Consume a whole frame source, flush, and return the stats."""
        process = self.process_frame
        for frame in frames:
            process(frame)
        self.flush()
        return self.stats

    def process_chunk(self, table: FrameTable) -> None:
        """Consume one columnar chunk, emitting any events it triggers.

        Equivalent to feeding the chunk's backing frames one at a time
        through :meth:`process_frame` — same events, in the same order,
        leaving the same resumable state — at a fraction of the cost:
        the window manager cuts the chunk at window boundaries and each
        span updates the open builders through the vectorized
        ``observe_table``/``bincount`` fast path (DESIGN.md §8).
        Frame-level analyzers receive the routed spans through
        :meth:`~repro.streaming.apps.WindowAnalyzer.on_table`.
        """
        count = len(table)
        if count == 0:
            return
        stats = self.stats
        stats.frames += count
        if stats.first_timestamp_us is None:
            stats.first_timestamp_us = table.start_us
        stats.last_timestamp_us = table.end_us
        for item in self._windows.update_table(table):
            if item[0] == "closed":
                self._handle_closed(item[1])
            else:
                _, lo, hi = item
                for analyzer in self._analyzers:
                    analyzer.on_table(table, lo, hi)
                resident = self._windows.resident_devices()
                if resident > stats.peak_resident_devices:
                    stats.peak_resident_devices = resident

    def run_chunked(self, chunks: Iterable[FrameTable]) -> StreamStats:
        """Consume a chunked (``FrameTable``) source, flush, and return stats."""
        process = self.process_chunk
        for chunk in chunks:
            process(chunk)
        self.flush()
        return self.stats

    def flush(self) -> None:
        """Close all still-open windows (end of stream)."""
        for window in self._windows.flush():
            self._handle_closed(window)

    # -- window completion ---------------------------------------------
    def _handle_closed(self, closed: ClosedWindow) -> None:
        self.stats.windows_closed += 1
        self.stats.candidates += len(closed.signatures)
        matches: list[StreamCandidate] = (
            self._matcher.match_window(closed) if self._matcher is not None else []
        )
        self._emit(
            WindowClosed(
                timestamp_us=closed.end_us,
                window_index=closed.index,
                start_us=closed.start_us,
                end_us=closed.end_us,
                frame_count=closed.frame_count,
                candidate_count=len(closed.signatures),
                resident_devices=self._windows.resident_devices(),
            )
        )
        for candidate in matches:
            best_device, best_sim = candidate.best
            self._emit(
                DeviceMatched(
                    timestamp_us=closed.end_us,
                    window_index=candidate.window_index,
                    device=candidate.device,
                    best_device=best_device,
                    similarity=best_sim,
                )
            )
        for analyzer in self._analyzers:
            for event in analyzer.on_window(closed):
                self._emit(event)

    def _emit_eviction(
        self, window_index: int, device: MacAddress, now_us: float
    ) -> None:
        """Prompt idle-eviction notification from the window manager.

        Emitted with the sweep timestamp the moment the accumulator is
        dropped — not buffered until the window closes — so live sinks
        see evictions when they happen.
        """
        self._emit(
            DeviceEvicted(
                timestamp_us=now_us, window_index=window_index, device=device
            )
        )

    def _emit(self, event: StreamEvent) -> None:
        self.stats.events += 1
        name = type(event).__name__
        self.stats.events_by_type[name] = self.stats.events_by_type.get(name, 0) + 1
        for sink in self._sinks:
            sink(event)
