"""Online signature construction: one frame at a time, O(1) per frame.

:class:`StreamingSignatureBuilder` is the incremental counterpart of
:class:`~repro.core.signature.SignatureBuilder`: it consumes frames
through the parameter's :meth:`~repro.core.parameters.NetworkParameter.online`
extractor and maintains per-device, per-frame-type bin counters.  With
decay disabled the counters are *exactly* the batch builder's histogram
counts, so :meth:`signature`/:meth:`signatures` reproduce
:meth:`SignatureBuilder.build` bin-for-bin on the same frames
(property-tested in ``tests/test_streaming_builder.py``).  Chunked
ingest (:meth:`StreamingSignatureBuilder.update_table`) accepts whole
columnar row spans and scatters their kept observations through one
flat ``np.bincount`` — bit-identical to per-frame :meth:`update`
calls, including every checkpoint-visible detail
(``tests/test_streaming_chunked.py``, DESIGN.md §8).

Optional exponential decay turns the counters into a recency-weighted
profile for long-lived accumulators (live tracking, adaptive
references): each observation's weight halves every
``decay_half_life_s`` seconds.  Decay is implemented with the inflated
weight trick — an observation at time ``t`` is recorded with weight
``exp(λ(t − t0))`` against a per-device reference time ``t0``, so the
whole histogram never needs rescaling on update (O(1) per frame); the
common inflation factor cancels in frequencies and weights, and the
counters are rebased once the factor grows past ``1e9`` to keep the
floats healthy.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:
    from repro.traces.table import FrameTable

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.histogram import BinSpec
from repro.core.parameters import NetworkParameter
from repro.core.signature import DEFAULT_MIN_OBSERVATIONS, Signature

#: Rebase a device's counters once its inflation factor exceeds this.
_REBASE_AT = 1e9


class _DeviceState:
    """One device's live accumulators."""

    __slots__ = ("counts", "totals", "t0_us", "last_seen_us")

    def __init__(self, now_us: float) -> None:
        #: ftype → per-bin weighted counts (plain lists: scalar
        #: increments are several times faster than ndarray item set).
        self.counts: dict[str, list[float]] = {}
        #: ftype → total weighted count (inflated units, like counts).
        self.totals: dict[str, float] = {}
        #: Decay reference time: weights are relative to this instant.
        self.t0_us = now_us
        self.last_seen_us = now_us


class StreamingSignatureBuilder:
    """Per-device incremental histograms with optional exponential decay.

    One builder is bound to a network parameter and a bin spec, like
    the batch :class:`~repro.core.signature.SignatureBuilder`; frames
    are fed through :meth:`update` and signatures can be read out at
    any instant.  Memory is O(resident devices × frame types × bins),
    independent of stream length; :meth:`evict` and :meth:`evict_idle`
    bound the resident set.
    """

    def __init__(
        self,
        parameter: NetworkParameter,
        bins: BinSpec | None = None,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        decay_half_life_s: float | None = None,
    ) -> None:
        if min_observations < 1:
            raise ValueError(f"min_observations must be >= 1: {min_observations}")
        if decay_half_life_s is not None and decay_half_life_s <= 0:
            raise ValueError(
                f"decay half-life must be positive: {decay_half_life_s}"
            )
        self.parameter = parameter
        self.bins = bins if bins is not None else parameter.default_bins()
        self.min_observations = min_observations
        self.decay_half_life_s = decay_half_life_s
        #: Decay rate λ in 1/µs (0 = decay off).
        self._decay_rate = (
            math.log(2.0) / (decay_half_life_s * 1e6) if decay_half_life_s else 0.0
        )
        self._stream = parameter.online()
        self._devices: dict[MacAddress, _DeviceState] = {}
        self._bin_count = self.bins.bin_count
        self.frames_seen = 0
        self.observations_kept = 0

    # -- ingest --------------------------------------------------------
    def update(self, frame: CapturedFrame) -> int:
        """Consume one frame; returns how many observations were kept."""
        self.frames_seen += 1
        observations = self._stream.push(frame)
        if not observations:
            return 0
        kept = 0
        now_us = frame.timestamp_us
        for observation in observations:
            index = self.bins.index(observation.value)
            if index is None:
                continue
            self._accumulate(observation.sender, observation.ftype_key, index, now_us)
            kept += 1
        self.observations_kept += kept
        return kept

    def _accumulate(
        self, sender: MacAddress, ftype_key: str, index: int, now_us: float
    ) -> None:
        """Fold one kept observation into the device's accumulators."""
        state = self._devices.get(sender)
        if state is None:
            state = _DeviceState(now_us)
            self._devices[sender] = state
        if self._decay_rate:
            weight = math.exp(self._decay_rate * (now_us - state.t0_us))
            if weight > _REBASE_AT:
                self._rebase(state, now_us)
                weight = 1.0
        else:
            weight = 1.0
        counts = state.counts.get(ftype_key)
        if counts is None:
            counts = [0.0] * self._bin_count
            state.counts[ftype_key] = counts
            state.totals[ftype_key] = 0.0
        counts[index] += weight
        state.totals[ftype_key] += weight
        state.last_seen_us = now_us

    def update_table(
        self, table: "FrameTable", lo: int = 0, hi: int | None = None
    ) -> int:
        """Consume rows ``[lo, hi)`` of a columnar chunk (vectorized).

        The chunked counterpart of feeding each backing frame through
        :meth:`update`: observations are extracted in one
        :meth:`~repro.core.parameters.ObservationStream.push_table`
        pass, binned with ``index_many`` and scattered into the
        per-device counters with one flat ``np.bincount`` — leaving
        accumulator state (counts, totals, ``t0_us``/``last_seen_us``,
        device and frame-type insertion order, extractor channel clock)
        bit-identical to the per-frame path.  The channel clock carries
        across calls, so a window spanning many chunks can be fed chunk
        by chunk.  With decay on, the extraction is still vectorized
        but observations are folded in one at a time so the exp/rebase
        arithmetic matches the per-frame path exactly.  Parameters
        without a columnar extractor fall back to per-frame updates
        over the chunk's backing frames.
        """
        if hi is None:
            hi = len(table)
        count = hi - lo
        if count <= 0:
            return 0
        pushed = self._stream.push_table(table, lo, hi)
        if pushed is None:  # no columnar fast path: reference loop
            kept = 0
            for row in range(lo, hi):
                kept += self.update(table.frame_at(row))
            return kept
        self.frames_seen += count
        bin_idx = self.bins.index_many(pushed.values)
        keep = bin_idx >= 0
        kept = int(np.count_nonzero(keep))
        if kept == 0:
            return 0
        self.observations_kept += kept
        sender_k = pushed.sender_idx[keep]
        ftype_k = pushed.ftype_idx[keep]
        bin_k = bin_idx[keep]
        stamps = table.timestamp_us[pushed.positions[keep]]
        if self._decay_rate:
            senders = table.senders
            ftype_keys = table.ftype_keys
            for code, fcode, index, now_us in zip(
                sender_k.tolist(), ftype_k.tolist(), bin_k.tolist(), stamps.tolist()
            ):
                self._accumulate(senders[code], ftype_keys[fcode], index, now_us)
            return kept
        self._scatter(table, sender_k, ftype_k, bin_k, stamps, kept)
        return kept

    def _scatter(
        self,
        table: "FrameTable",
        sender_k: np.ndarray,
        ftype_k: np.ndarray,
        bin_k: np.ndarray,
        stamps: np.ndarray,
        kept: int,
    ) -> None:
        """Decay-free batch fold: one bincount over (sender, ftype, bin).

        Increments are unit weights, so batch-summed integer counts
        added to the held float counters reproduce the one-at-a-time
        additions exactly (integers are exact in float64).  Devices and
        frame types are visited in first-kept-observation order via the
        reversed-scatter trick (duplicate fancy-assignment indices keep
        the last write), preserving the per-frame path's dict orders.
        """
        n_senders = len(table.senders)
        n_ftypes = len(table.ftype_keys)
        n_bins = self._bin_count
        pair = sender_k * n_ftypes + ftype_k
        counts = (
            np.bincount(pair * n_bins + bin_k, minlength=n_senders * n_ftypes * n_bins)
            .astype(np.float64)
            .reshape(n_senders, n_ftypes, n_bins)
        )
        order = np.arange(kept, dtype=np.int64)
        first_pair = np.full(n_senders * n_ftypes, kept, dtype=np.int64)
        first_pair[pair[::-1]] = order[::-1]
        first_pair = first_pair.reshape(n_senders, n_ftypes)
        first_sender = first_pair.min(axis=1)
        last_sender = np.zeros(n_senders, dtype=np.int64)
        last_sender[sender_k] = order
        active = np.flatnonzero(first_sender < kept).tolist()
        active.sort(key=first_sender.__getitem__)
        for code in active:
            device = table.senders[code]
            state = self._devices.get(device)
            if state is None:
                state = _DeviceState(float(stamps[first_sender[code]]))
                self._devices[device] = state
            state.last_seen_us = float(stamps[last_sender[code]])
            present = np.flatnonzero(first_pair[code] < kept).tolist()
            present.sort(key=first_pair[code].__getitem__)
            for fcode in present:
                key = table.ftype_keys[fcode]
                batch = counts[code, fcode]
                held = state.counts.get(key)
                if held is None:
                    state.counts[key] = batch.tolist()
                    state.totals[key] = float(batch.sum())
                else:
                    state.counts[key] = (np.asarray(held) + batch).tolist()
                    state.totals[key] += float(batch.sum())

    def _rebase(self, state: _DeviceState, now_us: float) -> None:
        """Re-anchor a device's inflated counters at ``now_us``."""
        deflate = math.exp(-self._decay_rate * (now_us - state.t0_us))
        for counts in state.counts.values():
            for index, value in enumerate(counts):
                counts[index] = value * deflate
        for ftype_key in state.totals:
            state.totals[ftype_key] *= deflate
        state.t0_us = now_us

    # -- read-out ------------------------------------------------------
    def observation_mass(
        self, device: MacAddress, now_us: float | None = None
    ) -> float:
        """The device's decayed total observation mass (0 if absent).

        ``now_us`` anchors the decay evaluation (defaults to the
        device's last update, like :meth:`signature`).  With decay off
        this is exactly the batch builder's total observation count.
        """
        state = self._devices.get(device)
        if state is None:
            return 0.0
        total = sum(state.totals.values())
        if self._decay_rate:
            anchor = state.last_seen_us if now_us is None else now_us
            total *= math.exp(-self._decay_rate * (anchor - state.t0_us))
        return total

    def signature(
        self, device: MacAddress, now_us: float | None = None
    ) -> Signature | None:
        """The device's current signature (``None`` below the gate).

        ``now_us`` anchors the decay evaluation (defaults to the
        device's last update); frequencies and weights are invariant to
        it, only the absolute mass used for gating and the reported
        observation counts decay.
        """
        state = self._devices.get(device)
        if state is None:
            return None
        deflate = 1.0
        if self._decay_rate:
            anchor = state.last_seen_us if now_us is None else now_us
            deflate = math.exp(-self._decay_rate * (anchor - state.t0_us))
        total = sum(state.totals.values())
        if total * deflate < self.min_observations:
            return None
        histograms: dict[str, np.ndarray] = {}
        weights: dict[str, float] = {}
        observation_counts: dict[str, int] = {}
        for ftype_key, counts in state.counts.items():
            ftype_total = state.totals[ftype_key]
            if ftype_total <= 0.0:
                continue
            histograms[ftype_key] = np.asarray(counts, dtype=np.float64) / ftype_total
            weights[ftype_key] = ftype_total / total
            observation_counts[ftype_key] = int(round(ftype_total * deflate))
        if not histograms:
            return None
        return Signature(
            histograms=histograms,
            weights=weights,
            observation_counts=observation_counts,
        )

    def signatures(
        self, now_us: float | None = None
    ) -> dict[MacAddress, Signature]:
        """Signatures of every resident device clearing the gate."""
        out: dict[MacAddress, Signature] = {}
        for device in self._devices:
            signature = self.signature(device, now_us)
            if signature is not None:
                out[device] = signature
        return out

    # -- checkpointing -------------------------------------------------
    def export_state(self) -> dict:
        """Everything needed to resume this builder mid-capture.

        The returned structure is JSON-shaped except for the extractor
        state, which may embed a
        :class:`~repro.dot11.capture.CapturedFrame`; the checkpoint
        layer (:mod:`repro.persistence.checkpoint`) serialises that.
        """
        return {
            "parameter": self.parameter.name,
            "bin_count": self._bin_count,
            "min_observations": self.min_observations,
            "decay_half_life_s": self.decay_half_life_s,
            "frames_seen": self.frames_seen,
            "observations_kept": self.observations_kept,
            "stream": self._stream.export_state(),
            "devices": [
                {
                    "mac": device.value,
                    "t0_us": state.t0_us,
                    "last_seen_us": state.last_seen_us,
                    "counts": {
                        ftype: list(counts) for ftype, counts in state.counts.items()
                    },
                    "totals": dict(state.totals),
                }
                for device, state in self._devices.items()
            ],
        }

    def restore_state(self, payload: dict) -> None:
        """Resume from :meth:`export_state` output.

        The builder must have been constructed with the same parameter,
        binning and gating configuration the snapshot was taken under —
        a mismatch raises ``ValueError`` instead of silently mixing
        incompatible histograms.
        """
        for key, mine in (
            ("parameter", self.parameter.name),
            ("bin_count", self._bin_count),
            ("min_observations", self.min_observations),
            ("decay_half_life_s", self.decay_half_life_s),
        ):
            theirs = payload.get(key)
            if theirs != mine:
                raise ValueError(
                    f"checkpoint {key} mismatch: snapshot has {theirs!r}, "
                    f"this builder has {mine!r}"
                )
        self._stream.restore_state(payload.get("stream", {}))
        self.frames_seen = int(payload["frames_seen"])
        self.observations_kept = int(payload["observations_kept"])
        self._devices = {}
        for entry in payload["devices"]:
            state = _DeviceState(float(entry["t0_us"]))
            state.last_seen_us = float(entry["last_seen_us"])
            state.counts = {
                ftype: [float(value) for value in counts]
                for ftype, counts in entry["counts"].items()
            }
            state.totals = {
                ftype: float(total) for ftype, total in entry["totals"].items()
            }
            self._devices[MacAddress(int(entry["mac"]))] = state
        return None

    # -- residency -----------------------------------------------------
    @property
    def resident_count(self) -> int:
        """Number of devices currently holding accumulators."""
        return len(self._devices)

    def devices(self) -> Iterator[MacAddress]:
        """Resident devices, in first-observation order."""
        return iter(self._devices)

    def last_seen_us(self, device: MacAddress) -> float | None:
        """When the device last contributed a kept observation."""
        state = self._devices.get(device)
        return None if state is None else state.last_seen_us

    def evict(self, device: MacAddress) -> bool:
        """Drop one device's accumulators; ``False`` if absent."""
        return self._devices.pop(device, None) is not None

    def evict_idle(self, now_us: float, idle_timeout_s: float) -> list[MacAddress]:
        """Drop devices with no kept observation for ``idle_timeout_s``.

        Returns the evicted devices.  This bounds the resident set on
        open-ended streams at the cost of forgetting devices that
        return after a long silence — exactness is traded for memory,
        so it is opt-in (see ``WindowConfig.idle_timeout_s``).
        """
        horizon = now_us - idle_timeout_s * 1e6
        victims = [
            device
            for device, state in self._devices.items()
            if state.last_seen_us < horizon
        ]
        for device in victims:
            del self._devices[device]
        return victims
