"""Online signature construction: one frame at a time, O(1) per frame.

:class:`StreamingSignatureBuilder` is the incremental counterpart of
:class:`~repro.core.signature.SignatureBuilder`: it consumes frames
through the parameter's :meth:`~repro.core.parameters.NetworkParameter.online`
extractor and maintains per-device, per-frame-type bin counters.  With
decay disabled the counters are *exactly* the batch builder's histogram
counts, so :meth:`signature`/:meth:`signatures` reproduce
:meth:`SignatureBuilder.build` bin-for-bin on the same frames
(property-tested in ``tests/test_streaming_builder.py``).

Optional exponential decay turns the counters into a recency-weighted
profile for long-lived accumulators (live tracking, adaptive
references): each observation's weight halves every
``decay_half_life_s`` seconds.  Decay is implemented with the inflated
weight trick — an observation at time ``t`` is recorded with weight
``exp(λ(t − t0))`` against a per-device reference time ``t0``, so the
whole histogram never needs rescaling on update (O(1) per frame); the
common inflation factor cancels in frequencies and weights, and the
counters are rebased once the factor grows past ``1e9`` to keep the
floats healthy.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.histogram import BinSpec
from repro.core.parameters import NetworkParameter
from repro.core.signature import DEFAULT_MIN_OBSERVATIONS, Signature

#: Rebase a device's counters once its inflation factor exceeds this.
_REBASE_AT = 1e9


class _DeviceState:
    """One device's live accumulators."""

    __slots__ = ("counts", "totals", "t0_us", "last_seen_us")

    def __init__(self, now_us: float) -> None:
        #: ftype → per-bin weighted counts (plain lists: scalar
        #: increments are several times faster than ndarray item set).
        self.counts: dict[str, list[float]] = {}
        #: ftype → total weighted count (inflated units, like counts).
        self.totals: dict[str, float] = {}
        #: Decay reference time: weights are relative to this instant.
        self.t0_us = now_us
        self.last_seen_us = now_us


class StreamingSignatureBuilder:
    """Per-device incremental histograms with optional exponential decay.

    One builder is bound to a network parameter and a bin spec, like
    the batch :class:`~repro.core.signature.SignatureBuilder`; frames
    are fed through :meth:`update` and signatures can be read out at
    any instant.  Memory is O(resident devices × frame types × bins),
    independent of stream length; :meth:`evict` and :meth:`evict_idle`
    bound the resident set.
    """

    def __init__(
        self,
        parameter: NetworkParameter,
        bins: BinSpec | None = None,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        decay_half_life_s: float | None = None,
    ) -> None:
        if min_observations < 1:
            raise ValueError(f"min_observations must be >= 1: {min_observations}")
        if decay_half_life_s is not None and decay_half_life_s <= 0:
            raise ValueError(
                f"decay half-life must be positive: {decay_half_life_s}"
            )
        self.parameter = parameter
        self.bins = bins if bins is not None else parameter.default_bins()
        self.min_observations = min_observations
        self.decay_half_life_s = decay_half_life_s
        #: Decay rate λ in 1/µs (0 = decay off).
        self._decay_rate = (
            math.log(2.0) / (decay_half_life_s * 1e6) if decay_half_life_s else 0.0
        )
        self._stream = parameter.online()
        self._devices: dict[MacAddress, _DeviceState] = {}
        self._bin_count = self.bins.bin_count
        self.frames_seen = 0
        self.observations_kept = 0

    # -- ingest --------------------------------------------------------
    def update(self, frame: CapturedFrame) -> int:
        """Consume one frame; returns how many observations were kept."""
        self.frames_seen += 1
        observations = self._stream.push(frame)
        if not observations:
            return 0
        kept = 0
        for observation in observations:
            index = self.bins.index(observation.value)
            if index is None:
                continue
            now_us = frame.timestamp_us
            state = self._devices.get(observation.sender)
            if state is None:
                state = _DeviceState(now_us)
                self._devices[observation.sender] = state
            if self._decay_rate:
                weight = math.exp(self._decay_rate * (now_us - state.t0_us))
                if weight > _REBASE_AT:
                    self._rebase(state, now_us)
                    weight = 1.0
            else:
                weight = 1.0
            counts = state.counts.get(observation.ftype_key)
            if counts is None:
                counts = [0.0] * self._bin_count
                state.counts[observation.ftype_key] = counts
                state.totals[observation.ftype_key] = 0.0
            counts[index] += weight
            state.totals[observation.ftype_key] += weight
            state.last_seen_us = now_us
            kept += 1
        self.observations_kept += kept
        return kept

    def _rebase(self, state: _DeviceState, now_us: float) -> None:
        """Re-anchor a device's inflated counters at ``now_us``."""
        deflate = math.exp(-self._decay_rate * (now_us - state.t0_us))
        for counts in state.counts.values():
            for index, value in enumerate(counts):
                counts[index] = value * deflate
        for ftype_key in state.totals:
            state.totals[ftype_key] *= deflate
        state.t0_us = now_us

    # -- read-out ------------------------------------------------------
    def observation_mass(
        self, device: MacAddress, now_us: float | None = None
    ) -> float:
        """The device's decayed total observation mass (0 if absent).

        ``now_us`` anchors the decay evaluation (defaults to the
        device's last update, like :meth:`signature`).  With decay off
        this is exactly the batch builder's total observation count.
        """
        state = self._devices.get(device)
        if state is None:
            return 0.0
        total = sum(state.totals.values())
        if self._decay_rate:
            anchor = state.last_seen_us if now_us is None else now_us
            total *= math.exp(-self._decay_rate * (anchor - state.t0_us))
        return total

    def signature(
        self, device: MacAddress, now_us: float | None = None
    ) -> Signature | None:
        """The device's current signature (``None`` below the gate).

        ``now_us`` anchors the decay evaluation (defaults to the
        device's last update); frequencies and weights are invariant to
        it, only the absolute mass used for gating and the reported
        observation counts decay.
        """
        state = self._devices.get(device)
        if state is None:
            return None
        deflate = 1.0
        if self._decay_rate:
            anchor = state.last_seen_us if now_us is None else now_us
            deflate = math.exp(-self._decay_rate * (anchor - state.t0_us))
        total = sum(state.totals.values())
        if total * deflate < self.min_observations:
            return None
        histograms: dict[str, np.ndarray] = {}
        weights: dict[str, float] = {}
        observation_counts: dict[str, int] = {}
        for ftype_key, counts in state.counts.items():
            ftype_total = state.totals[ftype_key]
            if ftype_total <= 0.0:
                continue
            histograms[ftype_key] = np.asarray(counts, dtype=np.float64) / ftype_total
            weights[ftype_key] = ftype_total / total
            observation_counts[ftype_key] = int(round(ftype_total * deflate))
        if not histograms:
            return None
        return Signature(
            histograms=histograms,
            weights=weights,
            observation_counts=observation_counts,
        )

    def signatures(
        self, now_us: float | None = None
    ) -> dict[MacAddress, Signature]:
        """Signatures of every resident device clearing the gate."""
        out: dict[MacAddress, Signature] = {}
        for device in self._devices:
            signature = self.signature(device, now_us)
            if signature is not None:
                out[device] = signature
        return out

    # -- checkpointing -------------------------------------------------
    def export_state(self) -> dict:
        """Everything needed to resume this builder mid-capture.

        The returned structure is JSON-shaped except for the extractor
        state, which may embed a
        :class:`~repro.dot11.capture.CapturedFrame`; the checkpoint
        layer (:mod:`repro.persistence.checkpoint`) serialises that.
        """
        return {
            "parameter": self.parameter.name,
            "bin_count": self._bin_count,
            "min_observations": self.min_observations,
            "decay_half_life_s": self.decay_half_life_s,
            "frames_seen": self.frames_seen,
            "observations_kept": self.observations_kept,
            "stream": self._stream.export_state(),
            "devices": [
                {
                    "mac": device.value,
                    "t0_us": state.t0_us,
                    "last_seen_us": state.last_seen_us,
                    "counts": {
                        ftype: list(counts) for ftype, counts in state.counts.items()
                    },
                    "totals": dict(state.totals),
                }
                for device, state in self._devices.items()
            ],
        }

    def restore_state(self, payload: dict) -> None:
        """Resume from :meth:`export_state` output.

        The builder must have been constructed with the same parameter,
        binning and gating configuration the snapshot was taken under —
        a mismatch raises ``ValueError`` instead of silently mixing
        incompatible histograms.
        """
        for key, mine in (
            ("parameter", self.parameter.name),
            ("bin_count", self._bin_count),
            ("min_observations", self.min_observations),
            ("decay_half_life_s", self.decay_half_life_s),
        ):
            theirs = payload.get(key)
            if theirs != mine:
                raise ValueError(
                    f"checkpoint {key} mismatch: snapshot has {theirs!r}, "
                    f"this builder has {mine!r}"
                )
        self._stream.restore_state(payload.get("stream", {}))
        self.frames_seen = int(payload["frames_seen"])
        self.observations_kept = int(payload["observations_kept"])
        self._devices = {}
        for entry in payload["devices"]:
            state = _DeviceState(float(entry["t0_us"]))
            state.last_seen_us = float(entry["last_seen_us"])
            state.counts = {
                ftype: [float(value) for value in counts]
                for ftype, counts in entry["counts"].items()
            }
            state.totals = {
                ftype: float(total) for ftype, total in entry["totals"].items()
            }
            self._devices[MacAddress(int(entry["mac"]))] = state
        return None

    # -- residency -----------------------------------------------------
    @property
    def resident_count(self) -> int:
        """Number of devices currently holding accumulators."""
        return len(self._devices)

    def devices(self) -> Iterator[MacAddress]:
        """Resident devices, in first-observation order."""
        return iter(self._devices)

    def last_seen_us(self, device: MacAddress) -> float | None:
        """When the device last contributed a kept observation."""
        state = self._devices.get(device)
        return None if state is None else state.last_seen_us

    def evict(self, device: MacAddress) -> bool:
        """Drop one device's accumulators; ``False`` if absent."""
        return self._devices.pop(device, None) is not None

    def evict_idle(self, now_us: float, idle_timeout_s: float) -> list[MacAddress]:
        """Drop devices with no kept observation for ``idle_timeout_s``.

        Returns the evicted devices.  This bounds the resident set on
        open-ended streams at the cost of forgetting devices that
        return after a long silence — exactness is traded for memory,
        so it is opt-in (see ``WindowConfig.idle_timeout_s``).
        """
        horizon = now_us - idle_timeout_s * 1e6
        victims = [
            device
            for device, state in self._devices.items()
            if state.last_seen_us < horizon
        ]
        for device in victims:
            del self._devices[device]
        return victims
