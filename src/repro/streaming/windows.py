"""Detection windows over an unbounded frame stream.

:class:`WindowManager` reproduces the evaluation protocol's windowing
(:meth:`repro.traces.trace.Trace.windows`) online: windows are aligned
to the first frame's timestamp and advance by a fixed slide.  With
``slide_s == window_s`` (the default) the windows tumble exactly like
the batch pipeline's; a smaller slide yields overlapping sliding
windows (each frame feeds every window containing it, at most
``ceil(window_s / slide_s)`` concurrently resident).

Each open window owns one decay-free
:class:`~repro.streaming.builder.StreamingSignatureBuilder`, so closing
a window yields one candidate signature per device that cleared the
minimum-observation gate — identical to running the batch builder on
the window's frame list — after which the window's state is dropped.
Memory is therefore bounded by the device population of the open
windows, never by the stream length.  Optional idle eviction
additionally drops per-device accumulators that stay silent inside a
long window (see :meth:`StreamingSignatureBuilder.evict_idle`).

Window indices count *slide positions* from the stream origin, so they
stay aligned with the batch pipeline's enumeration even when wholly
empty stretches of the stream never open a window.

Frames arrive either one at a time (:meth:`WindowManager.update`, the
reference path) or as columnar chunks
(:meth:`WindowManager.update_table`), which the manager cuts at window
boundaries so each constant-open-set span routes to the open builders
as one vectorized update — same closures, evictions, and state, in
the same order (DESIGN.md §8).

One deliberate edge diverges from the batch path: when the capture's
*last* frame sits exactly on a window boundary, ``Trace.windows``
(whose final window is right-closed, DESIGN.md §6) folds it into the
final regular window, while an online manager — which cannot know a
frame is the last one until the stream ends — opens a fresh window for
it and emits that window at :meth:`WindowManager.flush`.  Every frame
still lands in exactly one window either way; only the terminal
window split differs, and only on that measure-zero boundary case.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

if TYPE_CHECKING:
    from repro.traces.table import FrameTable

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.signature import Signature
from repro.streaming.builder import StreamingSignatureBuilder

#: Idle-eviction sweeps run at most once per this many frames.
_EVICTION_SWEEP_FRAMES = 512


@dataclass(frozen=True)
class WindowConfig:
    """Streaming window parameters.

    ``slide_s=None`` means tumbling windows (slide == window).
    ``idle_timeout_s`` enables in-window idle-device eviction; leave
    ``None`` (the default) for exact batch equivalence.
    """

    window_s: float = 300.0
    slide_s: float | None = None
    idle_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"window size must be positive: {self.window_s}")
        slide = self.slide_s
        if slide is not None and not 0 < slide <= self.window_s:
            raise ValueError(
                f"slide must be in (0, window_s]: {slide} vs {self.window_s}"
            )
        if self.idle_timeout_s is not None and self.idle_timeout_s <= 0:
            raise ValueError(
                f"idle timeout must be positive: {self.idle_timeout_s}"
            )

    @property
    def effective_slide_s(self) -> float:
        """The slide step (tumbling = the window length itself)."""
        return self.window_s if self.slide_s is None else self.slide_s


@dataclass(slots=True)
class ClosedWindow:
    """Everything a completed detection window produced."""

    index: int
    start_us: float
    end_us: float
    frame_count: int
    #: Devices that cleared the minimum-observation gate.
    signatures: dict[MacAddress, Signature]
    #: Every attributable sender seen in the window (superset of
    #: ``signatures`` — low-activity devices appear here only).
    senders: set[MacAddress]
    #: Devices dropped mid-window by idle eviction.
    evicted: list[MacAddress] = field(default_factory=list)


class _OpenWindow:
    __slots__ = ("index", "start_us", "end_us", "builder", "frame_count", "senders", "evicted")

    def __init__(self, index: int, start_us: float, end_us: float, builder) -> None:
        self.index = index
        self.start_us = start_us
        self.end_us = end_us
        self.builder = builder
        self.frame_count = 0
        self.senders: set[MacAddress] = set()
        self.evicted: list[MacAddress] = []


class WindowManager:
    """Routes a frame stream into (possibly overlapping) windows."""

    def __init__(
        self,
        builder_factory: Callable[[], StreamingSignatureBuilder],
        config: WindowConfig | None = None,
    ) -> None:
        self.config = config if config is not None else WindowConfig()
        self._builder_factory = builder_factory
        # Windows open and close in index order, so a deque gives O(1)
        # closes (popleft) instead of the former list.pop(0) front shift.
        self._windows: deque[_OpenWindow] = deque()
        self._origin_us: float | None = None
        self._next_index = 0
        self._frames_since_sweep = 0
        #: Prompt idle-eviction notification: called as
        #: ``on_evict(window_index, device, sweep_t_us)`` the moment a
        #: sweep drops a device, so live sinks see evictions when they
        #: happen instead of at window close (``ClosedWindow.evicted``
        #: still carries the per-window summary).
        self.on_evict: Callable[[int, MacAddress, float], None] | None = None

    # ------------------------------------------------------------------
    def update(self, frame: CapturedFrame) -> list[ClosedWindow]:
        """Feed one frame; returns the windows it caused to close.

        Frames must arrive in non-decreasing timestamp order (the
        capture invariant).  Windows whose end lies at or before the
        frame's timestamp close *before* the frame is routed, in index
        order.
        """
        t = frame.timestamp_us
        if self._origin_us is None:
            self._origin_us = t
        closed = self._close_until(t)
        self._open_windows_containing(t)
        sender = frame.sender
        for window in self._windows:
            window.frame_count += 1
            window.builder.update(frame)
            if sender is not None:
                window.senders.add(sender)
        if self.config.idle_timeout_s is not None:
            self._frames_since_sweep += 1
            if self._frames_since_sweep >= _EVICTION_SWEEP_FRAMES:
                self._frames_since_sweep = 0
                self._sweep(t)
        return closed

    def update_table(self, chunk: "FrameTable") -> Iterator[tuple]:
        """Feed one columnar chunk; yields the chunk's event timeline.

        The chunked counterpart of calling :meth:`update` per backing
        frame: the chunk is cut at window boundaries (``searchsorted``
        on the timestamp column) and each maximal span with a constant
        open-window set is routed to every open builder in one
        vectorized :meth:`StreamingSignatureBuilder.update_table` call.
        Yields ``("closed", ClosedWindow)`` items exactly when — and in
        the order — the per-frame path would produce them, and
        ``("frames", lo, hi)`` items after rows ``[lo, hi)`` have been
        routed (the engine forwards those spans to frame-level
        analyzers).  Idle-eviction sweeps keep their per-frame cadence
        and report through :attr:`on_evict`.
        """
        count = len(chunk)
        if count == 0:
            return
        stamps = chunk.timestamp_us
        if self._origin_us is None:
            self._origin_us = float(stamps[0])
        slide_us = self.config.effective_slide_s * 1e6
        pos = 0
        while pos < count:
            t_pos = float(stamps[pos])
            closed = self._close_until(t_pos)
            self._open_windows_containing(t_pos)
            # The open set stays constant until the earliest open end
            # (windows close in index order, so it is the head's) or
            # the next slide position, whichever a frame reaches first.
            horizon = min(
                self._windows[0].end_us,
                self._origin_us + self._next_index * slide_us,
            )
            hi = int(np.searchsorted(stamps, horizon, side="left"))
            if closed:
                # Route the triggering frame before reporting the
                # closures: the per-frame path returns its closures
                # only after the frame has been routed, and the engine
                # reads live state (resident_devices) at emission.
                self._route(chunk, pos, pos + 1)
                for window in closed:
                    yield ("closed", window)
                self._route(chunk, pos + 1, hi)
            else:
                self._route(chunk, pos, hi)
            yield ("frames", pos, hi)
            pos = hi

    def flush(self) -> list[ClosedWindow]:
        """Close every still-open window (end of stream)."""
        closed = [self._close(window) for window in self._windows]
        self._windows.clear()
        return closed

    # ------------------------------------------------------------------
    def _close_until(self, t_us: float) -> list[ClosedWindow]:
        closed: list[ClosedWindow] = []
        while self._windows and self._windows[0].end_us <= t_us:
            closed.append(self._close(self._windows.popleft()))
        return closed

    def _route(self, chunk: "FrameTable", lo: int, hi: int) -> None:
        """Route chunk rows ``[lo, hi)``, splitting at sweep points."""
        if hi <= lo:
            return
        if self.config.idle_timeout_s is None:
            self._route_span(chunk, lo, hi)
            return
        stamps = chunk.timestamp_us
        while lo < hi:
            cut = min(hi, lo + _EVICTION_SWEEP_FRAMES - self._frames_since_sweep)
            self._route_span(chunk, lo, cut)
            self._frames_since_sweep += cut - lo
            if self._frames_since_sweep >= _EVICTION_SWEEP_FRAMES:
                self._frames_since_sweep = 0
                self._sweep(float(stamps[cut - 1]))
            lo = cut

    def _route_span(self, chunk: "FrameTable", lo: int, hi: int) -> None:
        count = hi - lo
        if count <= 0:
            return
        codes = np.unique(chunk.sender_idx[lo:hi])
        if codes.size and codes[0] == -1:
            codes = codes[1:]
        senders = [chunk.senders[code] for code in codes.tolist()]
        for window in self._windows:
            window.frame_count += count
            window.builder.update_table(chunk, lo, hi)
            window.senders.update(senders)

    def _sweep(self, now_us: float) -> None:
        """One idle-eviction sweep across the open windows."""
        for window in self._windows:
            victims = window.builder.evict_idle(now_us, self.config.idle_timeout_s)
            if victims:
                window.evicted.extend(victims)
                if self.on_evict is not None:
                    for device in victims:
                        self.on_evict(window.index, device, now_us)

    def _close(self, window: _OpenWindow) -> ClosedWindow:
        return ClosedWindow(
            index=window.index,
            start_us=window.start_us,
            end_us=window.end_us,
            frame_count=window.frame_count,
            signatures=window.builder.signatures(),
            senders=window.senders,
            evicted=window.evicted,
        )

    def _open_windows_containing(self, t_us: float) -> None:
        assert self._origin_us is not None
        slide_us = self.config.effective_slide_s * 1e6
        window_us = self.config.window_s * 1e6
        # First slide position whose window [start, start + W) covers t.
        earliest = int((t_us - self._origin_us - window_us) // slide_us) + 1
        if earliest > self._next_index:
            self._next_index = earliest  # skip windows that never saw a frame
        while True:
            start_us = self._origin_us + self._next_index * slide_us
            if start_us > t_us:
                break
            self._windows.append(
                _OpenWindow(
                    index=self._next_index,
                    start_us=start_us,
                    end_us=start_us + window_us,
                    builder=self._builder_factory(),
                )
            )
            self._next_index += 1

    # -- checkpointing -------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the windowing state (open builders included)."""
        return {
            "config": {
                "window_s": self.config.window_s,
                "slide_s": self.config.slide_s,
                "idle_timeout_s": self.config.idle_timeout_s,
            },
            "origin_us": self._origin_us,
            "next_index": self._next_index,
            "frames_since_sweep": self._frames_since_sweep,
            "open": [
                {
                    "index": window.index,
                    "start_us": window.start_us,
                    "end_us": window.end_us,
                    "frame_count": window.frame_count,
                    "senders": sorted(sender.value for sender in window.senders),
                    "evicted": [device.value for device in window.evicted],
                    "builder": window.builder.export_state(),
                }
                for window in self._windows
            ],
        }

    def restore_state(self, payload: dict) -> None:
        """Resume from :meth:`export_state` output.

        The manager must have been constructed with the same
        :class:`WindowConfig` the snapshot was taken under; each open
        window gets a fresh builder from the factory, re-armed with the
        snapshot's accumulators.
        """
        config = payload.get("config", {})
        mine = {
            "window_s": self.config.window_s,
            "slide_s": self.config.slide_s,
            "idle_timeout_s": self.config.idle_timeout_s,
        }
        if config != mine:
            raise ValueError(
                f"checkpoint window config mismatch: snapshot has {config}, "
                f"this manager has {mine}"
            )
        origin = payload.get("origin_us")
        self._origin_us = None if origin is None else float(origin)
        self._next_index = int(payload["next_index"])
        self._frames_since_sweep = int(payload.get("frames_since_sweep", 0))
        self._windows = deque()
        for entry in payload["open"]:
            window = _OpenWindow(
                index=int(entry["index"]),
                start_us=float(entry["start_us"]),
                end_us=float(entry["end_us"]),
                builder=self._builder_factory(),
            )
            window.frame_count = int(entry["frame_count"])
            window.senders = {MacAddress(int(value)) for value in entry["senders"]}
            window.evicted = [MacAddress(int(value)) for value in entry["evicted"]]
            window.builder.restore_state(entry["builder"])
            self._windows.append(window)

    # ------------------------------------------------------------------
    @property
    def open_windows(self) -> int:
        """How many windows are currently resident."""
        return len(self._windows)

    def resident_devices(self) -> int:
        """Total per-device accumulators across open windows."""
        return sum(window.builder.resident_count for window in self._windows)

    def window_spans(self) -> Iterator[tuple[int, float, float]]:
        """(index, start_us, end_us) of the open windows."""
        for window in self._windows:
            yield window.index, window.start_us, window.end_us
