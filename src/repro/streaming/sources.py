"""Pluggable frame sources for the streaming engine.

A frame source is simply an iterable of
:class:`~repro.dot11.capture.CapturedFrame` in non-decreasing
timestamp order; the engine pulls from it one frame at a time, so a
source backed by a file or a live feed keeps the whole pipeline in
bounded memory.  Built-ins:

* :func:`pcap_source` — chunked iteration over an on-disk radiotap
  pcap (:func:`repro.radiotap.pcap.iter_trace_pcap`), never
  materialising the capture;
* :func:`simulation_source` — the discrete-event simulator as a live
  feed (:meth:`repro.simulator.scenario.Scenario.stream`), draining
  the monitor's buffer as simulated time advances;
* :func:`replay_source` — an in-memory frame list (tests, the batch
  pipeline's traces).

Each source also has a *chunked* counterpart yielding columnar
:class:`~repro.traces.table.FrameTable` slices for
:meth:`~repro.streaming.engine.StreamEngine.run_chunked`
(:func:`pcap_chunk_source`, :func:`simulation_chunk_source`,
:func:`replay_chunk_source`); :func:`table_chunks` adapts any frame
iterable.  Chunking trades a bounded amount of latency (at most
``chunk_frames`` of buffering) for vectorized ingest — the emitted
events are bit-identical to the per-frame path.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Iterable, Iterator

from repro.dot11.capture import CapturedFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.traces.table import FrameTable

#: A frame source: any time-ordered iterable of captured frames.
FrameSource = Iterable[CapturedFrame]

#: A chunked source: time-ordered columnar chunks for ``run_chunked``.
TableSource = Iterable["FrameTable"]

#: Default columnar chunk size — large enough to amortise the
#: vectorized dispatch, small enough to bound buffering latency.
DEFAULT_CHUNK_FRAMES = 8192


def pcap_source(
    source: str | Path | BinaryIO | bytes, skip_bad_fcs: bool = False
) -> Iterator[CapturedFrame]:
    """Stream frames from a radiotap pcap in O(1) memory."""
    from repro.radiotap.pcap import iter_trace_pcap

    return iter_trace_pcap(source, skip_bad_fcs=skip_bad_fcs)


def simulation_source(scenario, chunk_s: float = 5.0) -> Iterator[CapturedFrame]:
    """Run a :class:`~repro.simulator.scenario.Scenario` as a live feed."""
    return scenario.stream(chunk_s=chunk_s)


def replay_source(frames: Iterable[CapturedFrame]) -> Iterator[CapturedFrame]:
    """Replay an in-memory frame sequence (testing convenience)."""
    return iter(frames)


def table_chunks(
    frames: Iterable[CapturedFrame], chunk_frames: int = DEFAULT_CHUNK_FRAMES
) -> Iterator["FrameTable"]:
    """Batch any frame iterable into columnar ``chunk_frames`` chunks."""
    if chunk_frames < 1:
        raise ValueError(f"chunk_frames must be >= 1: {chunk_frames}")
    from repro.traces.table import FrameTable

    batch: list[CapturedFrame] = []
    for frame in frames:
        batch.append(frame)
        if len(batch) >= chunk_frames:
            yield FrameTable.from_frames(batch)
            batch = []
    if batch:
        yield FrameTable.from_frames(batch)


def pcap_chunk_source(
    source: str | Path | BinaryIO | bytes,
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
    skip_bad_fcs: bool = False,
) -> Iterator["FrameTable"]:
    """Stream a radiotap pcap as columnar chunks (bounded memory)."""
    from repro.radiotap.pcap import iter_trace_tables

    return iter_trace_tables(
        source, chunk_frames=chunk_frames, skip_bad_fcs=skip_bad_fcs
    )


def simulation_chunk_source(
    scenario, chunk_s: float = 5.0, chunk_frames: int = DEFAULT_CHUNK_FRAMES
) -> Iterator["FrameTable"]:
    """Run a simulator scenario as a columnar chunk feed."""
    return table_chunks(scenario.stream(chunk_s=chunk_s), chunk_frames)


def skip_processed_frames(
    source: FrameSource, count: int, horizon_us: float
) -> Iterator[CapturedFrame]:
    """Drop the ``count`` leading frames a resumed checkpoint already saw.

    Only frames at or before the checkpoint's capture clock
    (``horizon_us``) are candidates for skipping, so resuming against a
    *continuation* capture (which starts after the horizon) passes
    everything through, while resuming against the original capture
    skips exactly the processed prefix.
    """
    skipped = 0
    for frame in source:
        if skipped < count and frame.timestamp_us <= horizon_us:
            skipped += 1
            continue
        yield frame


def skip_processed_chunks(
    chunks: TableSource, count: int, horizon_us: float
) -> Iterator["FrameTable"]:
    """Chunked counterpart of :func:`skip_processed_frames`.

    Trims the already-processed prefix off the leading
    :class:`~repro.traces.table.FrameTable` chunks (zero-copy views),
    applying the same at-or-before-the-horizon guard so continuation
    captures pass through untouched.  Wholly-skipped chunks are not
    yielded at all.
    """
    import numpy as np

    remaining = count
    for chunk in chunks:
        if remaining:
            eligible = int(
                np.searchsorted(chunk.timestamp_us, horizon_us, side="right")
            )
            drop = min(remaining, eligible)
            remaining -= drop
            if drop == len(chunk):
                continue
            if drop:
                chunk = chunk.slice_rows(drop, len(chunk))
        yield chunk


def replay_chunk_source(
    frames: "Iterable[CapturedFrame] | FrameTable",
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
) -> Iterator["FrameTable"]:
    """Replay in-memory frames as columnar chunks.

    An already-columnar :class:`~repro.traces.table.FrameTable` is
    sliced into zero-copy views; anything else is interned through
    :func:`table_chunks`.
    """
    from repro.traces.table import FrameTable

    if isinstance(frames, FrameTable):
        if chunk_frames < 1:
            raise ValueError(f"chunk_frames must be >= 1: {chunk_frames}")
        return (
            frames.slice_rows(lo, min(lo + chunk_frames, len(frames)))
            for lo in range(0, len(frames), chunk_frames)
        )
    return table_chunks(frames, chunk_frames)
