"""Pluggable frame sources for the streaming engine.

A frame source is simply an iterable of
:class:`~repro.dot11.capture.CapturedFrame` in non-decreasing
timestamp order; the engine pulls from it one frame at a time, so a
source backed by a file or a live feed keeps the whole pipeline in
bounded memory.  Built-ins:

* :func:`pcap_source` — chunked iteration over an on-disk radiotap
  pcap (:func:`repro.radiotap.pcap.iter_trace_pcap`), never
  materialising the capture;
* :func:`simulation_source` — the discrete-event simulator as a live
  feed (:meth:`repro.simulator.scenario.Scenario.stream`), draining
  the monitor's buffer as simulated time advances;
* :func:`replay_source` — an in-memory frame list (tests, the batch
  pipeline's traces).
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.dot11.capture import CapturedFrame

#: A frame source: any time-ordered iterable of captured frames.
FrameSource = Iterable[CapturedFrame]


def pcap_source(
    source: str | Path | BinaryIO | bytes, skip_bad_fcs: bool = False
) -> Iterator[CapturedFrame]:
    """Stream frames from a radiotap pcap in O(1) memory."""
    from repro.radiotap.pcap import iter_trace_pcap

    return iter_trace_pcap(source, skip_bad_fcs=skip_bad_fcs)


def simulation_source(scenario, chunk_s: float = 5.0) -> Iterator[CapturedFrame]:
    """Run a :class:`~repro.simulator.scenario.Scenario` as a live feed."""
    return scenario.stream(chunk_s=chunk_s)


def replay_source(frames: Iterable[CapturedFrame]) -> Iterator[CapturedFrame]:
    """Replay an in-memory frame sequence (testing convenience)."""
    return iter(frames)
