"""Typed events emitted by the streaming engine, and event sinks.

The engine is event-driven end to end: frame sources push
:class:`~repro.dot11.capture.CapturedFrame` objects in, and every
observable outcome — a detection window closing, a candidate matched
against the reference database, an application alert — leaves the
engine as a :class:`StreamEvent` delivered to registered sinks.

A sink is any callable taking one event; :class:`CollectingSink` and
:class:`JsonLinesSink` cover the common cases (tests/offline analysis
and machine-readable alert feeds respectively).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import IO, Callable, Iterator, Type, TypeVar

from repro.dot11.mac import MacAddress

#: Anything that consumes stream events.
EventSink = Callable[["StreamEvent"], None]

E = TypeVar("E", bound="StreamEvent")


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """Base event: everything carries the emission time (µs, capture clock)."""

    timestamp_us: float

    def to_dict(self) -> dict:
        """JSON-serialisable form (MAC addresses become strings)."""
        payload: dict = {"event": type(self).__name__}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, MacAddress):
                value = str(value)
            payload[field.name] = value
        return payload


@dataclass(frozen=True, slots=True)
class WindowClosed(StreamEvent):
    """One detection window completed.

    ``candidate_count`` counts devices that cleared the
    minimum-observation gate; ``resident_devices`` is the number of
    per-device accumulators held when the window closed (the streaming
    engine's working-set size).
    """

    window_index: int
    start_us: float
    end_us: float
    frame_count: int
    candidate_count: int
    resident_devices: int


@dataclass(frozen=True, slots=True)
class DeviceMatched(StreamEvent):
    """Algorithm 1 verdict for one window candidate."""

    window_index: int
    device: MacAddress
    best_device: MacAddress | None
    similarity: float


@dataclass(frozen=True, slots=True)
class SpoofAlert(StreamEvent):
    """Spoof-detector verdict worth surfacing (spoofed/unknown)."""

    window_index: int
    device: MacAddress
    verdict: str
    self_similarity: float
    best_other_similarity: float


@dataclass(frozen=True, slots=True)
class RogueApAlert(StreamEvent):
    """The monitored AP's fingerprint stopped matching its reference."""

    window_index: int
    ap: MacAddress
    similarity: float
    observations: int


@dataclass(frozen=True, slots=True)
class PseudonymLinked(StreamEvent):
    """A randomised MAC linked (or explicitly not) to a known device."""

    window_index: int
    pseudonym: MacAddress
    linked_device: MacAddress | None
    similarity: float


@dataclass(frozen=True, slots=True)
class DeviceEvicted(StreamEvent):
    """An idle device's accumulator was dropped to bound memory."""

    window_index: int
    device: MacAddress


class CollectingSink:
    """Stores every event in order; convenience filter by type."""

    def __init__(self) -> None:
        self.events: list[StreamEvent] = []

    def __call__(self, event: StreamEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: Type[E]) -> list[E]:
        """All collected events of one type, in emission order."""
        return [event for event in self.events if isinstance(event, event_type)]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self.events)


class JsonLinesSink:
    """Writes one JSON object per event to a text stream."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream

    def __call__(self, event: StreamEvent) -> None:
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self._stream.write("\n")
