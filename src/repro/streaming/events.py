"""Typed events emitted by the streaming engine, and event sinks.

The engine is event-driven end to end: frame sources push
:class:`~repro.dot11.capture.CapturedFrame` objects in, and every
observable outcome — a detection window closing, a candidate matched
against the reference database, an application alert — leaves the
engine as a :class:`StreamEvent` delivered to registered sinks.

A sink is any callable taking one event; :class:`CollectingSink` and
:class:`JsonLinesSink` cover the common cases (tests/offline analysis
and machine-readable alert feeds respectively).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import IO, Callable, Iterator, Type, TypeVar

from repro.dot11.mac import MacAddress

#: Anything that consumes stream events.
EventSink = Callable[["StreamEvent"], None]

E = TypeVar("E", bound="StreamEvent")


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """Base event: everything carries the emission time (µs, capture clock)."""

    timestamp_us: float

    def to_dict(self) -> dict:
        """JSON-serialisable form (MAC addresses become strings)."""
        payload: dict = {"event": type(self).__name__}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, MacAddress):
                value = str(value)
            payload[field.name] = value
        return payload


@dataclass(frozen=True, slots=True)
class WindowClosed(StreamEvent):
    """One detection window completed.

    ``candidate_count`` counts devices that cleared the
    minimum-observation gate; ``resident_devices`` is the number of
    per-device accumulators held when the window closed (the streaming
    engine's working-set size).
    """

    window_index: int
    start_us: float
    end_us: float
    frame_count: int
    candidate_count: int
    resident_devices: int


@dataclass(frozen=True, slots=True)
class DeviceMatched(StreamEvent):
    """Algorithm 1 verdict for one window candidate."""

    window_index: int
    device: MacAddress
    best_device: MacAddress | None
    similarity: float


@dataclass(frozen=True, slots=True)
class SpoofAlert(StreamEvent):
    """Spoof-detector verdict worth surfacing (spoofed/unknown)."""

    window_index: int
    device: MacAddress
    verdict: str
    self_similarity: float
    best_other_similarity: float


@dataclass(frozen=True, slots=True)
class RogueApAlert(StreamEvent):
    """The monitored AP's fingerprint stopped matching its reference."""

    window_index: int
    ap: MacAddress
    similarity: float
    observations: int


@dataclass(frozen=True, slots=True)
class PseudonymLinked(StreamEvent):
    """A randomised MAC linked (or explicitly not) to a known device."""

    window_index: int
    pseudonym: MacAddress
    linked_device: MacAddress | None
    similarity: float


@dataclass(frozen=True, slots=True)
class DeviceEvicted(StreamEvent):
    """An idle device's accumulator was dropped to bound memory."""

    window_index: int
    device: MacAddress


class CollectingSink:
    """Stores every event in order; convenience filter by type."""

    def __init__(self) -> None:
        self.events: list[StreamEvent] = []

    def __call__(self, event: StreamEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: Type[E]) -> list[E]:
        """All collected events of one type, in emission order."""
        return [event for event in self.events if isinstance(event, event_type)]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self.events)


class JsonLinesSink:
    """Writes one JSON object per event to a text stream.

    ``flush_every=1`` (the default) flushes after every line, so an
    alert feed tailed by another process — or inspected after a crash
    mid-stream — always holds every emitted event; raise it to
    amortise the flush on high-volume offline runs (``0`` leaves
    flushing entirely to the stream).  Usable as a context manager,
    which flushes the tail on exit; :meth:`open` builds a sink that
    owns its file and closes it on exit too.
    """

    def __init__(self, stream: IO[str], flush_every: int = 1) -> None:
        if flush_every < 0:
            raise ValueError(f"flush_every must be >= 0: {flush_every}")
        self._stream = stream
        self._flush_every = flush_every
        self._pending = 0
        self._owns_stream = False

    @classmethod
    def open(cls, path, flush_every: int = 1) -> "JsonLinesSink":
        """A sink over a freshly opened file it owns (and will close)."""
        sink = cls(open(path, "w"), flush_every=flush_every)
        sink._owns_stream = True
        return sink

    def __call__(self, event: StreamEvent) -> None:
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self._stream.write("\n")
        self._pending += 1
        if self._flush_every and self._pending >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines down to the underlying stream."""
        self._pending = 0
        self._stream.flush()

    def close(self) -> None:
        """Flush, and close the stream if this sink opened it."""
        self.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
