"""Rogue-AP detection (Section VII-B2).

A client stores the published signature of the legitimate AP (learnt
during a safe period) and routinely fingerprints the AP it is
associated with.  Per the paper, frames the AP merely *forwards* on
behalf of other devices are excluded — they would pollute the AP's
signature with other devices' applicative behaviour — so the
fingerprint rests on the AP's own frames: beacons, probe responses and
other management traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import FrameType
from repro.dot11.mac import MacAddress
from repro.core.parameters import InterArrivalTime, NetworkParameter
from repro.core.signature import Signature, SignatureBuilder
from repro.core.similarity import cosine_similarity


def ap_own_frames(
    frames: list[CapturedFrame], ap: MacAddress
) -> list[CapturedFrame]:
    """The AP's non-forwarded frames: management traffic it originates.

    Data frames with ``from_ds`` set are forwarded payloads and are
    dropped, exactly as Section VII-B2 prescribes.
    """
    own: list[CapturedFrame] = []
    for captured in frames:
        if captured.sender != ap:
            continue
        if captured.frame.ftype is FrameType.DATA and captured.frame.from_ds:
            continue
        own.append(captured)
    return own


@dataclass(frozen=True, slots=True)
class RogueApVerdict:
    """Result of one AP check."""

    ap: MacAddress
    similarity: float
    is_rogue: bool
    observations: int


class RogueApDetector:
    """Verifies an AP's identity against its published signature."""

    def __init__(
        self,
        parameter: NetworkParameter | None = None,
        accept_threshold: float = 0.6,
        min_observations: int = 50,
    ) -> None:
        self.parameter = parameter if parameter is not None else InterArrivalTime()
        self.accept_threshold = accept_threshold
        self.builder = SignatureBuilder(
            self.parameter, min_observations=min_observations
        )
        self._reference: Signature | None = None
        self._ap: MacAddress | None = None

    def learn(self, frames: list[CapturedFrame], ap: MacAddress) -> bool:
        """Record the legitimate AP's signature from a safe capture."""
        signature = self.builder.build_single(ap_own_frames(frames, ap), ap)
        if signature is None:
            return False
        self._reference = signature
        self._ap = ap
        return True

    def use_reference(self, signature: Signature, ap: MacAddress) -> None:
        """Adopt an already-learnt AP signature as the published one.

        This is how a loaded reference database plugs in: clients fetch
        the AP's signature from a store
        (:func:`repro.persistence.load_database` + ``database.get(ap)``)
        instead of re-learning it from a safe capture.
        """
        self._reference = signature
        self._ap = ap

    def check(self, frames: list[CapturedFrame], claimed_ap: MacAddress) -> RogueApVerdict:
        """Fingerprint the currently visible AP traffic.

        The combined similarity follows Algorithm 1 with the stored
        reference as the single database entry.
        """
        own = ap_own_frames(frames, claimed_ap)
        signature = self.builder.build_single(own, claimed_ap)
        return self.check_signature(signature, claimed_ap, observations=len(own))

    def check_signature(
        self,
        signature: Signature | None,
        claimed_ap: MacAddress,
        observations: int = 0,
    ) -> RogueApVerdict:
        """Verdict from an already-built (possibly absent) AP signature.

        ``observations`` is only reported when the signature itself is
        missing (too little own traffic — treated as rogue, since a
        silent "AP" answering clients is itself anomalous).  This is
        also the streaming rogue-AP guard's per-window entry point.
        """
        if self._reference is None or self._ap is None:
            raise RuntimeError("RogueApDetector.check called before learn()")
        if signature is None:
            return RogueApVerdict(
                ap=claimed_ap, similarity=0.0, is_rogue=True, observations=observations
            )
        combined = 0.0
        for ftype_key, candidate_hist in signature.histograms.items():
            reference_hist = self._reference.histogram(ftype_key)
            if reference_hist is None:
                continue
            combined += self._reference.weight(ftype_key) * cosine_similarity(
                candidate_hist, reference_hist
            )
        return RogueApVerdict(
            ap=claimed_ap,
            similarity=combined,
            is_rogue=combined < self.accept_threshold,
            observations=signature.total_observations,
        )
