"""Device tracking across MAC randomisation (Section VII-B3).

The paper's privacy observation: the signature traces a user "even in
cases where the device regularly changes its MAC address in order to
stay anonymous".  :class:`DeviceTracker` demonstrates it — it links
the pseudonymous identities seen across observation windows to learnt
device signatures, reporting which pseudonyms belong to which known
device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase
from repro.core.matcher import batch_match_signatures
from repro.core.parameters import InterArrivalTime, NetworkParameter
from repro.core.signature import Signature, SignatureBuilder


@dataclass(frozen=True, slots=True)
class PseudonymLink:
    """One pseudonymous address linked (or not) to a known device."""

    pseudonym: MacAddress
    linked_device: MacAddress | None
    similarity: float
    window_index: int


@dataclass
class TrackingReport:
    """All pseudonym links across the observed windows."""

    links: list[PseudonymLink] = field(default_factory=list)

    def trajectory(self, device: MacAddress) -> list[PseudonymLink]:
        """Pseudonyms attributed to one device, in window order."""
        return sorted(
            (link for link in self.links if link.linked_device == device),
            key=lambda link: link.window_index,
        )

    def linking_accuracy(self, truth: dict[MacAddress, MacAddress]) -> float:
        """Fraction of links correct under a pseudonym→device truth map.

        Pseudonyms absent from ``truth`` (genuinely unknown devices)
        count as correct only when left unlinked.
        """
        if not self.links:
            return 0.0
        correct = 0
        for link in self.links:
            expected = truth.get(link.pseudonym)
            if expected is None:
                correct += link.linked_device is None
            else:
                correct += link.linked_device == expected
        return correct / len(self.links)


class DeviceTracker:
    """Links randomised MAC addresses back to learnt signatures."""

    def __init__(
        self,
        parameter: NetworkParameter | None = None,
        link_threshold: float = 0.5,
        min_observations: int = 50,
        database: ReferenceDatabase | None = None,
    ) -> None:
        """``database`` seeds the tracker with an existing reference
        database — a loaded store (:func:`repro.persistence.load_database`)
        or a :class:`~repro.core.sharding.ShardedReferenceDatabase`;
        the default is a fresh database filled by :meth:`learn`."""
        self.parameter = parameter if parameter is not None else InterArrivalTime()
        self.link_threshold = link_threshold
        self.builder = SignatureBuilder(
            self.parameter, min_observations=min_observations
        )
        self.database = database if database is not None else ReferenceDatabase()

    def learn(self, frames: list[CapturedFrame]) -> int:
        """Learn device signatures from a capture with true addresses."""
        signatures = self.builder.build(frames)
        for device, signature in signatures.items():
            self.database.add(device, signature)
        return len(signatures)

    def link_signatures(
        self, signatures: dict[MacAddress, Signature], window_index: int = 0
    ) -> list[PseudonymLink]:
        """Link already-built window signatures to learnt devices.

        Only locally-administered (randomised-looking) addresses are
        treated as pseudonyms; devices still using their real address
        are trivially trackable and skipped.  All pseudonyms of the
        window are matched in one
        :func:`~repro.core.matcher.batch_match_signatures` call — a
        single matrix product per frame type instead of the former
        per-pseudonym scalar loop.  This is also the streaming live
        tracker's per-window entry point.
        """
        pseudonyms = [
            sender for sender in signatures if sender.is_locally_administered
        ]
        if not pseudonyms:
            return []
        scores = batch_match_signatures(
            [signatures[pseudonym] for pseudonym in pseudonyms], self.database
        )
        references = self.database.devices
        links: list[PseudonymLink] = []
        for pseudonym, row in zip(pseudonyms, scores):
            best_device: MacAddress | None = None
            best_sim = 0.0
            for device, sim in zip(references, row.tolist()):
                if sim > best_sim:
                    best_device, best_sim = device, sim
            if best_sim < self.link_threshold:
                best_device = None
            links.append(
                PseudonymLink(
                    pseudonym=pseudonym,
                    linked_device=best_device,
                    similarity=best_sim,
                    window_index=window_index,
                )
            )
        return links

    def track_window(
        self, frames: list[CapturedFrame], window_index: int = 0
    ) -> list[PseudonymLink]:
        """Link every pseudonymous sender in one observation window."""
        return self.link_signatures(self.builder.build(frames), window_index)

    def track(self, windows: list[list[CapturedFrame]]) -> TrackingReport:
        """Track across a sequence of observation windows."""
        report = TrackingReport()
        for index, frames in enumerate(windows):
            report.links.extend(self.track_window(frames, index))
        return report
