"""MAC-spoof detection (Section VII-B1).

An AP (or monitoring appliance) learns the signatures of authorised
client stations during a user-initiated learning window, then
routinely fingerprints traffic claiming those MAC addresses.  A client
whose current-window signature no longer matches its own reference —
while matching is expected to clear an acceptance threshold — is
flagged: someone is using its address.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase
from repro.core.matcher import match_signature
from repro.core.parameters import InterArrivalTime, NetworkParameter
from repro.core.signature import Signature, SignatureBuilder


class SpoofVerdict(enum.Enum):
    """Outcome of checking one claimed identity in one window."""

    #: Signature matches the claimed identity's reference.
    GENUINE = "genuine"
    #: Signature exists but does not match the claimed identity.
    SPOOFED = "spoofed"
    #: Too little traffic in the window to decide.
    INSUFFICIENT = "insufficient"
    #: The claimed address is not in the allow-list.
    UNKNOWN_DEVICE = "unknown"


@dataclass(frozen=True, slots=True)
class SpoofCheck:
    """One verdict with its evidence."""

    device: MacAddress
    verdict: SpoofVerdict
    self_similarity: float
    best_other_similarity: float


class SpoofDetector:
    """Guards an allow-list of client stations with fingerprints.

    ``accept_threshold`` is the minimum self-similarity a genuine
    device must show; ``margin`` additionally requires the claimed
    identity to beat every *other* reference by this much, catching
    attackers whose traffic resembles a different known device.
    """

    def __init__(
        self,
        parameter: NetworkParameter | None = None,
        accept_threshold: float = 0.55,
        margin: float = 0.0,
        min_observations: int = 50,
        database: ReferenceDatabase | None = None,
    ) -> None:
        """``database`` seeds the allow-list with an existing reference
        database — e.g. one loaded from disk
        (:func:`repro.persistence.load_database`) or a
        :class:`~repro.core.sharding.ShardedReferenceDatabase`; the
        default is a fresh empty database filled by :meth:`learn`."""
        if not 0.0 <= accept_threshold <= 1.0:
            raise ValueError(f"threshold out of range: {accept_threshold}")
        self.parameter = parameter if parameter is not None else InterArrivalTime()
        self.accept_threshold = accept_threshold
        self.margin = margin
        self.builder = SignatureBuilder(
            self.parameter, min_observations=min_observations
        )
        self.database = database if database is not None else ReferenceDatabase()

    def learn(self, frames: list[CapturedFrame], allowed: set[MacAddress]) -> set[MacAddress]:
        """Learning stage over a clean window; returns devices learnt.

        Only allow-listed addresses enter the reference database —
        bystander traffic in the learning capture is ignored.
        """
        learnt: set[MacAddress] = set()
        for device, signature in self.builder.build(frames).items():
            if device in allowed:
                self.database.add(device, signature)
                learnt.add(device)
        return learnt

    def check_window(self, frames: list[CapturedFrame]) -> list[SpoofCheck]:
        """Fingerprint one detection window; verdict per active device."""
        return self.check_signatures(
            self.builder.build(frames),
            {c.sender for c in frames if c.sender is not None},
        )

    def check_signatures(
        self,
        signatures: dict[MacAddress, Signature],
        active: set[MacAddress],
    ) -> list[SpoofCheck]:
        """Verdicts from already-built window signatures.

        ``active`` is every sender seen in the window — devices too
        quiet to clear the signature gate still get an INSUFFICIENT
        verdict.  This is also the streaming spoof guard's per-window
        entry point.
        """
        checks: list[SpoofCheck] = []
        for device in sorted(active, key=lambda m: m.value):
            if device not in self.database:
                checks.append(
                    SpoofCheck(device, SpoofVerdict.UNKNOWN_DEVICE, 0.0, 0.0)
                )
                continue
            signature = signatures.get(device)
            if signature is None:
                checks.append(
                    SpoofCheck(device, SpoofVerdict.INSUFFICIENT, 0.0, 0.0)
                )
                continue
            similarities = match_signature(signature, self.database)
            self_sim = similarities.get(device, 0.0)
            best_other = max(
                (sim for other, sim in similarities.items() if other != device),
                default=0.0,
            )
            genuine = self_sim >= self.accept_threshold and (
                self_sim >= best_other + self.margin
            )
            checks.append(
                SpoofCheck(
                    device=device,
                    verdict=SpoofVerdict.GENUINE if genuine else SpoofVerdict.SPOOFED,
                    self_similarity=self_sim,
                    best_other_similarity=best_other,
                )
            )
        return checks
