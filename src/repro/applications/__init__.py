"""Section VII applications and attacks.

* :mod:`repro.applications.spoof_detector` — MAC-spoof detection for
  APs guarding client allow-lists (VII-B1);
* :mod:`repro.applications.rogue_ap` — rogue-AP detection for clients
  verifying hot-spot identity (VII-B2);
* :mod:`repro.applications.tracker` — linking devices across MAC
  randomisation, the privacy concern of VII-B3;
* :mod:`repro.applications.attacks` — the attacks of VII-A: replaying
  a genuine device's traffic, naive signature mimicry, polluting the
  learning stage and jamming-style pollution of the candidate window.
"""

from repro.applications.attacks import (
    inject_fake_frames,
    mimic_signature_traffic,
    pollute_training,
    replay_with_insertions,
    spoof_mac,
)
from repro.applications.rogue_ap import RogueApDetector
from repro.applications.spoof_detector import SpoofDetector, SpoofVerdict
from repro.applications.tracker import DeviceTracker, TrackingReport

__all__ = [
    "DeviceTracker",
    "RogueApDetector",
    "SpoofDetector",
    "SpoofVerdict",
    "TrackingReport",
    "inject_fake_frames",
    "mimic_signature_traffic",
    "pollute_training",
    "replay_with_insertions",
    "spoof_mac",
]
