"""Attacks against the fingerprinting method (Section VII-A).

Trace-level attack models, each returning a transformed capture:

* :func:`spoof_mac` — plain MAC spoofing: the attacker's traffic
  claims a victim's address (what the method is designed to catch);
* :func:`replay_with_insertions` — a recorded genuine capture is
  replayed while the attacker weaves its own frames in; the paper
  notes the inserted traffic perturbs the timing signature;
* :func:`mimic_signature_traffic` — a constant-rate attacker varies
  frame sizes to reproduce a victim's *size* distribution, the naive
  mimicry the paper says fails for timing parameters;
* :func:`pollute_training` — attacker frames injected during the
  learning stage (Section VII-A2);
* :func:`inject_fake_frames` — fake frames under genuine devices'
  addresses to degrade fingerprinting (Section VII-A3's "more subtle
  attacker").
"""

from __future__ import annotations

import random
from dataclasses import replace

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress
from repro.core.signature import Signature


def _sorted_merge(
    original: list[CapturedFrame], inserted: list[CapturedFrame]
) -> list[CapturedFrame]:
    merged = list(original) + inserted
    merged.sort(key=lambda c: c.timestamp_us)
    return merged


def spoof_mac(
    frames: list[CapturedFrame],
    attacker: MacAddress,
    victim: MacAddress,
) -> list[CapturedFrame]:
    """Rewrite the attacker's frames to claim the victim's address.

    Timing/rate/size behaviour is untouched — exactly the situation in
    which fingerprinting catches the spoof.
    """
    rewritten: list[CapturedFrame] = []
    for captured in frames:
        if captured.sender == attacker:
            rewritten.append(captured.with_sender(victim))
        else:
            rewritten.append(captured)
    return rewritten


def replay_with_insertions(
    genuine: list[CapturedFrame],
    attacker_frame_size: int = 700,
    insertion_rate_hz: float = 5.0,
    rate_mbps: float = 54.0,
    seed: int = 1,
) -> list[CapturedFrame]:
    """Replay a genuine capture with attacker frames woven in.

    All inserted frames claim the replayed device's address (a relay
    attack carrying the attacker's own payload traffic).  The denser
    the insertions, the further the inter-arrival signature drifts —
    the attacker-capacity restriction of Section VII-A1.
    """
    if not genuine:
        return []
    victims = {c.sender for c in genuine if c.sender is not None}
    if not victims:
        raise ValueError("replay source contains no attributable frames")
    victim = sorted(victims, key=lambda m: m.value)[0]
    rng = random.Random(seed)
    start = genuine[0].timestamp_us
    end = genuine[-1].timestamp_us
    inserted: list[CapturedFrame] = []
    t = start + rng.expovariate(insertion_rate_hz) * 1e6
    template = next(c for c in genuine if c.sender == victim)
    while t < end:
        frame = Dot11Frame(
            subtype=FrameSubtype.QOS_DATA,
            size=attacker_frame_size,
            addr1=template.frame.addr1,
            addr2=victim,
            addr3=template.frame.addr3,
            to_ds=True,
        )
        inserted.append(
            replace(template, timestamp_us=t, frame=frame, rate_mbps=rate_mbps)
        )
        t += rng.expovariate(insertion_rate_hz) * 1e6
    return _sorted_merge(genuine, inserted)


def mimic_signature_traffic(
    target_signature: Signature,
    attacker: MacAddress,
    bssid: MacAddress,
    duration_s: float,
    frames_per_second: float = 20.0,
    rate_mbps: float = 54.0,
    size_bin_width: float = 32.0,
    seed: int = 2,
) -> list[CapturedFrame]:
    """Generate attacker traffic reproducing a victim's size histogram.

    The attacker sends at a constant rate and draws frame sizes from
    the victim's per-type size distribution (Section VII-A1's "vary
    the frame sizes for each frame type" strategy).  Timing is a plain
    Poisson process — the attacker does not control µs-level MAC
    behaviour, which is why timing-based parameters survive.
    """
    rng = random.Random(seed)
    subtype_for = {
        "QoS Data": FrameSubtype.QOS_DATA,
        "Data": FrameSubtype.DATA,
        "Data Null Function": FrameSubtype.NULL_FUNCTION,
        "Probe Request": FrameSubtype.PROBE_REQUEST,
    }
    ftypes = [f for f in target_signature.frame_types if f in subtype_for]
    if not ftypes:
        raise ValueError("target signature has no mimicable frame types")
    weights = np.array([target_signature.weight(f) for f in ftypes], dtype=float)
    weights = weights / weights.sum()

    frames: list[CapturedFrame] = []
    t = 0.0
    while t < duration_s * 1e6:
        ftype = rng.choices(ftypes, weights=list(weights))[0]
        histogram = target_signature.histogram(ftype)
        assert histogram is not None
        if histogram.sum() <= 0:
            t += rng.expovariate(frames_per_second) * 1e6
            continue
        bin_index = rng.choices(
            range(len(histogram)), weights=list(histogram)
        )[0]
        size = max(28, int(bin_index * size_bin_width + size_bin_width / 2))
        frame = Dot11Frame(
            subtype=subtype_for[ftype],
            size=size,
            addr1=bssid,
            addr2=attacker,
            addr3=bssid,
            to_ds=True,
        )
        frames.append(
            CapturedFrame(timestamp_us=t, frame=frame, rate_mbps=rate_mbps)
        )
        t += rng.expovariate(frames_per_second) * 1e6
    return frames


def pollute_training(
    training: list[CapturedFrame],
    attacker: MacAddress,
    victim: MacAddress,
    pollution_fraction: float = 0.3,
    seed: int = 3,
) -> list[CapturedFrame]:
    """Inject attacker frames under a victim's address into training.

    Models Section VII-A2: a learning stage the attacker can reach.
    ``pollution_fraction`` scales the injected volume relative to the
    victim's own frame count.
    """
    if not 0 <= pollution_fraction <= 10:
        raise ValueError(f"unreasonable pollution fraction: {pollution_fraction}")
    rng = random.Random(seed)
    victim_frames = [c for c in training if c.sender == victim]
    if not victim_frames:
        raise ValueError("victim absent from training capture")
    count = int(len(victim_frames) * pollution_fraction)
    start = training[0].timestamp_us
    end = training[-1].timestamp_us
    inserted: list[CapturedFrame] = []
    for _ in range(count):
        t = rng.uniform(start, end)
        frame = Dot11Frame(
            subtype=FrameSubtype.QOS_DATA,
            size=rng.choice([128, 256, 900]),
            addr1=victim_frames[0].frame.addr1,
            addr2=victim,
            addr3=victim_frames[0].frame.addr3,
            to_ds=True,
        )
        inserted.append(
            CapturedFrame(timestamp_us=t, frame=frame, rate_mbps=11.0)
        )
    _ = attacker  # the attacker's identity never appears on air
    return _sorted_merge(training, inserted)


def inject_fake_frames(
    window: list[CapturedFrame],
    victims: list[MacAddress],
    injection_rate_hz: float = 20.0,
    seed: int = 4,
) -> list[CapturedFrame]:
    """Degrade fingerprinting by injecting frames under genuine MACs.

    Section VII-A3's anti-fingerprinting attacker: fake frames carrying
    the fingerprintees' addresses perturb every timing histogram in the
    window.  All passive methods degrade under this attack; the bench
    measures by how much.
    """
    if not window:
        return []
    if not victims:
        raise ValueError("need at least one victim address")
    rng = random.Random(seed)
    start = window[0].timestamp_us
    end = window[-1].timestamp_us
    inserted: list[CapturedFrame] = []
    t = start + rng.expovariate(injection_rate_hz) * 1e6
    while t < end:
        victim = rng.choice(victims)
        frame = Dot11Frame(
            subtype=FrameSubtype.QOS_DATA,
            size=rng.randint(60, 1500),
            addr1=window[0].frame.addr1,
            addr2=victim,
            addr3=window[0].frame.addr3,
            to_ds=True,
        )
        inserted.append(
            CapturedFrame(
                timestamp_us=t,
                frame=frame,
                rate_mbps=rng.choice([11.0, 24.0, 54.0]),
            )
        )
        t += rng.expovariate(injection_rate_hz) * 1e6
    return _sorted_merge(window, inserted)
