"""Session-wide simulation memo shared by benchmarks and the matrix.

Scenario simulation is the wall-clock floor of every sweep (the
matcher does ~170k candidates/s; the simulator low tens of
scenario-cells/s), so every harness that drives simulations shares one
:class:`SimulationCache`: factor experiments (the Section VI figure
benchmarks) and scenario-library builds (the evaluation matrix) are
memoised on their full determinism key — every scenario is seeded, so
a cache hit is exact.

``benchmarks/conftest.py`` exposes an instance as the session-scoped
``sim_cache`` fixture; the CLI matrix mode builds a private one per
invocation so repeated cells (several measures per scenario, resume
runs) share a single simulation.
"""

from __future__ import annotations

from repro.scenarios.library import BuiltScenario, build_scenario
from repro.traces.trace import Trace


class SimulationCache:
    """Memoises factor experiments and scenario-library simulations."""

    def __init__(self) -> None:
        self._results: dict[tuple, object] = {}

    # -- Section VI factor experiments (figure benchmarks) -------------
    def experiment(
        self,
        name: str,
        duration_s: float,
        seed: int | None = None,
        scale: float = 1.0,
    ):
        """Run (or recall) one factor experiment by short name.

        ``scale`` does not parameterize the experiment itself — it
        discriminates cache entries when the ambient dataset scale
        changes between sessions (the bench conftest passes its
        ``REPRO_BENCH_SCALE``).
        """
        from repro.analysis import factors

        runner = getattr(factors, f"{name}_experiment")
        key = ("experiment", name, duration_s, seed, scale)
        if key not in self._results:
            kwargs: dict = {"duration_s": duration_s}
            if seed is not None:
                kwargs["seed"] = seed
            self._results[key] = runner(**kwargs)
        return self._results[key]

    # -- Scenario library ----------------------------------------------
    def built_scenario(
        self,
        name: str,
        duration_s: float | None = None,
        seed: int | None = None,
        scale: float = 1.0,
    ) -> BuiltScenario:
        """Build (or recall) one library scenario.

        The returned :class:`BuiltScenario` memoises its own
        ``simulate()`` result, so all matrix cells sharing a scenario
        run exactly one simulation.
        """
        key = ("scenario", name, duration_s, seed, scale)
        if key not in self._results:
            self._results[key] = build_scenario(
                name, duration_s=duration_s, seed=seed, scale=scale
            )
        return self._results[key]

    def scenario_trace(
        self,
        name: str,
        duration_s: float | None = None,
        seed: int | None = None,
        scale: float = 1.0,
    ) -> Trace:
        """The simulated ground-truth trace for one library scenario."""
        return self.built_scenario(
            name, duration_s=duration_s, seed=seed, scale=scale
        ).simulate()
