"""Cross-scenario evaluation harness (DESIGN.md §7).

Runs (scenario × parameter × similarity measure) cells of the
scenario library through the columnar evaluation pipeline and collects
them into one machine-readable :class:`EvaluationMatrix`
(``BENCH_experiments.json``).
"""

from repro.evaluation.cache import SimulationCache
from repro.evaluation.matrix import (
    DEFAULT_MEASURES,
    CellKey,
    EvaluationMatrix,
    MatrixCell,
    evaluate_cell,
    matrix_cells,
    run_matrix,
)

__all__ = [
    "DEFAULT_MEASURES",
    "CellKey",
    "EvaluationMatrix",
    "MatrixCell",
    "SimulationCache",
    "evaluate_cell",
    "matrix_cells",
    "run_matrix",
]
