"""Cross-scenario evaluation matrix (DESIGN.md §7).

The paper reports Tables II/III on four traces; the matrix generalises
that to (scenario × parameter × similarity measure) cells over the
scenario library.  Each cell runs :func:`~repro.core.pipeline.
evaluate_trace` on the columnar path, under the scenario preset's own
pinned protocol settings (training split, window length, minimum
observations) — so a cell is a *named, reproducible measurement*, not
a one-off number.

The resulting :class:`EvaluationMatrix` is a value object: cells are
keyed by (scenario, parameter, measure), serialisation is canonical
(sorted cells, round-trip-exact floats), ``subset``/``merge`` support
sharding a sweep across runs, and ``run_matrix(..., resume=...)``
skips cells an earlier (partial) run already produced.  ``save``
writes the ``BENCH_experiments.json`` artifact in the same schema
family as the other ``BENCH_*.json`` perf gates.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.detection import DetectionConfig
from repro.core.parameters import ALL_PARAMETERS, parameter_by_name
from repro.core.pipeline import evaluate_trace
from repro.core.similarity import similarity_measure_by_name
from repro.evaluation.cache import SimulationCache
from repro.scenarios.library import scenario_names

#: Default measure axis: the paper's choice plus one cheap alternative.
DEFAULT_MEASURES: tuple[str, ...] = ("cosine", "intersection")

#: FPR budgets reported per cell (the paper's Table III columns).
FPR_BUDGETS: tuple[float, ...] = (0.01, 0.1)


@dataclass(frozen=True)
class CellKey:
    """Coordinates of one matrix cell."""

    scenario: str
    parameter: str
    measure: str


@dataclass(frozen=True)
class MatrixCell:
    """One evaluated cell: coordinates, protocol settings, results."""

    scenario: str
    parameter: str
    measure: str
    auc: float
    identification_at_0_01: float
    identification_at_0_1: float
    reference_devices: int
    known_candidates: int
    total_candidates: int
    station_count: int
    frame_count: int
    duration_s: float
    seed: int
    training_s: float
    window_s: float
    min_observations: int

    @property
    def key(self) -> CellKey:
        return CellKey(self.scenario, self.parameter, self.measure)

    def to_payload(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        # JSON keys keep the human-readable FPR budget spelling.
        payload["identification_at_0.01"] = payload.pop("identification_at_0_01")
        payload["identification_at_0.1"] = payload.pop("identification_at_0_1")
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "MatrixCell":
        data = dict(payload)
        data["identification_at_0_01"] = data.pop("identification_at_0.01")
        data["identification_at_0_1"] = data.pop("identification_at_0.1")
        return cls(**data)


class EvaluationMatrix:
    """A set of evaluated cells with canonical, lossless serialisation.

    Equal matrices serialise identically regardless of the order their
    cells were produced in; ``merge`` of disjoint subsets reproduces
    the full matrix bit-for-bit (both properties are Hypothesis-pinned
    in ``tests/test_evaluation_properties.py``).
    """

    def __init__(self, cells: Iterable[MatrixCell] = ()) -> None:
        self._cells: dict[CellKey, MatrixCell] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: MatrixCell) -> None:
        """Insert one cell; re-adding an identical cell is a no-op.

        A *conflicting* cell (same coordinates, different numbers)
        raises — two runs disagreeing on a deterministic measurement
        is a bug, never something to merge silently.
        """
        existing = self._cells.get(cell.key)
        if existing is not None and existing != cell:
            raise ValueError(
                f"conflicting results for cell {cell.key}: "
                f"{existing} != {cell}"
            )
        self._cells[cell.key] = cell

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: CellKey) -> bool:
        return key in self._cells

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EvaluationMatrix):
            return NotImplemented
        return self._cells == other._cells

    def get(self, key: CellKey) -> MatrixCell | None:
        return self._cells.get(key)

    @property
    def cells(self) -> tuple[MatrixCell, ...]:
        """All cells in canonical (scenario, parameter, measure) order."""
        return tuple(
            self._cells[key]
            for key in sorted(
                self._cells, key=lambda k: (k.scenario, k.parameter, k.measure)
            )
        )

    def scenarios(self) -> tuple[str, ...]:
        return tuple(sorted({c.scenario for c in self._cells.values()}))

    def parameters(self) -> tuple[str, ...]:
        return tuple(sorted({c.parameter for c in self._cells.values()}))

    def measures(self) -> tuple[str, ...]:
        return tuple(sorted({c.measure for c in self._cells.values()}))

    def subset(
        self,
        scenarios: Sequence[str] | None = None,
        parameters: Sequence[str] | None = None,
        measures: Sequence[str] | None = None,
    ) -> "EvaluationMatrix":
        """Cells matching every given axis filter (``None`` = all)."""
        picked = [
            cell
            for cell in self._cells.values()
            if (scenarios is None or cell.scenario in scenarios)
            and (parameters is None or cell.parameter in parameters)
            and (measures is None or cell.measure in measures)
        ]
        return EvaluationMatrix(picked)

    def merge(self, other: "EvaluationMatrix") -> "EvaluationMatrix":
        """Union of two matrices (conflicting cells raise)."""
        merged = EvaluationMatrix(self._cells.values())
        for cell in other._cells.values():
            merged.add(cell)
        return merged

    # -- serialisation -------------------------------------------------
    def to_payload(self) -> dict:
        """Canonical JSON-ready form (sorted cells, exact floats)."""
        return {
            "cell_count": len(self),
            "scenarios": list(self.scenarios()),
            "parameters": list(self.parameters()),
            "measures": list(self.measures()),
            "cells": [cell.to_payload() for cell in self.cells],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EvaluationMatrix":
        return cls(MatrixCell.from_payload(raw) for raw in payload["cells"])

    def save(self, path: str | Path) -> Path:
        """Write the ``BENCH_experiments.json``-style artifact.

        Same schema family as the perf-gate artifacts: the matrix
        payload enriched with ``benchmark``/``smoke_mode``/platform
        keys (``load`` ignores the enrichment).
        """
        path = Path(path)
        payload = self.to_payload()
        payload.setdefault("benchmark", "experiments")
        payload.setdefault(
            "smoke_mode",
            os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0"),
        )
        payload.setdefault("python", platform.python_version())
        payload.setdefault("machine", platform.machine())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "EvaluationMatrix":
        return cls.from_payload(json.loads(Path(path).read_text()))


def matrix_cells(
    scenarios: Sequence[str] | None = None,
    parameters: Sequence[str] | None = None,
    measures: Sequence[str] = DEFAULT_MEASURES,
) -> list[CellKey]:
    """The cell grid for the given axes (defaults: full library × all
    five parameters × :data:`DEFAULT_MEASURES`)."""
    chosen_scenarios = (
        tuple(scenarios) if scenarios is not None else scenario_names()
    )
    chosen_parameters = (
        tuple(parameters)
        if parameters is not None
        else tuple(p.name for p in ALL_PARAMETERS)
    )
    return [
        CellKey(scenario, parameter, measure)
        for scenario in chosen_scenarios
        for parameter in chosen_parameters
        for measure in measures
    ]


def evaluate_cell(
    key: CellKey,
    cache: SimulationCache | None = None,
    duration_s: float | None = None,
    seed: int | None = None,
    scale: float = 1.0,
) -> MatrixCell:
    """Run one (scenario, parameter, measure) cell.

    The scenario is simulated (or recalled from ``cache``) under its
    preset defaults unless overridden; the evaluation protocol
    settings always come from the preset, so two cells of one scenario
    differ only along the parameter/measure axes.
    """
    chosen_cache = cache if cache is not None else SimulationCache()
    built = chosen_cache.built_scenario(
        key.scenario, duration_s=duration_s, seed=seed, scale=scale
    )
    meta = built.metadata
    trace = built.simulate()
    config = DetectionConfig(
        window_s=meta.window_s,
        min_observations=meta.min_observations,
        measure=similarity_measure_by_name(key.measure),
    )
    result = evaluate_trace(
        trace, parameter_by_name(key.parameter), meta.training_s, config
    )
    return MatrixCell(
        scenario=key.scenario,
        parameter=key.parameter,
        measure=key.measure,
        auc=result.auc,
        identification_at_0_01=result.identification_at(FPR_BUDGETS[0]),
        identification_at_0_1=result.identification_at(FPR_BUDGETS[1]),
        reference_devices=result.reference_devices,
        known_candidates=result.similarity.known_candidates,
        total_candidates=result.similarity.total_candidates,
        station_count=meta.station_count,
        frame_count=len(trace),
        duration_s=meta.duration_s,
        seed=meta.seed,
        training_s=meta.training_s,
        window_s=meta.window_s,
        min_observations=meta.min_observations,
    )


def run_matrix(
    scenarios: Sequence[str] | None = None,
    parameters: Sequence[str] | None = None,
    measures: Sequence[str] = DEFAULT_MEASURES,
    cache: SimulationCache | None = None,
    scale: float = 1.0,
    resume: EvaluationMatrix | None = None,
    progress: Callable[[CellKey, MatrixCell, bool], None] | None = None,
) -> EvaluationMatrix:
    """Evaluate the full cell grid (optionally resuming a prior run).

    ``resume`` cells are adopted verbatim and skipped; ``progress`` is
    called after every cell with ``(key, cell, was_resumed)``.  Cell
    evaluation order never affects the result — cells are independent
    measurements and the matrix serialises canonically.
    """
    keys = matrix_cells(scenarios, parameters, measures)
    chosen_cache = cache if cache is not None else SimulationCache()
    matrix = EvaluationMatrix()
    for key in keys:
        resumed = resume.get(key) if resume is not None else None
        if resumed is not None:
            matrix.add(resumed)
            if progress is not None:
                progress(key, resumed, True)
            continue
        cell = evaluate_cell(key, cache=chosen_cache, scale=scale)
        matrix.add(cell)
        if progress is not None:
            progress(key, cell, False)
    return matrix
