"""Radiotap field table: bit numbers, wire sizes and alignment.

Radiotap fields appear in bit-number order after the fixed 8-byte
header, each aligned to its *natural alignment* (the alignment of its
largest primitive member).  The ``present`` word may chain: bit 31 set
means another 32-bit ``present`` word follows.

Only the fields a passive 802.11b/g fingerprinting setup needs are
implemented, but the table is the single source of truth — adding a
field means adding one row here and its pack/unpack entry in the
parser/writer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Channel flags (subset) for the Channel field.
CHAN_CCK = 0x0020
CHAN_OFDM = 0x0040
CHAN_2GHZ = 0x0080
CHAN_DYN = 0x0400

#: Flags field bits (subset).
FLAG_SHORTPRE = 0x02
FLAG_WEP = 0x04
FLAG_FCS_AT_END = 0x10
FLAG_BADFCS = 0x40


class RadiotapField(enum.IntEnum):
    """Radiotap ``present`` bit numbers."""

    TSFT = 0
    FLAGS = 1
    RATE = 2
    CHANNEL = 3
    FHSS = 4
    DBM_ANTSIGNAL = 5
    DBM_ANTNOISE = 6
    LOCK_QUALITY = 7
    TX_ATTENUATION = 8
    DB_TX_ATTENUATION = 9
    DBM_TX_POWER = 10
    ANTENNA = 11
    DB_ANTSIGNAL = 12
    DB_ANTNOISE = 13
    RX_FLAGS = 14
    EXT = 31


@dataclass(frozen=True, slots=True)
class FieldSpec:
    """Wire size and alignment of one radiotap field."""

    field: RadiotapField
    size: int
    align: int


#: Field specs in present-bit order.  Size/alignment per radiotap.org.
FIELD_SPECS: dict[RadiotapField, FieldSpec] = {
    RadiotapField.TSFT: FieldSpec(RadiotapField.TSFT, 8, 8),
    RadiotapField.FLAGS: FieldSpec(RadiotapField.FLAGS, 1, 1),
    RadiotapField.RATE: FieldSpec(RadiotapField.RATE, 1, 1),
    RadiotapField.CHANNEL: FieldSpec(RadiotapField.CHANNEL, 4, 2),
    RadiotapField.FHSS: FieldSpec(RadiotapField.FHSS, 2, 1),
    RadiotapField.DBM_ANTSIGNAL: FieldSpec(RadiotapField.DBM_ANTSIGNAL, 1, 1),
    RadiotapField.DBM_ANTNOISE: FieldSpec(RadiotapField.DBM_ANTNOISE, 1, 1),
    RadiotapField.LOCK_QUALITY: FieldSpec(RadiotapField.LOCK_QUALITY, 2, 2),
    RadiotapField.TX_ATTENUATION: FieldSpec(RadiotapField.TX_ATTENUATION, 2, 2),
    RadiotapField.DB_TX_ATTENUATION: FieldSpec(RadiotapField.DB_TX_ATTENUATION, 2, 2),
    RadiotapField.DBM_TX_POWER: FieldSpec(RadiotapField.DBM_TX_POWER, 1, 1),
    RadiotapField.ANTENNA: FieldSpec(RadiotapField.ANTENNA, 1, 1),
    RadiotapField.DB_ANTSIGNAL: FieldSpec(RadiotapField.DB_ANTSIGNAL, 1, 1),
    RadiotapField.DB_ANTNOISE: FieldSpec(RadiotapField.DB_ANTNOISE, 1, 1),
    RadiotapField.RX_FLAGS: FieldSpec(RadiotapField.RX_FLAGS, 2, 2),
}


def align_offset(offset: int, align: int) -> int:
    """Round ``offset`` up to the next multiple of ``align``."""
    if align <= 0:
        raise ValueError(f"alignment must be positive: {align}")
    remainder = offset % align
    return offset if remainder == 0 else offset + (align - remainder)


def channel_frequency_mhz(channel: int) -> int:
    """Centre frequency of a 2.4 GHz channel number (1–14)."""
    if not 1 <= channel <= 14:
        raise ValueError(f"not a 2.4 GHz channel: {channel}")
    if channel == 14:
        return 2484
    return 2407 + 5 * channel


def channel_from_frequency(freq_mhz: int) -> int:
    """Inverse of :func:`channel_frequency_mhz`."""
    if freq_mhz == 2484:
        return 14
    channel, remainder = divmod(freq_mhz - 2407, 5)
    if remainder != 0 or not 1 <= channel <= 13:
        raise ValueError(f"not a 2.4 GHz channel frequency: {freq_mhz} MHz")
    return channel


def encode_rate(rate_mbps: float) -> int:
    """Encode a rate into radiotap's 500 kbps units."""
    units = round(rate_mbps * 2)
    if not 0 < units <= 0xFF:
        raise ValueError(f"rate not radiotap-encodable: {rate_mbps} Mbps")
    if abs(units / 2 - rate_mbps) > 1e-9:
        raise ValueError(f"rate not a multiple of 500 kbps: {rate_mbps} Mbps")
    return units


def decode_rate(units: int) -> float:
    """Decode radiotap 500 kbps units into Mbps."""
    if units <= 0:
        raise ValueError(f"invalid radiotap rate byte: {units}")
    return units / 2.0
