"""Prism monitoring header codec.

The paper's method reads capture metadata "from Radiotap [1] or Prism
headers" (Section III).  This module implements the classic Prism
(wlan-ng) monitoring header: a fixed 144-byte structure of ten
DID-tagged items (host time, MAC time, channel, RSSI, signal quality,
signal, noise, rate, direction, frame length) preceding the 802.11
frame, as produced by older wlan-ng/HostAP drivers and carried in
pcaps with ``LINKTYPE_PRISM_HEADER`` (119).

The :func:`read_trace_pcap_prism` helper mirrors
:func:`repro.radiotap.pcap.read_trace_pcap` for Prism-encapsulated
captures, so the fingerprinting pipeline accepts either format — the
same property the paper's tool had.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable

from repro.dot11.capture import CapturedFrame
from repro.radiotap.dot11_codec import decode_dot11, encode_dot11
from repro.radiotap.pcap import PcapError, PcapReader, PcapWriter

LINKTYPE_PRISM_HEADER = 119

PRISM_MSGCODE = 0x00000044
PRISM_HEADER_LEN = 144

#: DID codes of the ten items, in wire order (wlan-ng convention).
DID_HOSTTIME = 0x1041
DID_MACTIME = 0x2041
DID_CHANNEL = 0x3041
DID_RSSI = 0x4041
DID_SQ = 0x5041
DID_SIGNAL = 0x6041
DID_NOISE = 0x7041
DID_RATE = 0x8041
DID_ISTX = 0x9041
DID_FRMLEN = 0xA041

_ITEM_ORDER = (
    DID_HOSTTIME,
    DID_MACTIME,
    DID_CHANNEL,
    DID_RSSI,
    DID_SQ,
    DID_SIGNAL,
    DID_NOISE,
    DID_RATE,
    DID_ISTX,
    DID_FRMLEN,
)

_ITEM = struct.Struct("<IHHI")
_HEAD = struct.Struct("<II16s")

#: Item status values.
STATUS_PRESENT = 0
STATUS_ABSENT = 1


class PrismError(ValueError):
    """Raised on malformed Prism headers."""


@dataclass(slots=True)
class PrismHeader:
    """Parsed Prism monitoring header."""

    device_name: str
    mactime_us: int | None = None
    hosttime: int | None = None
    channel: int | None = None
    signal_dbm: int | None = None
    noise_dbm: int | None = None
    rate_mbps: float | None = None
    frame_length: int | None = None

    @property
    def length(self) -> int:
        """Header length on the wire (always 144 bytes)."""
        return PRISM_HEADER_LEN


def build_prism(
    mactime_us: int,
    channel: int,
    rate_mbps: float,
    frame_length: int,
    signal_dbm: int = -50,
    noise_dbm: int = -95,
    device_name: str = "wlan0",
) -> bytes:
    """Serialise a Prism monitoring header.

    ``rate`` uses the wlan-ng convention of 500 kbps units; signal and
    noise are encoded as unsigned dBm offsets the way HostAP reported
    them (two's complement in a u32).
    """
    rate_units = round(rate_mbps * 2)
    if not 0 < rate_units <= 0xFF:
        raise PrismError(f"rate not encodable: {rate_mbps} Mbps")
    values = {
        DID_HOSTTIME: (STATUS_PRESENT, (mactime_us // 1000) & 0xFFFFFFFF),
        DID_MACTIME: (STATUS_PRESENT, mactime_us & 0xFFFFFFFF),
        DID_CHANNEL: (STATUS_PRESENT, channel),
        DID_RSSI: (STATUS_ABSENT, 0),
        DID_SQ: (STATUS_ABSENT, 0),
        DID_SIGNAL: (STATUS_PRESENT, signal_dbm & 0xFFFFFFFF),
        DID_NOISE: (STATUS_PRESENT, noise_dbm & 0xFFFFFFFF),
        DID_RATE: (STATUS_PRESENT, rate_units),
        DID_ISTX: (STATUS_PRESENT, 0),
        DID_FRMLEN: (STATUS_PRESENT, frame_length),
    }
    parts = bytearray()
    parts += _HEAD.pack(
        PRISM_MSGCODE, PRISM_HEADER_LEN, device_name.encode()[:15].ljust(16, b"\x00")
    )
    for did in _ITEM_ORDER:
        status, data = values[did]
        parts += _ITEM.pack(did, status, 4, data)
    assert len(parts) == PRISM_HEADER_LEN
    return bytes(parts)


def parse_prism(data: bytes) -> PrismHeader:
    """Parse a Prism header from the start of ``data``."""
    if len(data) < PRISM_HEADER_LEN:
        raise PrismError(f"buffer too short for Prism header: {len(data)}")
    msgcode, msglen, devname = _HEAD.unpack_from(data)
    if msgcode != PRISM_MSGCODE:
        raise PrismError(f"bad Prism msgcode: {msgcode:#x}")
    if msglen != PRISM_HEADER_LEN:
        raise PrismError(f"bad Prism msglen: {msglen}")
    header = PrismHeader(device_name=devname.rstrip(b"\x00").decode(errors="replace"))
    offset = _HEAD.size
    for _ in range(10):
        did, status, length, raw = _ITEM.unpack_from(data, offset)
        offset += _ITEM.size
        if length != 4:
            raise PrismError(f"unexpected Prism item length: {length}")
        if status != STATUS_PRESENT:
            continue
        if did == DID_MACTIME:
            header.mactime_us = raw
        elif did == DID_HOSTTIME:
            header.hosttime = raw
        elif did == DID_CHANNEL:
            header.channel = raw
        elif did == DID_SIGNAL:
            header.signal_dbm = raw - (1 << 32) if raw > (1 << 31) else raw
        elif did == DID_NOISE:
            header.noise_dbm = raw - (1 << 32) if raw > (1 << 31) else raw
        elif did == DID_RATE:
            header.rate_mbps = raw / 2.0
        elif did == DID_FRMLEN:
            header.frame_length = raw
    return header


def write_trace_pcap_prism(
    destination: str | Path | BinaryIO, frames: Iterable[CapturedFrame]
) -> int:
    """Persist captured frames as a Prism-encapsulated pcap."""
    count = 0
    with PcapWriter(destination, linktype=LINKTYPE_PRISM_HEADER) as writer:
        for captured in frames:
            prism = build_prism(
                mactime_us=round(captured.timestamp_us),
                channel=captured.channel,
                rate_mbps=captured.rate_mbps,
                frame_length=captured.size,
                signal_dbm=round(captured.signal_dbm),
            )
            writer.write_record(
                captured.timestamp_us, prism + encode_dot11(captured.frame)
            )
            count += 1
    return count


def read_trace_pcap_prism(
    source: str | Path | BinaryIO | bytes,
) -> list[CapturedFrame]:
    """Load a Prism-encapsulated pcap into captured frames.

    The 32-bit MAC time wraps every ~71 minutes; the pcap record
    timestamp provides the absolute time, with the MAC time unused for
    ordering (records are already in capture order).
    """
    frames: list[CapturedFrame] = []
    with PcapReader(source) as reader:
        if reader.linktype != LINKTYPE_PRISM_HEADER:
            raise PcapError(
                f"expected Prism linktype 119, got {reader.linktype}"
            )
        for record in reader:
            header = parse_prism(record.data)
            decoded = decode_dot11(record.data[PRISM_HEADER_LEN:], has_fcs=True)
            frames.append(
                CapturedFrame(
                    timestamp_us=record.timestamp_us,
                    frame=decoded.frame,
                    rate_mbps=header.rate_mbps if header.rate_mbps else 1.0,
                    signal_dbm=float(
                        header.signal_dbm if header.signal_dbm is not None else -50
                    ),
                    channel=header.channel or 6,
                )
            )
    return frames
