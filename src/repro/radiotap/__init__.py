"""Radiotap and pcap codec.

A from-scratch, pure-Python implementation of:

* the Radiotap capture header (http://www.radiotap.org/) — parsing and
  generation with correct per-field natural alignment and ``present``
  bitmap chaining (:mod:`repro.radiotap.fields`, ``parser``, ``writer``);
* the 802.11 MAC header wire format for the frame subtypes the model
  uses (:mod:`repro.radiotap.dot11_codec`);
* the classic libpcap file format with ``LINKTYPE_IEEE802_11_RADIOTAP``
  (:mod:`repro.radiotap.pcap`).

Together these let the library ingest real monitor-mode captures and
persist simulated traces as standard ``.pcap`` files, exactly like the
paper's pcap-based tool (Section V-C).
"""

from repro.radiotap.dot11_codec import decode_dot11, encode_dot11
from repro.radiotap.fields import RadiotapField
from repro.radiotap.parser import RadiotapHeader, parse_radiotap
from repro.radiotap.pcap import PcapReader, PcapWriter, read_trace_pcap, write_trace_pcap
from repro.radiotap.prism import (
    PrismHeader,
    build_prism,
    parse_prism,
    read_trace_pcap_prism,
    write_trace_pcap_prism,
)
from repro.radiotap.writer import build_radiotap

__all__ = [
    "PcapReader",
    "PcapWriter",
    "PrismHeader",
    "RadiotapField",
    "RadiotapHeader",
    "build_prism",
    "build_radiotap",
    "decode_dot11",
    "encode_dot11",
    "parse_prism",
    "parse_radiotap",
    "read_trace_pcap",
    "read_trace_pcap_prism",
    "write_trace_pcap",
    "write_trace_pcap_prism",
]
