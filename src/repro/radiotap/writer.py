"""Radiotap header generation.

Builds spec-conformant radiotap headers (correct field order, natural
alignment, little-endian encoding) for the metadata the simulator's
monitor produces: TSFT, Flags, Rate, Channel and antenna signal.
Round-trips exactly through :func:`repro.radiotap.parser.parse_radiotap`.
"""

from __future__ import annotations

import struct

from repro.radiotap.fields import (
    CHAN_2GHZ,
    CHAN_CCK,
    CHAN_OFDM,
    FIELD_SPECS,
    FLAG_FCS_AT_END,
    FLAG_SHORTPRE,
    RadiotapField,
    align_offset,
    channel_frequency_mhz,
    encode_rate,
)
from repro.dot11.phy import PhyKind, phy_kind_for_rate


def build_radiotap(
    tsft_us: int | None = None,
    rate_mbps: float | None = None,
    channel: int | None = None,
    antenna_signal_dbm: int | None = None,
    short_preamble: bool = False,
    fcs_at_end: bool = True,
    flags_extra: int = 0,
) -> bytes:
    """Serialise a radiotap header with the given fields.

    Fields are emitted in present-bit order with natural alignment, as
    the spec requires.  The Flags field is always present (capture
    cards invariably set it) and carries the FCS/short-preamble bits.
    """
    fields: list[tuple[RadiotapField, bytes]] = []
    if tsft_us is not None:
        if tsft_us < 0:
            raise ValueError(f"TSFT must be >= 0: {tsft_us}")
        fields.append((RadiotapField.TSFT, struct.pack("<Q", tsft_us)))

    flags = flags_extra
    if short_preamble:
        flags |= FLAG_SHORTPRE
    if fcs_at_end:
        flags |= FLAG_FCS_AT_END
    fields.append((RadiotapField.FLAGS, bytes([flags & 0xFF])))

    if rate_mbps is not None:
        fields.append((RadiotapField.RATE, bytes([encode_rate(rate_mbps)])))
    if channel is not None:
        chan_flags = CHAN_2GHZ
        if rate_mbps is not None:
            kind = phy_kind_for_rate(rate_mbps)
            chan_flags |= CHAN_CCK if kind is PhyKind.DSSS else CHAN_OFDM
        fields.append(
            (
                RadiotapField.CHANNEL,
                struct.pack("<HH", channel_frequency_mhz(channel), chan_flags),
            )
        )
    if antenna_signal_dbm is not None:
        if not -128 <= antenna_signal_dbm <= 127:
            raise ValueError(f"signal out of s8 range: {antenna_signal_dbm}")
        fields.append(
            (RadiotapField.DBM_ANTSIGNAL, struct.pack("<b", antenna_signal_dbm))
        )

    fields.sort(key=lambda pair: pair[0].value)
    present = 0
    for which, _payload in fields:
        present |= 1 << which.value

    body = bytearray()
    offset = 8  # fixed header size
    for which, payload in fields:
        spec = FIELD_SPECS[which]
        aligned = align_offset(offset, spec.align)
        body.extend(b"\x00" * (aligned - offset))
        body.extend(payload)
        offset = aligned + len(payload)

    header = struct.pack("<BBHI", 0, 0, 8 + len(body), present)
    return header + bytes(body)
