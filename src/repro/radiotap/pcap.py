"""libpcap file reader/writer for radiotap-encapsulated 802.11 captures.

Implements the classic pcap container (24-byte global header, 16-byte
per-record headers) with microsecond timestamps and
``LINKTYPE_IEEE802_11_RADIOTAP`` (127) — the format monitor-mode
captures such as the Sigcomm'08 CRAWDAD trace ship in.

Three integration helpers bridge pcap files and the in-memory trace
model: :func:`write_trace_pcap` persists a list of
:class:`~repro.dot11.capture.CapturedFrame`, :func:`read_trace_pcap`
re-materialises them, and :func:`iter_trace_pcap` streams them one at
a time in O(1) memory (the streaming engine's on-disk source), so
every fingerprinting experiment can run off a standard on-disk
capture.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.dot11.capture import CapturedFrame
from repro.radiotap.dot11_codec import decode_dot11, encode_dot11
from repro.radiotap.parser import parse_radiotap
from repro.radiotap.writer import build_radiotap

PCAP_MAGIC_US = 0xA1B2C3D4
PCAP_MAGIC_US_SWAPPED = 0xD4C3B2A1
LINKTYPE_IEEE802_11_RADIOTAP = 127

_GLOBAL = struct.Struct("<IHHiIII")
_GLOBAL_BE = struct.Struct(">IHHiIII")
_RECORD = struct.Struct("<IIII")
_RECORD_BE = struct.Struct(">IIII")


class PcapError(ValueError):
    """Raised on malformed pcap containers."""


@dataclass(slots=True)
class PcapRecord:
    """One raw pcap record: timestamp plus captured bytes."""

    ts_sec: int
    ts_usec: int
    orig_len: int
    data: bytes

    @property
    def timestamp_us(self) -> float:
        """Timestamp in microseconds since the epoch of the capture."""
        return self.ts_sec * 1e6 + self.ts_usec


class PcapWriter:
    """Streaming pcap writer.

    Usable as a context manager::

        with PcapWriter(path) as writer:
            writer.write_record(timestamp_us, frame_bytes)
    """

    def __init__(
        self,
        destination: str | Path | BinaryIO,
        linktype: int = LINKTYPE_IEEE802_11_RADIOTAP,
        snaplen: int = 65535,
    ) -> None:
        if isinstance(destination, (str, Path)):
            self._stream: BinaryIO = open(destination, "wb")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False
        self._snaplen = snaplen
        self._stream.write(
            _GLOBAL.pack(PCAP_MAGIC_US, 2, 4, 0, 0, snaplen, linktype)
        )

    def write_record(self, timestamp_us: float, data: bytes) -> None:
        """Append one record; truncates at the snap length."""
        if timestamp_us < 0:
            raise PcapError(f"negative timestamp: {timestamp_us}")
        captured = data[: self._snaplen]
        ts_sec, ts_usec = divmod(round(timestamp_us), 1_000_000)
        self._stream.write(_RECORD.pack(ts_sec, ts_usec, len(captured), len(data)))
        self._stream.write(captured)

    def close(self) -> None:
        """Flush and close (only closes streams this writer opened)."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PcapReader:
    """Streaming pcap reader supporting both byte orders."""

    def __init__(self, source: str | Path | BinaryIO | bytes) -> None:
        if isinstance(source, bytes):
            self._stream: BinaryIO = io.BytesIO(source)
            self._owns_stream = True
        elif isinstance(source, (str, Path)):
            self._stream = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False
        header = self._stream.read(_GLOBAL.size)
        if len(header) != _GLOBAL.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack_from("<I", header)[0]
        if magic == PCAP_MAGIC_US:
            self._global_struct, self._record_struct = _GLOBAL, _RECORD
        elif magic == PCAP_MAGIC_US_SWAPPED:
            self._global_struct, self._record_struct = _GLOBAL_BE, _RECORD_BE
        else:
            raise PcapError(f"bad pcap magic: {magic:#010x}")
        (
            _magic,
            major,
            minor,
            _thiszone,
            _sigfigs,
            self.snaplen,
            self.linktype,
        ) = self._global_struct.unpack(header)
        if (major, minor) != (2, 4):
            raise PcapError(f"unsupported pcap version: {major}.{minor}")

    def __iter__(self) -> Iterator[PcapRecord]:
        return self

    def __next__(self) -> PcapRecord:
        header = self._stream.read(_RECORD.size)
        if not header:
            raise StopIteration
        if len(header) != _RECORD.size:
            raise PcapError("truncated pcap record header")
        ts_sec, ts_usec, incl_len, orig_len = self._record_struct.unpack(header)
        if ts_usec >= 1_000_000:
            raise PcapError(f"invalid microsecond field: {ts_usec}")
        data = self._stream.read(incl_len)
        if len(data) != incl_len:
            raise PcapError("truncated pcap record body")
        return PcapRecord(ts_sec=ts_sec, ts_usec=ts_usec, orig_len=orig_len, data=data)

    def close(self) -> None:
        """Close the underlying stream if this reader opened it."""
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace_pcap(
    destination: str | Path | BinaryIO, frames: Iterable[CapturedFrame]
) -> int:
    """Persist captured frames as a radiotap pcap; returns the count.

    Each frame is serialised as radiotap (TSFT/Flags/Rate/Channel/
    signal) followed by the full 802.11 bytes with FCS.
    """
    count = 0
    with PcapWriter(destination) as writer:
        for captured in frames:
            radiotap = build_radiotap(
                tsft_us=round(captured.timestamp_us),
                rate_mbps=captured.rate_mbps,
                channel=captured.channel,
                antenna_signal_dbm=round(captured.signal_dbm),
            )
            writer.write_record(
                captured.timestamp_us, radiotap + encode_dot11(captured.frame)
            )
            count += 1
    return count


def iter_trace_pcap(
    source: str | Path | BinaryIO | bytes, skip_bad_fcs: bool = False
) -> Iterator[CapturedFrame]:
    """Stream a radiotap pcap one frame at a time, in O(1) memory.

    The streaming engine's pcap source: records are decoded lazily as
    the iterator advances, so captures of unbounded length never
    materialise as a list.  Timestamps prefer the radiotap TSFT (µs
    precision inside the capture) and fall back to the pcap record
    timestamp.  Frames whose FCS fails verification are kept unless
    ``skip_bad_fcs`` is set — mirroring the choice a real monitoring
    deployment must make.
    """
    with PcapReader(source) as reader:
        if reader.linktype != LINKTYPE_IEEE802_11_RADIOTAP:
            raise PcapError(
                f"expected radiotap linktype 127, got {reader.linktype}"
            )
        for record in reader:
            header = parse_radiotap(record.data)
            decoded = decode_dot11(record.data[header.length :], has_fcs=True)
            if skip_bad_fcs and not decoded.fcs_ok:
                continue
            timestamp_us = (
                float(header.tsft_us)
                if header.tsft_us is not None
                else record.timestamp_us
            )
            yield CapturedFrame(
                timestamp_us=timestamp_us,
                frame=decoded.frame,
                rate_mbps=header.rate_mbps if header.rate_mbps else 1.0,
                signal_dbm=float(
                    header.antenna_signal_dbm
                    if header.antenna_signal_dbm is not None
                    else -50
                ),
                channel=header.channel or 6,
            )


def read_trace_pcap(
    source: str | Path | BinaryIO | bytes, skip_bad_fcs: bool = False
) -> list[CapturedFrame]:
    """Load a radiotap pcap fully into memory (batch pipeline)."""
    return list(iter_trace_pcap(source, skip_bad_fcs=skip_bad_fcs))


def iter_trace_tables(
    source: str | Path | BinaryIO | bytes,
    chunk_frames: int = 8192,
    skip_bad_fcs: bool = False,
):
    """Stream a radiotap pcap as columnar chunks of ``chunk_frames``.

    The chunked streaming engine's pcap source: frames are decoded
    lazily (:func:`iter_trace_pcap`) and interned ``chunk_frames`` at a
    time into independent :class:`~repro.traces.table.FrameTable`
    chunks, so memory stays bounded by the chunk size while ingest runs
    through the vectorized columnar path.  The final chunk may be
    shorter.
    """
    if chunk_frames < 1:
        raise ValueError(f"chunk_frames must be >= 1: {chunk_frames}")
    from repro.traces.table import FrameTable

    batch: list[CapturedFrame] = []
    for captured in iter_trace_pcap(source, skip_bad_fcs=skip_bad_fcs):
        batch.append(captured)
        if len(batch) >= chunk_frames:
            yield FrameTable.from_frames(batch)
            batch = []
    if batch:
        yield FrameTable.from_frames(batch)


def read_trace_table(source: str | Path | BinaryIO | bytes, skip_bad_fcs: bool = False):
    """Load a radiotap pcap straight into a columnar
    :class:`~repro.traces.table.FrameTable`.

    Records are decoded and interned in a single streaming pass — the
    columnar analysis backbone never sees a :class:`Trace`
    intermediate, and the decoded frames stay attached to the table
    for lossless ``to_frames`` round-trips.
    """
    from repro.traces.table import FrameTable

    return FrameTable.from_frames(iter_trace_pcap(source, skip_bad_fcs=skip_bad_fcs))
