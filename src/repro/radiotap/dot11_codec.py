"""802.11 MAC header wire codec.

Serialises :class:`repro.dot11.frames.Dot11Frame` objects to the exact
on-air byte layout (frame control, duration/ID, address fields,
sequence control, QoS control where applicable, payload, FCS) and
parses them back.  The FCS is a real IEEE CRC-32 so produced captures
are indistinguishable from card output at the MAC layer.

Only the subtypes in :class:`repro.dot11.frames.FrameSubtype` are
supported — the set a 2.4 GHz b/g monitor actually encounters.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.dot11.frames import Dot11Frame, FrameSubtype, FrameType
from repro.dot11.mac import MacAddress

_FCS_LEN = 4
_SEQ = struct.Struct("<H")


class Dot11CodecError(ValueError):
    """Raised on malformed 802.11 frame bytes."""


def _frame_control(frame: Dot11Frame) -> bytes:
    """Build the 2-byte frame-control field."""
    first = (frame.subtype.ftype.value << 2) | (frame.subtype.subtype_code << 4)
    second = (
        (1 if frame.to_ds else 0)
        | (2 if frame.from_ds else 0)
        | (8 if frame.retry else 0)
        | (16 if frame.power_mgmt else 0)
        | (64 if frame.protected else 0)
    )
    return bytes([first, second])


def _addr1_only(frame: Dot11Frame) -> bool:
    return frame.subtype in (FrameSubtype.ACK, FrameSubtype.CTS)


def _addr12_only(frame: Dot11Frame) -> bool:
    return frame.subtype in (
        FrameSubtype.RTS,
        FrameSubtype.PS_POLL,
        FrameSubtype.BLOCK_ACK,
        FrameSubtype.BLOCK_ACK_REQ,
    )


def _is_qos(frame: Dot11Frame) -> bool:
    return frame.subtype in (FrameSubtype.QOS_DATA, FrameSubtype.QOS_NULL)


def header_length(frame: Dot11Frame) -> int:
    """MAC header length (bytes) for this frame's format."""
    if _addr1_only(frame):
        return 10
    if _addr12_only(frame):
        return 16
    base = 24
    return base + 2 if _is_qos(frame) else base


def encode_dot11(frame: Dot11Frame) -> bytes:
    """Serialise a frame to its on-air bytes (with FCS).

    The payload is zero-padded (or truncated) so the output is exactly
    ``frame.size`` bytes, which keeps the Radiotap-visible size
    authoritative — the same invariant capture hardware maintains.
    """
    parts = bytearray()
    parts += _frame_control(frame)
    parts += struct.pack("<H", frame.duration_us & 0xFFFF)
    parts += frame.addr1.to_bytes()
    if not _addr1_only(frame):
        addr2 = frame.addr2
        if addr2 is None:
            raise Dot11CodecError(f"{frame.subtype.label} frame requires addr2")
        parts += addr2.to_bytes()
        if not _addr12_only(frame):
            addr3 = frame.addr3 if frame.addr3 is not None else frame.addr1
            parts += addr3.to_bytes()
            parts += _SEQ.pack((frame.seq & 0x0FFF) << 4)
            if _is_qos(frame):
                parts += b"\x00\x00"

    body_budget = frame.size - len(parts) - _FCS_LEN
    if body_budget < 0:
        raise Dot11CodecError(
            f"frame.size={frame.size} smaller than {frame.subtype.label} "
            f"header ({len(parts)}) + FCS"
        )
    payload = frame.payload[:body_budget]
    parts += payload
    parts += b"\x00" * (body_budget - len(payload))
    parts += struct.pack("<I", zlib.crc32(bytes(parts)))
    return bytes(parts)


@dataclass(slots=True)
class DecodedDot11:
    """Result of parsing frame bytes: the frame plus FCS validity."""

    frame: Dot11Frame
    fcs_ok: bool


def decode_dot11(data: bytes, has_fcs: bool = True) -> DecodedDot11:
    """Parse on-air 802.11 bytes back into a :class:`Dot11Frame`.

    ``has_fcs`` mirrors the radiotap Flags bit: when set, the trailing
    four bytes are checked as a CRC-32.
    """
    if len(data) < 10:
        raise Dot11CodecError(f"frame too short: {len(data)} bytes")
    ftype_code = (data[0] >> 2) & 0x3
    subtype_code = (data[0] >> 4) & 0xF
    if (data[0] & 0x3) != 0:
        raise Dot11CodecError(f"unsupported 802.11 protocol version: {data[0] & 0x3}")
    subtype = FrameSubtype.from_codes(ftype_code, subtype_code)
    control = data[1]
    (duration,) = struct.unpack_from("<H", data, 2)
    addr1 = MacAddress.from_bytes(data[4:10])

    addr2: MacAddress | None = None
    addr3: MacAddress | None = None
    seq = 0
    offset = 10
    if subtype not in (FrameSubtype.ACK, FrameSubtype.CTS):
        if len(data) < offset + 6:
            raise Dot11CodecError("truncated addr2")
        addr2 = MacAddress.from_bytes(data[offset : offset + 6])
        offset += 6
        three_address = subtype.ftype in (FrameType.MANAGEMENT, FrameType.DATA)
        if three_address:
            if len(data) < offset + 8:
                raise Dot11CodecError("truncated addr3/seq")
            addr3 = MacAddress.from_bytes(data[offset : offset + 6])
            offset += 6
            (raw_seq,) = _SEQ.unpack_from(data, offset)
            seq = raw_seq >> 4
            offset += 2
            if subtype in (FrameSubtype.QOS_DATA, FrameSubtype.QOS_NULL):
                if len(data) < offset + 2:
                    raise Dot11CodecError("truncated QoS control")
                offset += 2

    fcs_ok = True
    payload_end = len(data)
    if has_fcs:
        if len(data) < offset + _FCS_LEN:
            raise Dot11CodecError("frame too short to contain FCS")
        payload_end = len(data) - _FCS_LEN
        (stored,) = struct.unpack_from("<I", data, payload_end)
        fcs_ok = stored == zlib.crc32(data[:payload_end])

    frame = Dot11Frame(
        subtype=subtype,
        size=len(data) if has_fcs else len(data) + _FCS_LEN,
        addr1=addr1,
        addr2=addr2,
        addr3=addr3,
        retry=bool(control & 8),
        to_ds=bool(control & 1),
        from_ds=bool(control & 2),
        protected=bool(control & 64),
        power_mgmt=bool(control & 16),
        duration_us=duration,
        seq=seq,
        payload=bytes(data[offset:payload_end]),
    )
    return DecodedDot11(frame=frame, fcs_ok=fcs_ok)
