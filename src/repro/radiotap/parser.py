"""Radiotap header parser.

Implements the full alignment/present-chaining logic of the radiotap
specification for the fields in :data:`repro.radiotap.fields.FIELD_SPECS`.
Unknown high-numbered fields cannot be skipped safely (their size is
unknown), so a present bit outside the spec table raises — with the
exception of vendor namespaces, which carry an explicit skip length and
are handled.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.radiotap.fields import (
    FIELD_SPECS,
    FLAG_BADFCS,
    FLAG_FCS_AT_END,
    RadiotapField,
    align_offset,
    channel_from_frequency,
    decode_rate,
)

_HEADER = struct.Struct("<BBHI")


class RadiotapError(ValueError):
    """Raised on malformed radiotap headers."""


@dataclass(slots=True)
class RadiotapHeader:
    """Parsed radiotap metadata.

    ``length`` is the total radiotap header length; the 802.11 frame
    begins at that offset in the capture buffer.
    """

    length: int
    tsft_us: int | None = None
    flags: int | None = None
    rate_mbps: float | None = None
    channel_mhz: int | None = None
    channel_flags: int | None = None
    antenna_signal_dbm: int | None = None
    antenna_noise_dbm: int | None = None
    antenna: int | None = None
    rx_flags: int | None = None
    present_bits: list[int] = field(default_factory=list)

    @property
    def channel(self) -> int | None:
        """2.4 GHz channel number, if the Channel field was present."""
        if self.channel_mhz is None:
            return None
        return channel_from_frequency(self.channel_mhz)

    @property
    def has_fcs(self) -> bool:
        """Whether the captured frame bytes include the 4-byte FCS."""
        return bool(self.flags is not None and self.flags & FLAG_FCS_AT_END)

    @property
    def fcs_bad(self) -> bool:
        """Whether the capture card flagged a failed FCS check."""
        return bool(self.flags is not None and self.flags & FLAG_BADFCS)


def _read_present_words(data: bytes) -> tuple[list[int], int]:
    """Read the chained ``present`` words; return (words, end offset)."""
    words: list[int] = []
    offset = 4
    while True:
        if offset + 4 > len(data):
            raise RadiotapError("truncated radiotap present chain")
        (word,) = struct.unpack_from("<I", data, offset)
        words.append(word)
        offset += 4
        if not word & (1 << RadiotapField.EXT):
            return words, offset


def parse_radiotap(data: bytes) -> RadiotapHeader:
    """Parse a radiotap header from the start of ``data``.

    Returns the parsed header; ``data[header.length:]`` is the 802.11
    frame.  Raises :class:`RadiotapError` on malformed input.
    """
    if len(data) < 8:
        raise RadiotapError(f"buffer too short for radiotap: {len(data)} bytes")
    version, _pad, length, _present0 = _HEADER.unpack_from(data)
    if version != 0:
        raise RadiotapError(f"unsupported radiotap version: {version}")
    if length < 8 or length > len(data):
        raise RadiotapError(f"bad radiotap length: {length} (buffer {len(data)})")

    words, offset = _read_present_words(data[:length])
    header = RadiotapHeader(length=length)

    # Only the first present word's fields are decoded; additional words
    # belong to vendor/extended namespaces we do not emit.  Their data
    # regions cannot be located without namespace knowledge, so any
    # non-EXT bit in later words is an error.
    for extra in words[1:]:
        if extra & ~(1 << RadiotapField.EXT):
            raise RadiotapError("radiotap extended namespaces are not supported")

    present = words[0]
    for bit in range(31):
        if not present & (1 << bit):
            continue
        try:
            spec = FIELD_SPECS[RadiotapField(bit)]
        except (ValueError, KeyError):
            raise RadiotapError(f"unsupported radiotap field bit {bit}") from None
        offset = align_offset(offset, spec.align)
        if offset + spec.size > length:
            raise RadiotapError(f"field {spec.field.name} overruns radiotap header")
        _decode_field(header, spec.field, data, offset)
        header.present_bits.append(bit)
        offset += spec.size
    return header


def _decode_field(
    header: RadiotapHeader, which: RadiotapField, data: bytes, offset: int
) -> None:
    """Decode one field into ``header`` (offset already aligned)."""
    if which is RadiotapField.TSFT:
        (header.tsft_us,) = struct.unpack_from("<Q", data, offset)
    elif which is RadiotapField.FLAGS:
        header.flags = data[offset]
    elif which is RadiotapField.RATE:
        header.rate_mbps = decode_rate(data[offset])
    elif which is RadiotapField.CHANNEL:
        freq, chan_flags = struct.unpack_from("<HH", data, offset)
        header.channel_mhz = freq
        header.channel_flags = chan_flags
    elif which is RadiotapField.DBM_ANTSIGNAL:
        (header.antenna_signal_dbm,) = struct.unpack_from("<b", data, offset)
    elif which is RadiotapField.DBM_ANTNOISE:
        (header.antenna_noise_dbm,) = struct.unpack_from("<b", data, offset)
    elif which is RadiotapField.ANTENNA:
        header.antenna = data[offset]
    elif which is RadiotapField.RX_FLAGS:
        (header.rx_flags,) = struct.unpack_from("<H", data, offset)
    else:
        # Present in the spec table but carrying data we do not use
        # (FHSS, attenuation, tx power, dB-relative signal): skip.
        pass
