"""Durable storage for the fingerprinting system (DESIGN.md §5).

The paper's deployment story is a monitor that *keeps* its learnt
fingerprint database across sessions; this package makes the learnt
state durable:

* :mod:`repro.persistence.store` — versioned on-disk format for a
  :class:`~repro.core.database.ReferenceDatabase`: one compact ``.npz``
  holding the packed matrices, one JSONL sidecar with per-device
  metadata, one ``meta.json`` describing the layout.  Loading restores
  the incremental packed view by adopting the matrices directly — no
  per-signature Python repack — and reproduces match scores bit for
  bit;
* :mod:`repro.persistence.checkpoint` — snapshot/restore for the
  streaming engine: builder histograms, open-window state and stream
  counters, so a :class:`~repro.streaming.engine.StreamEngine` can
  stop mid-capture and resume exactly where it left off.
"""

from repro.persistence.store import (
    FORMAT_VERSION,
    LoadedDatabase,
    database_info,
    load_database,
    save_database,
)
from repro.persistence.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "FORMAT_VERSION",
    "LoadedDatabase",
    "database_info",
    "load_checkpoint",
    "load_database",
    "save_checkpoint",
    "save_database",
]
