"""Streaming-engine checkpoints: stop mid-capture, resume exactly.

A checkpoint is one JSON document capturing everything the
:class:`~repro.streaming.engine.StreamEngine` accumulates while
consuming frames:

* the stream counters (:class:`~repro.streaming.engine.StreamStats`);
* the :class:`~repro.streaming.windows.WindowManager` state — stream
  origin, next slide index, and every open window with its frame
  count, sender set, eviction list and the full per-device histogram
  accumulators of its :class:`~repro.streaming.builder.StreamingSignatureBuilder`,
  including the observation extractor's channel clock (for the generic
  Markov-1 extractor that memory is its predecessor *frame*, which is
  embedded as a serialised :class:`~repro.dot11.capture.CapturedFrame`).

Feeding the remaining frames to a restored engine produces exactly the
events and stats an uninterrupted run would have produced (pinned in
``tests/test_persistence.py``).  Deliberately **not** captured: the
reference database (persist it with :mod:`repro.persistence.store` —
it evolves independently of the capture position) and the analyzers'
own frame-level state (re-attach analyzers at construction; the
rogue-AP guard restarts its in-window accumulation after a resume).
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress

#: Checkpoint format identifier and current version.
CHECKPOINT_FORMAT = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1

_FRAME_KEY = "__captured_frame__"


# -- frame (de)serialisation -------------------------------------------
def _frame_to_payload(captured: CapturedFrame) -> dict:
    frame = captured.frame
    return {
        "timestamp_us": captured.timestamp_us,
        "rate_mbps": captured.rate_mbps,
        "signal_dbm": captured.signal_dbm,
        "channel": captured.channel,
        "airtime_us": captured.airtime_us,
        "frame": {
            "subtype": frame.subtype.name,
            "size": frame.size,
            "addr1": frame.addr1.value,
            "addr2": None if frame.addr2 is None else frame.addr2.value,
            "addr3": None if frame.addr3 is None else frame.addr3.value,
            "retry": frame.retry,
            "to_ds": frame.to_ds,
            "from_ds": frame.from_ds,
            "protected": frame.protected,
            "power_mgmt": frame.power_mgmt,
            "duration_us": frame.duration_us,
            "seq": frame.seq,
            "payload": frame.payload.hex(),
        },
    }


def _frame_from_payload(payload: dict) -> CapturedFrame:
    raw = payload["frame"]
    frame = Dot11Frame(
        subtype=FrameSubtype[raw["subtype"]],
        size=int(raw["size"]),
        addr1=MacAddress(int(raw["addr1"])),
        addr2=None if raw["addr2"] is None else MacAddress(int(raw["addr2"])),
        addr3=None if raw["addr3"] is None else MacAddress(int(raw["addr3"])),
        retry=bool(raw["retry"]),
        to_ds=bool(raw["to_ds"]),
        from_ds=bool(raw["from_ds"]),
        protected=bool(raw["protected"]),
        power_mgmt=bool(raw["power_mgmt"]),
        duration_us=int(raw["duration_us"]),
        seq=int(raw["seq"]),
        payload=bytes.fromhex(raw["payload"]),
    )
    return CapturedFrame(
        timestamp_us=float(payload["timestamp_us"]),
        frame=frame,
        rate_mbps=float(payload["rate_mbps"]),
        signal_dbm=float(payload["signal_dbm"]),
        channel=int(payload["channel"]),
        airtime_us=payload["airtime_us"],
    )


def _encode(value):
    """Make a state tree JSON-safe (frames become tagged dicts)."""
    if isinstance(value, CapturedFrame):
        return {_FRAME_KEY: _frame_to_payload(value)}
    if isinstance(value, dict):
        return {key: _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    return value


def _decode(value):
    """Inverse of :func:`_encode`."""
    if isinstance(value, dict):
        if set(value) == {_FRAME_KEY}:
            return _frame_from_payload(value[_FRAME_KEY])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


# -- checkpoint I/O -----------------------------------------------------
def save_checkpoint(engine, path: str | Path) -> Path:
    """Write one engine's resumable state to a JSON checkpoint file.

    The write is atomic (temp file + ``os.replace`` in the target
    directory): a crash mid-write — the very failure periodic
    checkpointing guards against — leaves the previous good snapshot
    in place instead of a truncated file.
    """
    target = Path(path)
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "stats": dataclasses.asdict(engine.stats),
        "windows": _encode(engine._windows.export_state()),
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text(json.dumps(payload) + "\n")
    os.replace(scratch, target)
    return target


def load_checkpoint(engine, path: str | Path) -> None:
    """Restore an engine from a checkpoint written by :func:`save_checkpoint`.

    The engine must be freshly constructed with the same builder
    factory and :class:`~repro.streaming.windows.WindowConfig` the
    snapshot was taken under (config mismatches raise ``ValueError``).
    """
    from repro.streaming.engine import StreamStats

    payload = json.loads(Path(path).read_text())
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"not a stream checkpoint: {path}")
    version = int(payload.get("version", 0))
    if not 1 <= version <= CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version} "
            f"(this build reads versions 1..{CHECKPOINT_VERSION})"
        )
    engine._windows.restore_state(_decode(payload["windows"]))
    engine.stats = StreamStats(**payload["stats"])
