"""Versioned on-disk format for reference databases (DESIGN.md §5).

A saved database is a directory of three files:

* ``meta.json`` — format name, version, layout, the network parameter
  the signatures were built from, and the frame-type table (names and
  bin counts, in pack order);
* ``matrices.npz`` — the packed matrices: the device list as one
  ``uint64`` array plus, per frame type ``j``, the ``(N, bins)``
  float64 frequency matrix ``freq_j`` and the ``(N,)`` weight vector
  ``weight_j`` — exactly the arrays the matching engine multiplies, so
  a loaded database reproduces match scores bit for bit;
* ``devices.jsonl`` — one JSON object per device, in insertion order:
  MAC, the frame types the device exhibits (presence is *not*
  derivable from the matrices — an all-zero row is a legal histogram),
  and its observation counts.

Databases whose signatures disagree on a frame type's bin count cannot
be packed into rectangular matrices; they are stored in the ``ragged``
layout instead (per-device histogram arrays ``sig_{i}_{j}``, weights
in the sidecar) and re-pack lazily on first use.

Loading a packed layout calls
:meth:`~repro.core.database._PackBuffers.adopt` with the matrices
straight off disk: the incremental packed view is restored with one
vectorized row-normalisation per frame type instead of the
per-signature Python repack, and the signature histograms are views
into the same loaded arrays (no duplication).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase, _PackBuffers
from repro.core.signature import Signature

#: On-disk format identifier and current version.
FORMAT_NAME = "repro-refdb"
FORMAT_VERSION = 1

_META_FILE = "meta.json"
_MATRICES_FILE = "matrices.npz"
_DEVICES_FILE = "devices.jsonl"


@dataclass(frozen=True)
class LoadedDatabase:
    """What :func:`load_database` returns."""

    database: ReferenceDatabase
    #: Network parameter the signatures were built from (``None`` when
    #: the saver did not record one).
    parameter: str | None
    version: int
    layout: str
    path: Path


def save_database(
    database: ReferenceDatabase,
    path: str | Path,
    parameter: str | None = None,
) -> Path:
    """Persist a reference database to a store directory.

    ``parameter`` records which network parameter the signatures were
    built from, so tools can re-create the right
    :class:`~repro.core.signature.SignatureBuilder` at load time.
    Returns the store path.
    """
    store = Path(path)
    store.mkdir(parents=True, exist_ok=True)
    entries = database.items()
    packed = database.packed()
    arrays: dict[str, np.ndarray] = {
        "devices": np.array(
            [device.value for device, _ in entries], dtype=np.uint64
        )
    }
    if packed is not None:
        layout = "packed"
        frame_types = list(packed.frame_types)
        bin_counts = {
            ftype: int(packed.frequencies[ftype].shape[-1]) for ftype in frame_types
        }
        for j, ftype in enumerate(frame_types):
            arrays[f"freq_{j}"] = packed.frequencies[ftype]
            arrays[f"weight_{j}"] = packed.weights[ftype]
    elif entries:
        layout = "ragged"
        frame_types = []
        seen: set[str] = set()
        for _, signature in entries:
            for ftype in signature.histograms:
                if ftype not in seen:
                    seen.add(ftype)
                    frame_types.append(ftype)
        bin_counts = {}
        for i, (_, signature) in enumerate(entries):
            for j, ftype in enumerate(signature.histograms):
                arrays[f"sig_{i}_{j}"] = np.asarray(
                    signature.histograms[ftype], dtype=np.float64
                )
    else:
        layout = "packed"
        frame_types = []
        bin_counts = {}

    with open(store / _MATRICES_FILE, "wb") as handle:
        np.savez(handle, **arrays)

    with open(store / _DEVICES_FILE, "w") as handle:
        for i, (device, signature) in enumerate(entries):
            line: dict = {
                "index": i,
                "mac": str(device),
                "frame_types": list(signature.histograms),
                "observation_counts": dict(signature.observation_counts),
            }
            if layout == "ragged":
                line["weights"] = dict(signature.weights)
            handle.write(json.dumps(line, sort_keys=True))
            handle.write("\n")

    meta = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "layout": layout,
        "parameter": parameter,
        "device_count": len(entries),
        "frame_types": frame_types,
        "bin_counts": bin_counts,
    }
    (store / _META_FILE).write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
    return store


def _read_meta(store: Path) -> dict:
    meta_path = store / _META_FILE
    if not meta_path.is_file():
        raise FileNotFoundError(f"not a reference database store: {store}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format") != FORMAT_NAME:
        raise ValueError(f"unknown store format {meta.get('format')!r} at {store}")
    version = int(meta.get("version", 0))
    if not 1 <= version <= FORMAT_VERSION:
        raise ValueError(
            f"unsupported store version {version} at {store} "
            f"(this build reads versions 1..{FORMAT_VERSION})"
        )
    return meta


def _read_sidecar(store: Path, expected: int) -> list[dict]:
    lines = [
        json.loads(line)
        for line in (store / _DEVICES_FILE).read_text().splitlines()
        if line.strip()
    ]
    if len(lines) != expected:
        raise ValueError(
            f"device sidecar lists {len(lines)} devices, meta says {expected}"
        )
    return lines


def is_database_store(path: str | Path) -> bool:
    """True when ``path`` looks like a saved reference database."""
    return (Path(path) / _META_FILE).is_file()


def load_database(path: str | Path) -> LoadedDatabase:
    """Load a saved reference database, packed view included.

    The restored database matches the saved one bin for bin — match
    scores against it are bitwise identical (the matrices are the same
    float64 values, multiplied in the same shapes).
    """
    store = Path(path)
    meta = _read_meta(store)
    sidecar = _read_sidecar(store, int(meta["device_count"]))
    with np.load(store / _MATRICES_FILE) as archive:
        arrays = {key: archive[key] for key in archive.files}

    devices = [MacAddress(int(value)) for value in arrays["devices"]]
    for line, device in zip(sidecar, devices):
        if MacAddress.parse(line["mac"]) != device:
            raise ValueError(
                f"sidecar/matrix device mismatch at index {line['index']}: "
                f"{line['mac']} vs {device}"
            )

    frame_types: list[str] = list(meta["frame_types"])
    signatures: dict[MacAddress, Signature] = {}
    buffers: _PackBuffers | None = None
    if meta["layout"] == "packed":
        frequencies = {
            ftype: arrays[f"freq_{j}"] for j, ftype in enumerate(frame_types)
        }
        weights = {
            ftype: arrays[f"weight_{j}"] for j, ftype in enumerate(frame_types)
        }
        members = {ftype: 0 for ftype in frame_types}
        for i, (line, device) in enumerate(zip(sidecar, devices)):
            histograms = {}
            device_weights = {}
            for ftype in line["frame_types"]:
                histograms[ftype] = frequencies[ftype][i]
                device_weights[ftype] = float(weights[ftype][i])
                members[ftype] += 1
            signatures[device] = Signature(
                histograms=histograms,
                weights=device_weights,
                observation_counts={
                    ftype: int(count)
                    for ftype, count in line["observation_counts"].items()
                },
            )
        members = {ftype: count for ftype, count in members.items() if count}
        frequencies = {f: m for f, m in frequencies.items() if f in members}
        weights = {f: v for f, v in weights.items() if f in members}
        if devices:
            buffers = _PackBuffers.adopt(devices, frequencies, weights, members)
    elif meta["layout"] == "ragged":
        for i, (line, device) in enumerate(zip(sidecar, devices)):
            histograms = {
                ftype: arrays[f"sig_{i}_{j}"]
                for j, ftype in enumerate(line["frame_types"])
            }
            signatures[device] = Signature(
                histograms=histograms,
                weights={
                    ftype: float(weight) for ftype, weight in line["weights"].items()
                },
                observation_counts={
                    ftype: int(count)
                    for ftype, count in line["observation_counts"].items()
                },
            )
    else:
        raise ValueError(f"unknown store layout {meta['layout']!r} at {store}")

    database = ReferenceDatabase._restore(signatures, buffers)
    return LoadedDatabase(
        database=database,
        parameter=meta.get("parameter"),
        version=int(meta["version"]),
        layout=meta["layout"],
        path=store,
    )


def database_info(path: str | Path) -> dict:
    """Store metadata plus on-disk sizes, without loading matrices."""
    store = Path(path)
    meta = _read_meta(store)
    sizes = {
        name: (store / name).stat().st_size
        for name in (_META_FILE, _MATRICES_FILE, _DEVICES_FILE)
        if (store / name).is_file()
    }
    info = dict(meta)
    info["path"] = str(store)
    info["bytes"] = sizes
    info["total_bytes"] = sum(sizes.values())
    return info
