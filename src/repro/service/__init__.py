"""Multi-sensor ingest service (DESIGN.md §9).

The production deployment of the paper's pipeline: N capture sensors
stream columnar chunks over a length-prefixed wire format
(:mod:`~repro.service.wire`) into one long-running
:class:`IngestServer`, which partitions each sensor's traffic across
shard engines with the PR 3 consistent-hash ring
(:class:`~repro.service.router.ShardRouter`), harvests every closed
window's gated signatures, and merges the lot — deterministically —
into one shared reference database.  :func:`run_inline` is the
sequential no-sockets reference the service is bit-for-bit equivalent
to.
"""

from repro.service.router import ShardRouter
from repro.service.server import (
    IngestServer,
    InlineResult,
    ReferenceHarvester,
    SensorPipeline,
    SensorStats,
    ServiceConfig,
    ServiceStats,
    merge_harvests,
    run_inline,
)
from repro.service.session import SensorSession, SessionReport
from repro.service.wire import (
    RECORD_CHUNK,
    RECORD_END,
    RECORD_HELLO,
    WIRE_VERSION,
    WireError,
    decode_chunk,
    decode_json,
    encode_chunk,
    encode_json,
    encode_record,
    iter_records,
    read_record,
)

__all__ = [
    "IngestServer",
    "InlineResult",
    "RECORD_CHUNK",
    "RECORD_END",
    "RECORD_HELLO",
    "ReferenceHarvester",
    "SensorPipeline",
    "SensorSession",
    "SensorStats",
    "ServiceConfig",
    "ServiceStats",
    "SessionReport",
    "ShardRouter",
    "WIRE_VERSION",
    "WireError",
    "decode_chunk",
    "decode_json",
    "encode_chunk",
    "encode_json",
    "encode_record",
    "iter_records",
    "merge_harvests",
    "read_record",
    "run_inline",
]
