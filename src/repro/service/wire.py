"""Columnar wire format for remote sensor ingest (DESIGN.md §9).

A sensor session is a one-way byte stream of length-prefixed,
checksummed **records**:

```
offset  size  field
0       4     magic  b"RPWF"
4       2     format version (little-endian u16, currently 1)
6       1     record type (1 HELLO, 2 CHUNK, 3 END)
7       1     reserved flags (0)
8       4     payload length (little-endian u32)
12      4     crc32 of the payload (little-endian u32)
16      n     payload
```

``HELLO`` and ``END`` carry a UTF-8 JSON object (session metadata and
final counters).  ``CHUNK`` carries one columnar
:class:`~repro.traces.table.FrameTable` chunk:

```
offset   size   field
0        4      header length h (little-endian u32)
4        h      UTF-8 JSON header: rows, senders (MAC integers,
                first-appearance order), ftype_keys
4+h      rows*8 timestamp_us  (little-endian float64)
...      rows*8 size          (little-endian float64)
...      rows*8 rate_mbps     (little-endian float64)
...      rows*8 sender_idx    (little-endian int64, -1 = ACK/CTS)
...      rows*8 ftype_idx     (little-endian int64)
```

Columns are raw IEEE-754/two's-complement bytes, so
:func:`decode_chunk` reproduces :func:`encode_chunk`'s input **bit for
bit** — every timestamp, size, rate, intern code and intern tuple is
identical (property-pinned in ``tests/test_wire.py``).  The backing
:class:`~repro.dot11.capture.CapturedFrame` objects are deliberately
*not* shipped: the server consumes columns only, and everything the
pipeline derives (observations, signatures, events) is a pure function
of them.

Corruption never passes silently: a wrong magic, an unsupported
version, a length/checksum mismatch, or a stream that ends mid-record
all raise :class:`WireError` with the byte offset where decoding
stopped.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import BinaryIO, Iterator

import numpy as np

from repro.dot11.mac import MacAddress
from repro.traces.table import FrameTable

#: Record framing magic ("RePro Wire Format").
MAGIC = b"RPWF"
#: Current wire format version.
WIRE_VERSION = 1

#: Record types.
RECORD_HELLO = 1
RECORD_CHUNK = 2
RECORD_END = 3

_HEADER = struct.Struct("<4sHBBII")
_U32 = struct.Struct("<I")

#: The five FrameTable columns, in wire order, with their wire dtypes.
_COLUMNS = (
    ("timestamp_us", "<f8"),
    ("size", "<f8"),
    ("rate_mbps", "<f8"),
    ("sender_idx", "<i8"),
    ("ftype_idx", "<i8"),
)


class WireError(ValueError):
    """Malformed wire data (bad magic/version/length/checksum)."""


# -- record framing -----------------------------------------------------
def encode_record(record_type: int, payload: bytes) -> bytes:
    """Frame one payload as a length-prefixed, checksummed record."""
    if record_type not in (RECORD_HELLO, RECORD_CHUNK, RECORD_END):
        raise ValueError(f"unknown record type: {record_type}")
    header = _HEADER.pack(
        MAGIC, WIRE_VERSION, record_type, 0, len(payload), zlib.crc32(payload)
    )
    return header + payload


def read_record(stream: BinaryIO, offset: int = 0) -> tuple[int, bytes] | None:
    """Read one record; ``None`` at a clean end-of-stream.

    ``offset`` is only used to report *where* a malformed record was
    found.  A stream that ends inside a record header or payload is a
    truncation error, not a clean end.
    """
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise WireError(
            f"truncated record header at byte {offset}: "
            f"got {len(header)} of {_HEADER.size} bytes"
        )
    magic, version, record_type, _flags, length, checksum = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad magic at byte {offset}: {magic!r}")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} at byte {offset} "
            f"(this build speaks version {WIRE_VERSION})"
        )
    if record_type not in (RECORD_HELLO, RECORD_CHUNK, RECORD_END):
        raise WireError(f"unknown record type {record_type} at byte {offset}")
    payload = stream.read(length)
    if len(payload) < length:
        raise WireError(
            f"truncated record payload at byte {offset}: "
            f"got {len(payload)} of {length} bytes"
        )
    if zlib.crc32(payload) != checksum:
        raise WireError(f"payload checksum mismatch at byte {offset}")
    return record_type, payload


def iter_records(stream: BinaryIO) -> Iterator[tuple[int, bytes]]:
    """All records of a stream, with offsets tracked for diagnostics."""
    offset = 0
    while True:
        record = read_record(stream, offset)
        if record is None:
            return
        offset += _HEADER.size + len(record[1])
        yield record


# -- JSON control payloads ----------------------------------------------
def encode_json(record_type: int, payload: dict) -> bytes:
    """Frame a JSON control payload (HELLO/END) as a record."""
    return encode_record(
        record_type, json.dumps(payload, sort_keys=True).encode("utf-8")
    )


def decode_json(payload: bytes) -> dict:
    """Parse a HELLO/END payload."""
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"malformed control payload: {error}") from error
    if not isinstance(decoded, dict):
        raise WireError(f"control payload is not an object: {decoded!r}")
    return decoded


# -- chunk payloads -----------------------------------------------------
def encode_chunk(table: FrameTable) -> bytes:
    """Serialise one columnar chunk as a CHUNK record.

    The columns are written as raw little-endian bytes, so the encode →
    decode round trip is bit-identical; the backing frames (if any) are
    not shipped.
    """
    header = json.dumps(
        {
            "rows": len(table),
            "senders": [sender.value for sender in table.senders],
            "ftype_keys": list(table.ftype_keys),
        },
        sort_keys=True,
    ).encode("utf-8")
    parts = [_U32.pack(len(header)), header]
    for name, dtype in _COLUMNS:
        column = np.ascontiguousarray(getattr(table, name), dtype=dtype)
        parts.append(column.tobytes())
    return encode_record(RECORD_CHUNK, b"".join(parts))


def decode_chunk(payload: bytes) -> FrameTable:
    """Rebuild the :class:`FrameTable` a CHUNK payload carries.

    The returned table has no backing frames (``to_frames`` raises);
    its five columns and two intern tuples are bit-identical to the
    encoder's input.  Columns are read-only zero-copy views onto the
    payload bytes — every downstream consumer only reads them.
    """
    if len(payload) < _U32.size:
        raise WireError("chunk payload shorter than its header length field")
    (header_length,) = _U32.unpack_from(payload)
    body = _U32.size + header_length
    if len(payload) < body:
        raise WireError(
            f"chunk header truncated: need {header_length} bytes, "
            f"have {len(payload) - _U32.size}"
        )
    try:
        header = json.loads(payload[_U32.size : body].decode("utf-8"))
        rows = int(header["rows"])
        senders = tuple(MacAddress(int(value)) for value in header["senders"])
        ftype_keys = tuple(str(key) for key in header["ftype_keys"])
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as error:
        raise WireError(f"malformed chunk header: {error}") from error
    if rows < 0:
        raise WireError(f"negative chunk row count: {rows}")
    expected = body + rows * 8 * len(_COLUMNS)
    if len(payload) != expected:
        raise WireError(
            f"chunk column data length mismatch: expected {expected} "
            f"payload bytes for {rows} rows, got {len(payload)}"
        )
    columns = {}
    offset = body
    for name, dtype in _COLUMNS:
        columns[name] = np.frombuffer(payload, dtype=dtype, count=rows, offset=offset)
        offset += rows * 8
    if rows:
        sender_idx = columns["sender_idx"]
        if int(sender_idx.min()) < -1 or int(sender_idx.max()) >= len(senders):
            raise WireError("chunk sender_idx out of intern range")
        ftype_idx = columns["ftype_idx"]
        if int(ftype_idx.min()) < 0 or int(ftype_idx.max()) >= len(ftype_keys):
            raise WireError("chunk ftype_idx out of intern range")
    return FrameTable(
        timestamp_us=columns["timestamp_us"],
        size=columns["size"],
        rate_mbps=columns["rate_mbps"],
        sender_idx=columns["sender_idx"],
        ftype_idx=columns["ftype_idx"],
        senders=senders,
        ftype_keys=ftype_keys,
    )
