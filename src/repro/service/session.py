"""Sensor-side capture session: chunks in, wire records out.

A :class:`SensorSession` is the client half of the ingest service: it
wraps one chunked frame source (pcap, live simulation, or replay — any
:data:`~repro.streaming.sources.TableSource`) and serialises it onto a
byte stream as the DESIGN.md §9 wire format:

```
HELLO {sensor, chunk_frames?}   CHUNK*   END {frames, chunks}
```

The protocol is strictly one-way — the server never talks back — so a
session can run over any writable transport: a TCP connection
(:meth:`SensorSession.connect`), a pipe, or a file (useful for
record-and-replay captures).  Backpressure is the transport's: when
the server's per-sensor ingest queue is full it stops reading, the
socket buffers fill, and the sensor blocks in ``send`` until the
pipeline drains — no unbounded buffering on either side.

A session that dies without its END record (crash, link loss) is a
*paused* session: the server checkpoints what it consumed, and a later
session with the same sensor id resumes — re-send the same capture and
the server's skip-processed trimming replays event-for-event
identically (pinned in ``tests/test_service.py``).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import BinaryIO, Iterable

from repro.service.wire import (
    RECORD_END,
    RECORD_HELLO,
    encode_chunk,
    encode_json,
)
from repro.traces.table import FrameTable


@dataclass(frozen=True)
class SessionReport:
    """What one completed (or aborted) session shipped."""

    sensor: str
    frames: int
    chunks: int
    #: ``False`` when the session was aborted before its END record.
    ended: bool


class SensorSession:
    """Streams one sensor's chunked capture onto a wire transport."""

    def __init__(
        self, sensor: str, chunks: Iterable[FrameTable]
    ) -> None:
        if not sensor:
            raise ValueError("sensor id must be non-empty")
        self.sensor = sensor
        self._chunks = chunks

    def stream_to(
        self,
        writer: BinaryIO,
        *,
        abort_after_chunks: int | None = None,
    ) -> SessionReport:
        """Write the whole session onto ``writer``.

        ``abort_after_chunks`` simulates a sensor crash: the session
        stops mid-stream without its END record (tests and the
        checkpoint/resume drill use this — a real sensor just dies).
        """
        writer.write(encode_json(RECORD_HELLO, {"sensor": self.sensor}))
        frames = 0
        chunks = 0
        for table in self._chunks:
            if abort_after_chunks is not None and chunks >= abort_after_chunks:
                return SessionReport(self.sensor, frames, chunks, ended=False)
            writer.write(encode_chunk(table))
            frames += len(table)
            chunks += 1
        writer.write(encode_json(RECORD_END, {"frames": frames, "chunks": chunks}))
        writer.flush()
        return SessionReport(self.sensor, frames, chunks, ended=True)

    def connect(
        self,
        host: str,
        port: int,
        *,
        abort_after_chunks: int | None = None,
    ) -> SessionReport:
        """Stream the session to an :class:`~repro.service.server.IngestServer`
        over TCP, then close the connection."""
        with socket.create_connection((host, port)) as conn:
            with conn.makefile("wb") as writer:
                report = self.stream_to(
                    writer, abort_after_chunks=abort_after_chunks
                )
            # A graceful FIN after END (or the abrupt close of an
            # abort) is what tells the server this session is over.
        return report
