"""Consistent-hash routing of columnar chunks onto ingest shards.

:class:`ShardRouter` partitions each incoming
:class:`~repro.traces.table.FrameTable` chunk across the ``K`` shard
engines of one sensor pipeline, reusing the PR 3
:class:`~repro.core.sharding.ConsistentHashRing` so a device lands on
the **same shard** in the ingest service and in the sharded matching
tier — the learnt per-shard reference databases line up with the
query-side shard layout with no re-hashing.

Routing semantics (DESIGN.md §9):

* attributable rows go to exactly the shard that owns their sender's
  MAC (a pure function of the address — stable across sensors,
  processes and restarts);
* unattributable rows (ACK/CTS, ``sender_idx == -1``) are **broadcast
  to every shard**: they never produce observations, but they advance
  the channel clock of the time-derived parameters, and every shard
  engine keeps its own clock.

Each shard's rows keep their relative order (boolean-mask selection
preserves it), so every shard engine sees a valid non-decreasing
capture stream.  The per-sender shard lookup is vectorized: the
ring is consulted once per *interned sender* (cached across chunks),
then applied to the whole ``sender_idx`` column in one take.
"""

from __future__ import annotations

import numpy as np

from repro.core.sharding import DEFAULT_VNODES, ConsistentHashRing
from repro.dot11.mac import MacAddress
from repro.traces.table import FrameTable


class ShardRouter:
    """Partitions columnar chunks across shard engines via the ring."""

    def __init__(
        self, shard_count: int, vnodes: int = DEFAULT_VNODES
    ) -> None:
        self.ring = ConsistentHashRing(shard_count, vnodes)
        self.shard_count = shard_count
        self._owner_of: dict[MacAddress, int] = {}

    def shard_of(self, device: MacAddress) -> int:
        """The shard owning one device (memoised ring lookup)."""
        owner = self._owner_of.get(device)
        if owner is None:
            owner = self.ring.shard_of(device)
            self._owner_of[device] = owner
        return owner

    def partition(self, table: FrameTable) -> list[FrameTable]:
        """Split one chunk into K per-shard tables (empty ones included).

        Index ``k`` of the result holds shard ``k``'s rows: the rows
        whose sender hashes to ``k`` plus every unattributable row, in
        original order.  With ``K == 1`` the chunk is passed through
        untouched (no copy).
        """
        if self.shard_count == 1:
            return [table]
        owners = np.fromiter(
            (self.shard_of(sender) for sender in table.senders),
            dtype=np.int64,
            count=len(table.senders),
        )
        sender_idx = table.sender_idx
        sentinel = sender_idx == -1
        # Sentinel rows briefly pose as shard 0, then the mask ORs
        # them into every shard.
        row_shard = np.where(sentinel, 0, owners[sender_idx])
        return [
            _select(table, (row_shard == shard) | sentinel)
            for shard in range(self.shard_count)
        ]


def _select(table: FrameTable, mask: np.ndarray) -> FrameTable:
    """Mask-select rows into a standalone (frame-less) table."""
    return FrameTable(
        timestamp_us=table.timestamp_us[mask],
        size=table.size[mask],
        rate_mbps=table.rate_mbps[mask],
        sender_idx=table.sender_idx[mask],
        ftype_idx=table.ftype_idx[mask],
        senders=table.senders,
        ftype_keys=table.ftype_keys,
    )
