"""Long-running multi-sensor ingest service (DESIGN.md §9).

The paper's pipeline is one monitor feeding one matcher; the
production story is **many sensors feeding one reference database
concurrently**, as a service rather than a one-shot CLI run.
:class:`IngestServer` is that missing layer:

* each connected :class:`~repro.service.session.SensorSession` gets a
  dedicated reader thread (thread-per-sensor over local TCP) that
  decodes wire records into columnar chunks and hands them to a
  **bounded** per-sensor queue — when the pipeline falls behind, the
  reader stops pulling, the socket buffers fill and the sensor blocks:
  backpressure, not unbounded buffering;
* a per-sensor worker drains the queue into a
  :class:`SensorPipeline`: the chunk is partitioned across ``K``
  shard engines (:class:`~repro.streaming.engine.StreamEngine`) by the
  PR 3 consistent-hash ring (:class:`~repro.service.router.ShardRouter`),
  and every closed detection window's gated signatures are folded into
  the sensor's per-shard harvest databases (latest window wins);
* per-sensor **checkpoint/resume** reuses
  :mod:`repro.persistence.checkpoint`: a manifest + one engine
  checkpoint per shard + one persisted harvest store per shard.  A
  sensor that dies mid-session is checkpointed; when it reconnects and
  re-sends its capture, the skip-processed trim replays the remainder
  **event-for-event identically** (``tests/test_service.py``);
* :meth:`IngestServer.merged_database` merges the per-sensor harvests
  into one shared reference database with the existing
  :func:`~repro.core.database.merge_databases` policies, in sorted
  sensor order — deterministic regardless of thread interleaving —
  and :meth:`IngestServer.publish` persists it as a PR 3 store.

Because routing is a pure per-row function and every (sensor, shard)
engine consumes only that sensor's shard partition, the service's
merged database is **bin-for-bin identical** to running each sensor's
traffic through one inline engine per shard sequentially
(:func:`run_inline`), no matter how the concurrent sessions interleave.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.core.database import ReferenceDatabase, merge_databases
from repro.core.parameters import NetworkParameter, parameter_by_name
from repro.service.router import ShardRouter
from repro.service.wire import (
    RECORD_CHUNK,
    RECORD_END,
    RECORD_HELLO,
    WireError,
    decode_chunk,
    decode_json,
    iter_records,
)
from repro.core.sharding import DEFAULT_VNODES
from repro.streaming.apps import WindowAnalyzer
from repro.streaming.engine import StreamEngine
from repro.streaming.events import EventSink
from repro.streaming.builder import StreamingSignatureBuilder
from repro.streaming.sources import skip_processed_chunks
from repro.streaming.windows import ClosedWindow, WindowConfig
from repro.traces.table import FrameTable

#: Sensor-checkpoint manifest identifier and version.
MANIFEST_FORMAT = "repro-sensor-checkpoint"
MANIFEST_VERSION = 1

_MANIFEST_FILE = "manifest.json"

#: Queue sentinels (identity-compared).
_END = object()
_PAUSE = object()


def _check_sensor_id(sensor: str) -> str:
    """Sensor ids double as checkpoint directory names — keep them tame."""
    if not sensor or not all(c.isalnum() or c in "._-" for c in sensor):
        raise ValueError(
            f"sensor id must be non-empty [A-Za-z0-9._-]: {sensor!r}"
        )
    return sensor


@dataclass(frozen=True)
class ServiceConfig:
    """Everything an ingest deployment fixes up front.

    The fingerprint (parameter, sharding, windowing, gating) is
    embedded in every sensor checkpoint manifest, so a restarted
    service refuses to resume state taken under different settings.
    """

    parameter: NetworkParameter
    shard_count: int = 4
    vnodes: int = DEFAULT_VNODES
    window: WindowConfig = field(default_factory=WindowConfig)
    min_observations: int = 50
    #: Bounded per-sensor ingest queue (chunks) — the backpressure knob.
    queue_chunks: int = 8
    #: Cross-sensor conflict policy for :meth:`IngestServer.merged_database`.
    merge_policy: str = "replace"
    #: Checkpoint a sensor every N consumed chunks (``None``: only on
    #: pause/completion).
    checkpoint_every_chunks: int | None = None

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard count must be >= 1: {self.shard_count}")
        if self.queue_chunks < 1:
            raise ValueError(f"queue_chunks must be >= 1: {self.queue_chunks}")
        if self.merge_policy not in ("replace", "keep", "error"):
            raise ValueError(f"unknown merge policy: {self.merge_policy!r}")
        if (
            self.checkpoint_every_chunks is not None
            and self.checkpoint_every_chunks < 1
        ):
            raise ValueError(
                f"checkpoint_every_chunks must be >= 1: "
                f"{self.checkpoint_every_chunks}"
            )

    def builder_factory(self) -> StreamingSignatureBuilder:
        """One decay-free per-window builder (engine factory hook)."""
        return StreamingSignatureBuilder(
            self.parameter, min_observations=self.min_observations
        )

    def fingerprint(self) -> dict:
        """The checkpoint-compatibility fingerprint."""
        return {
            "parameter": self.parameter.name,
            "shard_count": self.shard_count,
            "vnodes": self.vnodes,
            "window_s": self.window.window_s,
            "slide_s": self.window.slide_s,
            "idle_timeout_s": self.window.idle_timeout_s,
            "min_observations": self.min_observations,
        }

    @classmethod
    def from_names(
        cls, parameter: str, **kwargs
    ) -> "ServiceConfig":
        """Build a config from the CLI's parameter name."""
        return cls(parameter=parameter_by_name(parameter), **kwargs)


class ReferenceHarvester(WindowAnalyzer):
    """Folds every closed window's gated signatures into a database.

    Later windows replace earlier ones (a live service keeps the
    freshest signature per device); the cross-sensor merge policy is
    applied separately at :meth:`IngestServer.merged_database` time.
    """

    def __init__(self, database: ReferenceDatabase) -> None:
        self.database = database

    def on_table(self, table: FrameTable, lo: int, hi: int) -> None:
        """Wire-decoded tables carry no backing frames — nothing to do."""

    def on_window(self, closed: ClosedWindow) -> list:
        for device, signature in closed.signatures.items():
            self.database.add(device, signature)
        return []


@dataclass
class SensorStats:
    """One sensor session's counters (a snapshot)."""

    sensor: str
    frames: int
    chunks: int
    completed: bool
    resumed_from_frames: int
    queue_peak: int
    windows_closed: int
    candidates: int
    events: int
    peak_resident_devices: int

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ServiceStats:
    """Service-wide counters (a snapshot)."""

    shard_count: int
    sensors: list[SensorStats]
    elapsed_s: float

    @property
    def frames(self) -> int:
        return sum(sensor.frames for sensor in self.sensors)

    @property
    def frames_per_s(self) -> float:
        return self.frames / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def queue_peak(self) -> int:
        return max((sensor.queue_peak for sensor in self.sensors), default=0)

    def to_dict(self) -> dict:
        return {
            "shard_count": self.shard_count,
            "frames": self.frames,
            "frames_per_s": self.frames_per_s,
            "elapsed_s": self.elapsed_s,
            "queue_peak": self.queue_peak,
            "sensors": [sensor.to_dict() for sensor in self.sensors],
        }


class SensorPipeline:
    """One sensor's shard-partitioned ingest state.

    ``K`` detection-window engines (one per ring shard) plus ``K``
    harvest databases.  Deterministic: its outputs depend only on the
    sensor's own chunk sequence, never on what other sensors do
    concurrently.
    """

    def __init__(
        self,
        sensor: str,
        config: ServiceConfig,
        sinks: "Iterable[EventSink] | None" = None,
    ) -> None:
        self.sensor = _check_sensor_id(sensor)
        self.config = config
        self._router = ShardRouter(config.shard_count, config.vnodes)
        self.harvests = tuple(
            ReferenceDatabase() for _ in range(config.shard_count)
        )
        shared_sinks = list(sinks) if sinks is not None else []
        self.engines = tuple(
            StreamEngine(
                config.builder_factory,
                window=config.window,
                analyzers=[ReferenceHarvester(self.harvests[shard])],
                sinks=shared_sinks,
            )
            for shard in range(config.shard_count)
        )
        self.frames = 0
        self.chunks = 0
        self.horizon_us: float | None = None
        self.completed = False
        self.resumed_from_frames = 0

    # -- ingest --------------------------------------------------------
    def ingest(self, table: FrameTable) -> None:
        """Consume one (already resume-trimmed) chunk."""
        if len(table) == 0:
            return
        for shard, part in enumerate(self._router.partition(table)):
            if len(part):
                self.engines[shard].process_chunk(part)
        self.frames += len(table)
        self.chunks += 1
        self.horizon_us = table.end_us

    def finish(self) -> None:
        """End of capture: flush every engine's still-open windows."""
        for engine in self.engines:
            engine.flush()
        self.completed = True

    def resume_trimmed(
        self, chunks: Iterable[FrameTable]
    ) -> Iterable[FrameTable]:
        """Trim the already-consumed prefix off a re-sent capture."""
        if self.frames == 0 or self.horizon_us is None:
            return chunks
        return skip_processed_chunks(chunks, self.frames, self.horizon_us)

    # -- aggregate engine counters -------------------------------------
    def stats(
        self, queue_peak: int = 0
    ) -> SensorStats:
        return SensorStats(
            sensor=self.sensor,
            frames=self.frames,
            chunks=self.chunks,
            completed=self.completed,
            resumed_from_frames=self.resumed_from_frames,
            queue_peak=queue_peak,
            windows_closed=sum(e.stats.windows_closed for e in self.engines),
            candidates=sum(e.stats.candidates for e in self.engines),
            events=sum(e.stats.events for e in self.engines),
            peak_resident_devices=sum(
                e.stats.peak_resident_devices for e in self.engines
            ),
        )

    # -- checkpoint / resume -------------------------------------------
    def checkpoint(self, directory: str | Path) -> Path:
        """Snapshot manifest + per-shard engine state + harvests.

        The manifest is written last (atomically), so a crash mid-
        checkpoint leaves the previous consistent snapshot in charge.
        """
        from repro.persistence.store import save_database

        base = Path(directory) / self.sensor
        base.mkdir(parents=True, exist_ok=True)
        for shard, engine in enumerate(self.engines):
            engine.checkpoint(base / f"shard-{shard}.ckpt")
        for shard, harvest in enumerate(self.harvests):
            save_database(
                harvest, base / f"harvest-{shard}", parameter=self.config.parameter.name
            )
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "config": self.config.fingerprint(),
            "frames": self.frames,
            "chunks": self.chunks,
            "horizon_us": self.horizon_us,
            "completed": self.completed,
        }
        target = base / _MANIFEST_FILE
        scratch = target.with_name(target.name + ".tmp")
        scratch.write_text(json.dumps(manifest, sort_keys=True) + "\n")
        os.replace(scratch, target)
        return base

    @classmethod
    def has_checkpoint(cls, directory: str | Path, sensor: str) -> bool:
        """Is there a resumable snapshot for this sensor?"""
        return (Path(directory) / sensor / _MANIFEST_FILE).exists()

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        sensor: str,
        config: ServiceConfig,
        sinks: "Iterable[EventSink] | None" = None,
    ) -> "SensorPipeline":
        """Rebuild a pipeline from its :meth:`checkpoint` snapshot."""
        from repro.persistence.store import load_database

        base = Path(directory) / sensor
        manifest = json.loads((base / _MANIFEST_FILE).read_text())
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(f"not a sensor checkpoint: {base}")
        version = int(manifest.get("version", 0))
        if not 1 <= version <= MANIFEST_VERSION:
            raise ValueError(
                f"unsupported sensor checkpoint version {version} "
                f"(this build reads versions 1..{MANIFEST_VERSION})"
            )
        fingerprint = config.fingerprint()
        if manifest["config"] != fingerprint:
            raise ValueError(
                f"sensor checkpoint config mismatch for {sensor!r}: "
                f"snapshot has {manifest['config']}, service has {fingerprint}"
            )
        pipeline = cls(sensor, config, sinks=sinks)
        for shard, engine in enumerate(pipeline.engines):
            engine.restore(base / f"shard-{shard}.ckpt")
        for shard, harvest in enumerate(pipeline.harvests):
            harvest.merge(
                load_database(base / f"harvest-{shard}").database,
                on_conflict="error",
            )
        pipeline.frames = int(manifest["frames"])
        pipeline.chunks = int(manifest["chunks"])
        horizon = manifest["horizon_us"]
        pipeline.horizon_us = None if horizon is None else float(horizon)
        pipeline.completed = bool(manifest["completed"])
        pipeline.resumed_from_frames = pipeline.frames
        return pipeline


class _SensorState:
    """Server-side bookkeeping for one sensor."""

    __slots__ = (
        "pipeline", "queue", "worker", "attached", "queue_peak", "outcome"
    )

    def __init__(self, pipeline: SensorPipeline, queue_chunks: int) -> None:
        self.pipeline = pipeline
        self.queue: queue.Queue = queue.Queue(maxsize=queue_chunks)
        self.worker: threading.Thread | None = None
        self.attached = False
        self.queue_peak = 0
        #: What the current connection's ending means: ``_END`` after a
        #: clean END record, ``_PAUSE`` on disconnect/corruption.
        self.outcome: object = _PAUSE


class IngestServer:
    """Multiplexes N concurrent sensor sessions into shard engines.

    Use as a context manager, or call :meth:`close` when done::

        config = ServiceConfig(parameter=InterArrivalTime(), shard_count=4)
        with IngestServer(config, checkpoint_dir="ckpts") as server:
            port = server.listen()
            ... sensors connect and stream ...
            server.wait_for_sessions(3)
            server.publish("refs.store")
    """

    def __init__(
        self,
        config: ServiceConfig,
        checkpoint_dir: str | Path | None = None,
        sink_factory: "Callable[[str], EventSink] | None" = None,
        attach_wait_s: float = 10.0,
    ) -> None:
        """``sink_factory(sensor)`` (optional) builds one event sink per
        sensor, subscribed to all of that sensor's shard engines.
        ``attach_wait_s`` bounds how long a reconnecting sensor waits
        for its previous (crashed) session to finish draining before
        the new connection is rejected as a duplicate."""
        self.config = config
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        self.attach_wait_s = attach_wait_s
        self._sink_factory = sink_factory
        self._sensors: dict[str, _SensorState] = {}
        self._lock = threading.Lock()
        self._completions = threading.Condition(self._lock)
        self._completed = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closing = threading.Event()
        self._first_ingest: float | None = None
        self._last_activity: float | None = None

    # -- lifecycle -----------------------------------------------------
    def listen(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind, start accepting sessions, return the bound port."""
        if self._listener is not None:
            raise RuntimeError("server is already listening")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        listener.settimeout(0.2)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ingest-accept", daemon=True
        )
        self._accept_thread.start()
        return listener.getsockname()[1]

    @property
    def port(self) -> int:
        """The bound port (after :meth:`listen`)."""
        if self._listener is None:
            raise RuntimeError("server is not listening")
        return self._listener.getsockname()[1]

    def close(self) -> None:
        """Stop accepting, drain queued chunks, checkpoint, shut down.

        Already-queued chunks are consumed before workers exit, so a
        graceful shutdown loses nothing that reached the server.
        """
        self._closing.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        with self._lock:
            states = list(self._sensors.values())
        for state in states:
            worker = state.worker
            if worker is not None and worker.is_alive():
                state.queue.put(_PAUSE)
        for state in states:
            worker = state.worker
            if worker is not None:
                worker.join(timeout=30.0)

    def __enter__(self) -> "IngestServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- session plumbing ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="ingest-session",
                daemon=True,
            ).start()

    def _handle_connection(self, conn: socket.socket) -> None:
        state: _SensorState | None = None
        try:
            with conn, conn.makefile("rb") as reader:
                records = iter_records(reader)
                try:
                    first = next(records)
                except StopIteration:
                    return
                if first[0] != RECORD_HELLO:
                    raise WireError("session must open with a HELLO record")
                hello = decode_json(first[1])
                sensor = _check_sensor_id(str(hello.get("sensor", "")))
                state = self._attach(sensor)
                trim = state.pipeline.resume_trimmed(
                    self._decoded_chunks(records, state)
                )
                for table in trim:
                    state.queue.put(table)
                    depth = state.queue.qsize()
                    if depth > state.queue_peak:
                        state.queue_peak = depth
        except (WireError, ValueError, OSError, RuntimeError):
            # A malformed or dropped session pauses the sensor; its
            # state stays resumable.  (A real deployment would log.)
            pass
        finally:
            if state is not None:
                state.queue.put(state.outcome)

    def _decoded_chunks(self, records, state: _SensorState):
        """CHUNK records as tables; remembers whether END was seen."""
        state.outcome = _PAUSE
        for record_type, payload in records:
            if record_type == RECORD_CHUNK:
                yield decode_chunk(payload)
            elif record_type == RECORD_END:
                state.outcome = _END
                return
            else:
                raise WireError(
                    f"unexpected record type {record_type} mid-session"
                )

    def _attach(self, sensor: str) -> _SensorState:
        deadline = time.monotonic() + self.attach_wait_s
        with self._completions:
            if self._closing.is_set():
                raise RuntimeError("server is shutting down")
            state = self._sensors.get(sensor)
            if state is None:
                sinks = None
                if self._sink_factory is not None:
                    sinks = [self._sink_factory(sensor)]
                if (
                    self.checkpoint_dir is not None
                    and SensorPipeline.has_checkpoint(self.checkpoint_dir, sensor)
                ):
                    pipeline = SensorPipeline.restore(
                        self.checkpoint_dir, sensor, self.config, sinks=sinks
                    )
                else:
                    pipeline = SensorPipeline(sensor, self.config, sinks=sinks)
                state = _SensorState(pipeline, self.config.queue_chunks)
                self._sensors[sensor] = state
            # A crashed sensor that reconnects immediately races its
            # previous session's worker, which may still be draining
            # queued chunks; give the detach a bounded head start
            # before treating the reconnect as a duplicate.
            while state.attached:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"sensor {sensor!r} is already connected"
                    )
                self._completions.wait(timeout=remaining)
                if self._closing.is_set():
                    raise RuntimeError("server is shutting down")
            if state.pipeline.completed:
                raise RuntimeError(f"sensor {sensor!r} already completed")
            state.attached = True
            state.outcome = _PAUSE
            if state.worker is None or not state.worker.is_alive():
                state.worker = threading.Thread(
                    target=self._drain,
                    args=(state,),
                    name=f"ingest-{sensor}",
                    daemon=True,
                )
                state.worker.start()
            return state

    def _drain(self, state: _SensorState) -> None:
        pipeline = state.pipeline
        every = self.config.checkpoint_every_chunks
        while True:
            item = state.queue.get()
            if item is _PAUSE or item is _END:
                if item is _END:
                    pipeline.finish()
                if self.checkpoint_dir is not None:
                    pipeline.checkpoint(self.checkpoint_dir)
                with self._lock:
                    state.attached = False
                    self._last_activity = time.monotonic()
                    if item is _END:
                        self._completed += 1
                    # Wake both wait_for_sessions() and reconnecting
                    # sensors blocked in _attach / wait_for_detach.
                    self._completions.notify_all()
                return
            now = time.monotonic()
            if self._first_ingest is None:
                self._first_ingest = now
            pipeline.ingest(item)
            self._last_activity = time.monotonic()
            if (
                every is not None
                and self.checkpoint_dir is not None
                and pipeline.chunks % every == 0
            ):
                pipeline.checkpoint(self.checkpoint_dir)

    # -- observers -----------------------------------------------------
    def wait_for_sessions(self, count: int, timeout: float | None = None) -> bool:
        """Block until ``count`` sessions have completed (END + flush)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._completions:
            while self._completed < count:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._completions.wait(timeout=remaining)
            return True

    def wait_for_detach(self, sensor: str, timeout: float | None = None) -> bool:
        """Block until ``sensor`` has connected at least once and has no
        live session — its worker has drained the queue and (if
        configured) checkpointed.  A dropped client returns before the
        server has even registered the session, so waiting for a known
        *and* detached sensor is what makes a crash-then-reconnect
        drill deterministic."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._completions:
            while True:
                state = self._sensors.get(sensor)
                if state is not None and not state.attached:
                    return True
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._completions.wait(timeout=remaining)

    @property
    def completed_sessions(self) -> int:
        with self._lock:
            return self._completed

    def stats(self) -> ServiceStats:
        """A snapshot of the per-sensor and aggregate counters."""
        with self._lock:
            sensors = [
                state.pipeline.stats(queue_peak=state.queue_peak)
                for _, state in sorted(self._sensors.items())
            ]
            if self._first_ingest is None or self._last_activity is None:
                elapsed = 0.0
            else:
                elapsed = self._last_activity - self._first_ingest
        return ServiceStats(
            shard_count=self.config.shard_count,
            sensors=sensors,
            elapsed_s=elapsed,
        )

    # -- the shared reference database ---------------------------------
    def shard_databases(self) -> list[ReferenceDatabase]:
        """Per-shard merges of every sensor's harvest (sorted sensor
        order, the configured conflict policy)."""
        with self._lock:
            pipelines = [
                state.pipeline for _, state in sorted(self._sensors.items())
            ]
            return merge_harvests(
                pipelines, self.config.shard_count, self.config.merge_policy
            )

    def merged_database(self) -> ReferenceDatabase:
        """The one shared reference database across all sensors/shards.

        Deterministic for a given set of sensor streams: per shard,
        sensors merge in sorted-id order under the configured policy;
        shards are disjoint by construction (one ring), so folding them
        together never conflicts.  Call it any time — a snapshot — but
        for a stable result, after :meth:`wait_for_sessions` or
        :meth:`close`.
        """
        combined = ReferenceDatabase()
        for shard_db in self.shard_databases():
            combined.merge(shard_db, on_conflict="error")
        return combined

    def publish(self, path: str | Path) -> Path:
        """Persist the merged database as a versioned store (PR 3)."""
        from repro.persistence.store import save_database

        return save_database(
            self.merged_database(), path, parameter=self.config.parameter.name
        )


def merge_harvests(
    pipelines: Iterable[SensorPipeline], shard_count: int, policy: str
) -> list[ReferenceDatabase]:
    """Merge per-sensor harvests into per-shard databases.

    Shared by the live server and the sequential reference
    (:func:`run_inline`), so both sides apply byte-identical merge
    semantics; the order is the caller's pipeline order.
    """
    shard_dbs = [ReferenceDatabase() for _ in range(shard_count)]
    for pipeline in pipelines:
        for shard, harvest in enumerate(pipeline.harvests):
            merge_databases(shard_dbs[shard], harvest, on_conflict=policy)
    return shard_dbs


@dataclass
class InlineResult:
    """What :func:`run_inline` produced."""

    database: ReferenceDatabase
    shard_databases: list[ReferenceDatabase]
    pipelines: dict[str, SensorPipeline]

    def stats(self) -> list[SensorStats]:
        return [
            pipeline.stats() for _, pipeline in sorted(self.pipelines.items())
        ]


def run_inline(
    sensor_chunks: dict[str, Iterable[FrameTable]],
    config: ServiceConfig,
    sink_factory: "Callable[[str], EventSink] | None" = None,
) -> InlineResult:
    """The sequential single-engine-per-shard reference.

    Runs each sensor's chunk stream through one
    :class:`SensorPipeline` after another — no threads, no sockets, no
    wire encoding — and merges exactly like the live server.  The
    service's concurrent result must equal this bin for bin (the
    equivalence the service tests pin down), and the soak benchmark
    uses it as the inline baseline.
    """
    pipelines: dict[str, SensorPipeline] = {}
    for sensor, chunks in sensor_chunks.items():
        sinks = None if sink_factory is None else [sink_factory(sensor)]
        pipeline = SensorPipeline(sensor, config, sinks=sinks)
        for table in chunks:
            pipeline.ingest(table)
        pipeline.finish()
        pipelines[sensor] = pipeline
    ordered = [pipelines[sensor] for sensor in sorted(pipelines)]
    shard_dbs = merge_harvests(ordered, config.shard_count, config.merge_policy)
    combined = ReferenceDatabase()
    for shard_db in shard_dbs:
        combined.merge(shard_db, on_conflict="error")
    return InlineResult(
        database=combined, shard_databases=shard_dbs, pipelines=pipelines
    )
