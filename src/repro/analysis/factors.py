"""Section VI: factors shaping the inter-arrival histogram.

Each function reproduces one controlled experiment from the paper,
using the simulator in place of the physical testbed:

* :func:`backoff_experiment` — Figure 4: two cards with different
  random-backoff implementations, alone in a "Faraday cage"
  (noiseless channel), saturated UDP at a fixed 54 Mbps;
* :func:`rts_experiment` — Figure 5: the same station with virtual
  carrier sensing off vs an RTS threshold of 2000 bytes, in a busy
  environment;
* :func:`rate_experiment` — Figure 6: a rate-stable vs a rate-switching
  device, with both inter-arrival signatures and rate distributions;
* :func:`services_experiment` — Figure 7: two *identical* netbooks
  separable purely through their OS service mix (broadcast data only);
* :func:`psm_experiment` — Figure 8: two cards' power-save
  null-function cadences.

Following the paper's method, values are measured on the **full
channel timeline** (the previous frame may be anyone's) and then
restricted to the frame subset each figure names.

Measurement runs on the simulation's columnar
:class:`~repro.traces.table.FrameTable` view
(:meth:`SimulationResult.table`): the timeline inter-arrivals are one
shifted-array subtraction under a sender mask, and only an explicit
frame *predicate* (retry flags, rate equality, ...) still walks the
backing frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.histogram import BinSpec, CategoricalBins, Histogram, UniformBins
from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import FrameSubtype, FrameType
from repro.dot11.mac import MacAddress
from repro.dot11.phy import PAPER_RATE_AXIS
from repro.simulator.channel import ChannelModel
from repro.simulator.profiles import (
    BackoffStyle,
    DeviceProfile,
    PowerSaveBehaviour,
    ProbeBehaviour,
    RateAlgorithm,
    profile_by_name,
)
from repro.simulator.scenario import Scenario, StationSpec
from repro.simulator.traffic import CbrTraffic, IgmpService, LlmnrService, MdnsService, SsdpService, WebTraffic
from repro.traces.filters import FramePredicate
from repro.traces.table import FrameTable

#: Frame-type labels of the data family (Figure 6's rate histograms).
_DATA_LABELS = frozenset(
    subtype.label for subtype in FrameSubtype if subtype.ftype is FrameType.DATA
)


@dataclass
class FactorExperimentResult:
    """Histograms produced by one Section VI experiment."""

    title: str
    bins: BinSpec
    histograms: dict[str, np.ndarray] = field(default_factory=dict)
    #: Companion histograms (e.g. Figure 6's rate distributions).
    companions: dict[str, tuple[np.ndarray, BinSpec]] = field(default_factory=dict)
    observation_counts: dict[str, int] = field(default_factory=dict)

    def distinctiveness(self) -> float:
        """1 − min pairwise cosine similarity across the histograms.

        A quick scalar answering "did the factor separate the
        devices?" — higher is more distinctive.
        """
        from repro.core.similarity import cosine_similarity

        labels = list(self.histograms)
        if len(labels) < 2:
            return 0.0
        worst = 1.0
        for i, a in enumerate(labels):
            for b in labels[i + 1 :]:
                worst = min(
                    worst, cosine_similarity(self.histograms[a], self.histograms[b])
                )
        return 1.0 - worst


def timeline_interarrivals(
    frames: list[CapturedFrame] | FrameTable,
    sender: MacAddress,
    predicate: FramePredicate | None = None,
) -> np.ndarray:
    """Inter-arrivals on the full timeline, restricted to a sender and
    optional frame predicate — the paper's Figure 4/7/8 measurement.

    Accepts a frame list or a columnar
    :class:`~repro.traces.table.FrameTable`; the subtraction runs
    vectorized on the timestamp column either way.  A predicate, being
    an arbitrary callable, is evaluated against the backing frames.
    """
    table = frames if isinstance(frames, FrameTable) else FrameTable.from_frames(frames)
    code = table.sender_code(sender)
    if len(table) == 0 or code < 0:
        return np.empty(0, dtype=np.float64)
    positions = np.flatnonzero(table.sender_idx == code)
    if predicate is not None:
        # The predicate is an arbitrary Python callable, so it walks
        # frames — but only the target sender's, never the full trace.
        keep = np.fromiter(
            (bool(predicate(table.frame_at(int(row)))) for row in positions),
            dtype=bool,
            count=positions.size,
        )
        positions = positions[keep]
    positions = positions[positions >= 1]  # the first frame has no t_{i-1}
    stamps = table.timestamp_us
    return stamps[positions] - stamps[positions - 1]


def _histogram_of(values: np.ndarray | list[float], bins: BinSpec) -> np.ndarray:
    histogram = Histogram(bins)
    histogram.add_array(np.asarray(values, dtype=np.float64))
    return histogram.frequencies()


def _fixed54_profile(
    name: str,
    backoff_style: BackoffStyle,
    difs_offset_us: float,
    cw_min: int = 15,
) -> DeviceProfile:
    """A quiet profile pinned at 54 Mbps for cage experiments."""
    return DeviceProfile(
        name=name,
        oui="00:13:e8",
        backoff_style=backoff_style,
        cw_min=cw_min,
        difs_offset_us=difs_offset_us,
        timing_jitter_us=0.6,
        rts_threshold=None,
        rate_algorithm=RateAlgorithm.FIXED_54,
        power_save=PowerSaveBehaviour(enabled=False),
        probes=ProbeBehaviour(period_s=1e6),  # effectively no scans
    )


def _run_cage(
    profile: DeviceProfile,
    duration_s: float,
    seed: int,
    interval_ms: float = 0.4,
) -> tuple[FrameTable, MacAddress]:
    """One station saturating a noiseless channel (the Faraday cage)."""
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        channel_model=ChannelModel(noiseless=True),
        area_m=10.0,
        ap_count=1,
    )
    scenario.add_station(
        StationSpec(
            name="cage-device",
            profile=profile,
            sources=[CbrTraffic(payload=1470, interval_ms=interval_ms, jitter_ms=0.02)],
            auto_services=False,
        )
    )
    result = scenario.run()
    sender = next(
        mac for mac, name in result.station_names.items() if name == "cage-device"
    )
    return result.table(), sender


def backoff_experiment(
    duration_s: float = 8.0, seed: int = 42
) -> FactorExperimentResult:
    """Figure 4: backoff quirks under saturation in a Faraday cage.

    Only first transmissions (no retries) of data frames at 54 Mbps
    count, as in the paper.
    """
    bins = UniformBins(lo=250.0, hi=700.0, width=4.0, drop_outside=True)
    device_a = _fixed54_profile(
        "standard-backoff", BackoffStyle.UNIFORM, difs_offset_us=0.0
    )
    device_b = _fixed54_profile(
        "early-slot-backoff", BackoffStyle.EXTRA_EARLY_SLOT, difs_offset_us=2.0
    )
    result = FactorExperimentResult(title="Figure 4: random backoff", bins=bins)

    def fig4_filter(captured: CapturedFrame) -> bool:
        return (
            captured.frame.is_data
            and not captured.frame.retry
            and abs(captured.rate_mbps - 54.0) < 1e-9
        )

    for label, profile in (("device-1", device_a), ("device-2", device_b)):
        table, sender = _run_cage(profile, duration_s, seed)
        values = timeline_interarrivals(table, sender, fig4_filter)
        result.histograms[label] = _histogram_of(values, bins)
        result.observation_counts[label] = len(values)
    return result


def rts_experiment(duration_s: float = 20.0, seed: int = 17) -> FactorExperimentResult:
    """Figure 5: virtual carrier sensing off vs RTS threshold 2000 B.

    The same station profile, in a busy environment (background
    stations), run twice with different RTS settings.
    """
    bins = UniformBins(lo=0.0, hi=2000.0, width=25.0, drop_outside=True)
    result = FactorExperimentResult(title="Figure 5: RTS settings", bins=bins)
    for label, threshold in (("rts-off", None), ("rts-2000", 1400)):
        base = _fixed54_profile("rts-station", BackoffStyle.UNIFORM, 0.0)
        profile = DeviceProfile(
            name=f"rts-station-{label}",
            oui=base.oui,
            backoff_style=base.backoff_style,
            cw_min=base.cw_min,
            difs_offset_us=base.difs_offset_us,
            timing_jitter_us=base.timing_jitter_us,
            rts_threshold=threshold,
            rate_algorithm=base.rate_algorithm,
            power_save=base.power_save,
            probes=base.probes,
        )
        scenario = Scenario(
            duration_s=duration_s,
            seed=seed,
            channel_model=ChannelModel(shadowing_sigma_db=1.5),
            area_m=25.0,
        )
        scenario.add_station(
            StationSpec(
                name="subject",
                profile=profile,
                sources=[CbrTraffic(payload=1470, interval_ms=2.0)],
                auto_services=False,
            )
        )
        for background in range(3):
            scenario.add_station(
                StationSpec(
                    name=f"background-{background}",
                    profile=profile_by_name("intel-2200bg-linux"),
                    sources=[WebTraffic(mean_think_s=2.0)],
                )
            )
        run = scenario.run()
        sender = next(
            mac for mac, name in run.station_names.items() if name == "subject"
        )
        values = timeline_interarrivals(
            run.table(), sender, lambda c: c.frame.is_data
        )
        result.histograms[label] = _histogram_of(values, bins)
        result.observation_counts[label] = len(values)
    return result


def rate_experiment(duration_s: float = 15.0, seed: int = 23) -> FactorExperimentResult:
    """Figure 6: a rate-stable vs a rate-switching device.

    Companions hold the transmission-rate distributions (Figures
    6c/6d); the main histograms are the inter-arrival signatures over
    all rates (Figures 6a/6b).
    """
    bins = UniformBins(lo=0.0, hi=1000.0, width=10.0, drop_outside=True)
    rate_bins = CategoricalBins(categories=tuple(float(r) for r in PAPER_RATE_AXIS))
    result = FactorExperimentResult(title="Figure 6: transmission rates", bins=bins)
    stable = _fixed54_profile("rate-stable", BackoffStyle.UNIFORM, 0.0)
    switching = DeviceProfile(
        name="rate-switching",
        oui="00:26:82",
        backoff_style=BackoffStyle.UNIFORM,
        cw_min=15,
        difs_offset_us=0.0,
        timing_jitter_us=0.6,
        rate_algorithm=RateAlgorithm.SNR_JITTERY,
        power_save=PowerSaveBehaviour(enabled=False),
        probes=ProbeBehaviour(period_s=1e6),
    )
    for label, profile in (("device-1", stable), ("device-2", switching)):
        scenario = Scenario(
            duration_s=duration_s,
            seed=seed,
            channel_model=ChannelModel(noiseless=False, shadowing_sigma_db=5.0),
            area_m=18.0,
        )
        scenario.add_station(
            StationSpec(
                name="subject",
                profile=profile,
                sources=[CbrTraffic(payload=1470, interval_ms=1.0)],
                auto_services=False,
            )
        )
        run = scenario.run()
        sender = next(
            mac for mac, name in run.station_names.items() if name == "subject"
        )
        table = run.table()
        values = timeline_interarrivals(
            table, sender, lambda c: c.frame.is_data
        )
        result.histograms[label] = _histogram_of(values, bins)
        result.observation_counts[label] = len(values)
        rates_mask = (table.sender_idx == table.sender_code(sender)) & table.mask_ftypes(
            _DATA_LABELS
        )
        result.companions[f"{label}-rates"] = (
            _histogram_of(table.rate_mbps[rates_mask], rate_bins),
            rate_bins,
        )
    return result


def services_experiment(
    duration_s: float = 600.0, seed: int = 31
) -> FactorExperimentResult:
    """Figure 7: identical netbooks with different OS service mixes.

    Both run simultaneously in the same environment with the same
    card/driver profile; histograms use broadcast data frames only.
    """
    bins = UniformBins(lo=0.0, hi=2500.0, width=50.0, drop_outside=True)
    result = FactorExperimentResult(title="Figure 7: network services", bins=bins)
    profile = profile_by_name("intel-2200bg-linux")
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        channel_model=ChannelModel(shadowing_sigma_db=1.5),
        area_m=20.0,
    )
    scenario.add_station(
        StationSpec(
            name="netbook-1",
            profile=profile,
            sources=[
                WebTraffic(mean_think_s=10.0),
                SsdpService(period_s=30.0),
                IgmpService(period_s=125.0),
            ],
            auto_services=False,
        )
    )
    scenario.add_station(
        StationSpec(
            name="netbook-2",
            profile=profile,
            sources=[
                WebTraffic(mean_think_s=10.0),
                LlmnrService(mean_period_s=20.0),
                MdnsService(period_s=45.0),
            ],
            auto_services=False,
        )
    )
    run = scenario.run()
    for label in ("netbook-1", "netbook-2"):
        sender = next(mac for mac, name in run.station_names.items() if name == label)
        values = timeline_interarrivals(
            run.table(),
            sender,
            lambda c: c.frame.is_data and c.frame.is_multicast,
        )
        result.histograms[label] = _histogram_of(values, bins)
        result.observation_counts[label] = len(values)
    return result


def psm_experiment(duration_s: float = 600.0, seed: int = 57) -> FactorExperimentResult:
    """Figure 8: power-save null-function cadence of two cards."""
    bins = UniformBins(lo=0.0, hi=2500.0, width=50.0, drop_outside=True)
    result = FactorExperimentResult(title="Figure 8: power save", bins=bins)
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        channel_model=ChannelModel(shadowing_sigma_db=1.5),
        area_m=20.0,
    )
    scenario.add_station(
        StationSpec(
            name="card-1",
            profile=profile_by_name("apple-bcm4321-osx"),
            sources=[WebTraffic(mean_think_s=12.0)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="card-2",
            profile=profile_by_name("broadcom-4318-win"),
            sources=[WebTraffic(mean_think_s=12.0)],
        )
    )
    run = scenario.run()
    for label in ("card-1", "card-2"):
        sender = next(mac for mac, name in run.station_names.items() if name == label)
        values = timeline_interarrivals(
            run.table(), sender, lambda c: c.frame.is_null_function
        )
        result.histograms[label] = _histogram_of(values, bins)
        result.observation_counts[label] = len(values)
    return result
