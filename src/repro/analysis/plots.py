"""Text rendering of histograms, curves and tables.

The paper's figures are density histograms and TPR/FPR curves.  In a
library context the equivalents are terminal-friendly: a unicode bar
histogram (:func:`render_histogram`), a down-sampled curve listing
(:func:`render_curve`) and an aligned table (:func:`render_table`).
All renderers also produce machine-readable CSV via ``as_csv=True``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.histogram import BinSpec

_BAR_CHARS = " ▏▎▍▌▋▊▉█"


def render_histogram(
    frequencies: np.ndarray,
    bins: BinSpec,
    title: str = "",
    width: int = 50,
    max_rows: int = 40,
    as_csv: bool = False,
) -> str:
    """Render a percentage-frequency histogram as bars or CSV.

    Rows are grouped when the histogram has more bins than
    ``max_rows`` so dense histograms stay readable.
    """
    if len(frequencies) != bins.bin_count:
        raise ValueError(
            f"frequency vector ({len(frequencies)}) does not match bins "
            f"({bins.bin_count})"
        )
    if as_csv:
        lines = ["bin,frequency"]
        for index, value in enumerate(frequencies):
            lines.append(f"{bins.bin_label(index)},{value:.6f}")
        return "\n".join(lines)

    group = max(1, int(np.ceil(bins.bin_count / max_rows)))
    grouped: list[tuple[str, float]] = []
    for start in range(0, bins.bin_count, group):
        label = bins.bin_label(start)
        grouped.append((label, float(frequencies[start : start + group].sum())))
    peak = max((value for _label, value in grouped), default=0.0)
    lines = [title] if title else []
    label_width = max((len(label) for label, _ in grouped), default=0)
    for label, value in grouped:
        if peak > 0:
            filled = value / peak * width
        else:
            filled = 0.0
        whole = int(filled)
        remainder = int((filled - whole) * (len(_BAR_CHARS) - 1))
        bar = "█" * whole + (_BAR_CHARS[remainder] if remainder else "")
        lines.append(f"{label:>{label_width}} |{bar:<{width}}| {value:6.3f}")
    return "\n".join(lines)


def render_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "FPR",
    y_label: str = "TPR",
    points: int = 12,
    as_csv: bool = False,
) -> str:
    """Render a curve as a down-sampled point listing or CSV."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if as_csv:
        lines = [f"{x_label},{y_label}"]
        for x, y in zip(xs, ys):
            lines.append(f"{x:.6f},{y:.6f}")
        return "\n".join(lines)
    if not xs:
        return f"(empty {y_label} vs {x_label} curve)"
    stride = max(1, len(xs) // points)
    lines = [f"{x_label:>8}  {y_label:>8}"]
    for index in range(0, len(xs), stride):
        lines.append(f"{xs[index]:8.4f}  {ys[index]:8.4f}")
    if (len(xs) - 1) % stride != 0:
        lines.append(f"{xs[-1]:8.4f}  {ys[-1]:8.4f}")
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (used by benches and the CLI)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)
