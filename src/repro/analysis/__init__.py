"""Section VI factor experiments and rendering helpers.

:mod:`repro.analysis.factors` reproduces the paper's controlled
micro-experiments explaining *why* inter-arrival histograms
discriminate (backoff quirks, RTS settings, rate behaviour, network
services, power save); :mod:`repro.analysis.plots` renders histograms
and curves as text/CSV for terminals and logs.
"""

from repro.analysis.factors import (
    FactorExperimentResult,
    backoff_experiment,
    psm_experiment,
    rate_experiment,
    rts_experiment,
    services_experiment,
)
from repro.analysis.plots import (
    render_curve,
    render_histogram,
    render_table,
)

__all__ = [
    "FactorExperimentResult",
    "backoff_experiment",
    "psm_experiment",
    "rate_experiment",
    "render_curve",
    "render_histogram",
    "render_table",
    "rts_experiment",
    "services_experiment",
]
