"""Command-line tool, the analogue of the paper's pcap-based tool.

Section V-C: "We have developed a tool in Python based on the pcap
library.  It analyses standard pcap files [...] and extracts the
different network parameters [...] also implements the fingerprinting
methodology".  This CLI does the same against radiotap pcaps (real or
simulator-produced):

* ``repro-80211 learn capture.pcap --db refs.json`` — build a
  reference database from a training capture;
* ``repro-80211 match capture.pcap --db refs.json`` — match candidate
  windows against the database;
* ``repro-80211 evaluate capture.pcap --training-s 600`` — run the
  full similarity/identification evaluation on one capture;
* ``repro-80211 evaluate --out BENCH_experiments.json`` — no pcap:
  run the cross-scenario evaluation matrix over the scenario library
  ((scenario × parameter × measure) cells, DESIGN.md §7), with
  ``--scenario``/``--parameter``/``--measure`` subsetting and
  ``--resume`` to skip cells an earlier partial run already wrote;
* ``repro-80211 scenarios list`` — the bundled scenario library;
* ``repro-80211 simulate office --out office.pcap`` — produce a
  synthetic dataset pcap;
* ``repro-80211 histogram capture.pcap --device <mac>`` — render a
  device's inter-arrival histogram (Figure 2 style);
* ``repro-80211 stream capture.pcap --db refs.json`` — run the online
  engine: the pcap is consumed frame-by-frame in bounded memory,
  windows are matched live and alerts stream out as they happen; with
  ``--checkpoint``/``--resume`` the engine state survives restarts
  (DESIGN.md §5);
* ``repro-80211 db save|load|merge|info`` — manage persistent
  reference-database stores (versioned ``.npz`` + JSONL directories,
  :mod:`repro.persistence.store`).  ``--db`` everywhere accepts either
  a legacy JSON file or a store directory;
* ``repro-80211 serve`` / ``repro-80211 sensor capture.pcap --connect
  HOST:PORT --sensor-id s0`` — the multi-sensor ingest service
  (DESIGN.md §9): N concurrent capture sessions stream columnar chunks
  over the length-prefixed wire format into shard-partitioned engines
  and one shared merged reference database, with per-sensor
  checkpoint/resume and bounded-queue backpressure.

``stream`` and ``serve`` shut down gracefully on SIGINT/SIGTERM —
final checkpoint written, sinks flushed, then exit — and both accept
``--stats-json PATH`` to dump their final statistics machine-readably.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.plots import render_histogram, render_table
from repro.core.database import ReferenceDatabase
from repro.core.detection import DetectionConfig
from repro.core.matcher import match_signature
from repro.core.parameters import ALL_PARAMETERS, parameter_by_name
from repro.core.pipeline import evaluate_trace
from repro.core.signature import Signature, SignatureBuilder
from repro.dot11.mac import MacAddress
from repro.traces.trace import Trace


def _signature_to_json(signature: Signature) -> dict:
    return {
        "histograms": {k: v.tolist() for k, v in signature.histograms.items()},
        "weights": signature.weights,
        "observation_counts": signature.observation_counts,
    }


def _signature_from_json(payload: dict) -> Signature:
    return Signature(
        histograms={k: np.array(v) for k, v in payload["histograms"].items()},
        weights=dict(payload["weights"]),
        observation_counts={
            k: int(v) for k, v in payload.get("observation_counts", {}).items()
        },
    )


def save_database(database: ReferenceDatabase, parameter_name: str, path: Path) -> None:
    """Persist a reference database as JSON."""
    payload = {
        "parameter": parameter_name,
        "devices": {
            str(device): _signature_to_json(signature)
            for device, signature in database.items()
        },
    }
    path.write_text(json.dumps(payload))


def load_database(path: Path) -> tuple[ReferenceDatabase, str]:
    """Load a JSON reference database; returns (db, parameter name)."""
    payload = json.loads(path.read_text())
    database = ReferenceDatabase()
    for mac_text, signature_payload in payload["devices"].items():
        database.add(
            MacAddress.parse(mac_text), _signature_from_json(signature_payload)
        )
    return database, payload["parameter"]


def load_any_database(path: Path) -> tuple[ReferenceDatabase, str]:
    """Load a reference database from either supported format.

    A directory (or anything holding a ``meta.json``) is treated as a
    versioned store (:mod:`repro.persistence.store`); anything else as
    the legacy single-file JSON format.
    """
    from repro.persistence.store import is_database_store
    from repro.persistence import load_database as load_store

    if is_database_store(path):
        loaded = load_store(path)
        if loaded.parameter is None:
            raise SystemExit(
                f"{path}: store does not record its network parameter; "
                "re-save it with `repro-80211 db save`"
            )
        return loaded.database, loaded.parameter
    return load_database(path)


def _cmd_learn(args: argparse.Namespace) -> int:
    trace = Trace.from_pcap(args.pcap)
    parameter = parameter_by_name(args.parameter)
    builder = SignatureBuilder(parameter, min_observations=args.min_observations)
    database = ReferenceDatabase.from_training_table(builder, trace.table())
    save_database(database, parameter.name, Path(args.db))
    print(f"learnt {len(database)} reference devices -> {args.db}")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    database, parameter_name = load_any_database(Path(args.db))
    parameter = parameter_by_name(parameter_name)
    builder = SignatureBuilder(parameter, min_observations=args.min_observations)
    trace = Trace.from_pcap(args.pcap)
    trace.table()  # intern once; window views below share the columns
    rows = []
    for window_index, window in enumerate(trace.windows(args.window_s)):
        for device, signature in builder.build_table(window.table()).items():
            similarities = match_signature(signature, database)
            if not similarities:
                continue
            best = max(similarities, key=lambda d: similarities[d])
            verdict = "MATCH" if best == device else "MISMATCH"
            rows.append(
                (
                    window_index,
                    str(device),
                    str(best),
                    f"{similarities[best]:.3f}",
                    verdict,
                )
            )
    print(
        render_table(
            ["window", "claimed", "best match", "similarity", "verdict"], rows
        )
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    if args.pcap is None:
        return _cmd_evaluate_matrix(args)
    if args.scenario:
        print(
            "evaluate: give either a pcap or --scenario, not both",
            file=sys.stderr,
        )
        return 2
    if args.training_s is None:
        print("evaluate: --training-s is required with a pcap", file=sys.stderr)
        return 2
    trace = Trace.from_pcap(args.pcap)
    config = DetectionConfig(
        window_s=args.window_s, min_observations=args.min_observations
    )
    rows = []
    for parameter in ALL_PARAMETERS:
        result = evaluate_trace(trace, parameter, args.training_s, config)
        rows.append(
            (
                parameter.label,
                f"{result.auc:.3f}",
                f"{result.identification_at(0.01):.3f}",
                f"{result.identification_at(0.1):.3f}",
            )
        )
    print(
        render_table(
            ["parameter", "AUC", "ident@FPR=0.01", "ident@FPR=0.1"],
            rows,
            title=f"{args.pcap}: {len(trace)} frames",
        )
    )
    return 0


def _cmd_evaluate_matrix(args: argparse.Namespace) -> int:
    from repro.evaluation import (
        DEFAULT_MEASURES,
        EvaluationMatrix,
        SimulationCache,
        run_matrix,
    )
    from repro.scenarios import scenario_names

    available = scenario_names()
    scenarios = args.scenario or list(available)
    for name in scenarios:
        if name not in available:
            print(
                f"unknown scenario {name!r}; available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2
    measures = args.measure or list(DEFAULT_MEASURES)

    resume = None
    if args.resume:
        out_path = Path(args.out) if args.out else None
        if out_path is None or not out_path.exists():
            print(
                "--resume: nothing to resume "
                f"({'no --out given' if out_path is None else f'{out_path} missing'}); "
                "running the full grid",
                file=sys.stderr,
            )
        else:
            resume = EvaluationMatrix.load(out_path)
            print(f"resuming: {len(resume)} cells already in {out_path}")

    def progress(key, cell, was_resumed):
        tag = "cached" if was_resumed else f"auc={cell.auc:.3f}"
        print(f"  {key.scenario} × {key.parameter} × {key.measure}: {tag}")

    matrix = run_matrix(
        scenarios=scenarios,
        parameters=args.parameter or None,
        measures=measures,
        cache=SimulationCache(),
        scale=args.scale,
        resume=resume,
        progress=progress if args.verbose else None,
    )
    rows = [
        (
            cell.scenario,
            cell.parameter,
            cell.measure,
            f"{cell.auc:.3f}",
            f"{cell.identification_at_0_01:.3f}",
            f"{cell.identification_at_0_1:.3f}",
            str(cell.reference_devices),
        )
        for cell in matrix.cells
    ]
    print(
        render_table(
            [
                "scenario",
                "parameter",
                "measure",
                "AUC",
                "ident@0.01",
                "ident@0.1",
                "refs",
            ],
            rows,
            title=(
                f"evaluation matrix: {len(matrix.scenarios())} scenarios × "
                f"{len(matrix.parameters())} parameters × "
                f"{len(matrix.measures())} measures = {len(matrix)} cells"
            ),
        )
    )
    if args.out:
        path = matrix.save(args.out)
        print(f"matrix -> {path}")
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import build_scenario, scenario_names

    rows = []
    for name in scenario_names():
        meta = build_scenario(name).metadata
        rows.append(
            (
                name,
                str(meta.station_count),
                f"{meta.duration_s:.0f}",
                str(meta.ap_count),
                "yes" if meta.encrypted else "no",
                f"{meta.window_s:.0f}",
                ",".join(meta.traffic_mix),
            )
        )
    print(
        render_table(
            ["scenario", "stations", "dur s", "APs", "enc", "win s", "traffic"],
            rows,
            title="scenario library",
        )
    )
    return 0


class _ShutdownRequest:
    """Records the first SIGINT/SIGTERM so loops can exit gracefully."""

    def __init__(self) -> None:
        self.signum: int | None = None

    @property
    def triggered(self) -> bool:
        return self.signum is not None

    @property
    def name(self) -> str:
        return signal.Signals(self.signum).name if self.triggered else ""

    def __call__(self, signum: int, frame: object) -> None:
        self.signum = signum


@contextlib.contextmanager
def _graceful_shutdown():
    """Catch SIGINT/SIGTERM into a flag for the duration of the block.

    The long-running commands (``stream``, ``serve``) check the flag
    between work items and wind down cleanly — final checkpoint, sinks
    flushed — instead of dying mid-write.  Outside the main thread
    (some test harnesses) handlers cannot be installed; the flag simply
    never triggers there.
    """
    request = _ShutdownRequest()
    previous: dict[int, object] = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, request)
    except ValueError:
        pass
    try:
        yield request
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _write_stats_json(path: str, payload: dict) -> None:
    Path(path).write_text(json.dumps(payload, sort_keys=True) + "\n")
    print(f"stats -> {path}")


def _stream_stats_payload(stats, interrupted: bool) -> dict:
    """Machine-readable ``StreamStats`` for ``--stats-json``."""
    return {
        "frames": stats.frames,
        "windows_closed": stats.windows_closed,
        "candidates": stats.candidates,
        "events": stats.events,
        "events_by_type": dict(sorted(stats.events_by_type.items())),
        "peak_resident_devices": stats.peak_resident_devices,
        "duration_s": stats.duration_s,
        "first_timestamp_us": stats.first_timestamp_us,
        "last_timestamp_us": stats.last_timestamp_us,
        "interrupted": interrupted,
    }


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.streaming import (
        DeviceMatched,
        JsonLinesSink,
        LiveTracker,
        OnlineSpoofGuard,
        PseudonymLinked,
        SpoofAlert,
        StreamEngine,
        StreamEvent,
        StreamingSignatureBuilder,
        WindowClosed,
        WindowConfig,
        pcap_chunk_source,
        pcap_source,
        skip_processed_chunks,
        skip_processed_frames,
    )

    database, parameter_name = load_any_database(Path(args.db))
    parameter = parameter_by_name(parameter_name)

    analyzers = []
    if args.spoof_guard:
        from repro.applications.spoof_detector import SpoofDetector

        detector = SpoofDetector(
            parameter=parameter, min_observations=args.min_observations
        )
        detector.database = database  # the allow-list is the learnt db
        analyzers.append(OnlineSpoofGuard(detector))
    if args.track:
        from repro.applications.tracker import DeviceTracker

        tracker = DeviceTracker(
            parameter=parameter, min_observations=args.min_observations
        )
        tracker.database = database
        analyzers.append(LiveTracker(tracker))

    def console_sink(event: StreamEvent) -> None:
        if isinstance(event, WindowClosed):
            if args.verbose:
                print(
                    f"window {event.window_index}: {event.frame_count} frames, "
                    f"{event.candidate_count} candidates"
                )
        elif isinstance(event, DeviceMatched):
            if args.verbose:
                print(
                    f"window {event.window_index}: {event.device} -> "
                    f"{event.best_device} ({event.similarity:.3f})"
                )
        elif isinstance(event, SpoofAlert):
            print(
                f"ALERT window {event.window_index}: {event.device} "
                f"{event.verdict} (self={event.self_similarity:.3f})"
            )
        elif isinstance(event, PseudonymLinked):
            print(
                f"LINK window {event.window_index}: {event.pseudonym} -> "
                f"{event.linked_device} ({event.similarity:.3f})"
            )

    engine = StreamEngine(
        lambda: StreamingSignatureBuilder(
            parameter, min_observations=args.min_observations
        ),
        database=database,
        window=WindowConfig(
            window_s=args.window_s,
            slide_s=args.slide_s,
            idle_timeout_s=args.idle_timeout_s,
        ),
        analyzers=analyzers,
        sinks=[console_sink],
    )
    events_sink = None
    if args.events:
        events_sink = JsonLinesSink.open(args.events)
        engine.subscribe(events_sink)
    already_processed = 0
    resume_horizon_us: float | None = None
    if args.resume:
        engine.restore(args.resume)
        already_processed = engine.stats.frames
        resume_horizon_us = engine.stats.last_timestamp_us
        print(f"resumed from {args.resume} at {already_processed} frames")
    interrupted: int | None = None
    try:
        chunked = args.chunk_frames is not None
        if chunked:
            source = pcap_chunk_source(
                args.pcap,
                chunk_frames=args.chunk_frames,
                skip_bad_fcs=args.skip_bad_fcs,
            )
        else:
            source = pcap_source(args.pcap, skip_bad_fcs=args.skip_bad_fcs)
        if already_processed and resume_horizon_us is not None:
            # Crash recovery on the SAME capture: the first
            # `already_processed` frames (all at or before the snapshot's
            # capture clock) were consumed before the checkpoint — feed
            # them again and they would double-accumulate into the
            # restored open windows.  A continuation capture starts
            # past the horizon, so nothing is skipped there.
            skip = skip_processed_chunks if chunked else skip_processed_frames
            source = skip(source, already_processed, resume_horizon_us)
        # One explicit loop for all modes, so SIGINT/SIGTERM can stop
        # cleanly between items: final checkpoint taken, event sinks
        # flushed, windows left OPEN (a flushed engine cannot resume,
        # so an interrupted run must not flush).
        last_checkpoint_us: float | None = None
        with _graceful_shutdown() as shutdown:
            for item in source:
                if chunked:
                    engine.process_chunk(item)
                    now_us = item.end_us
                else:
                    engine.process_frame(item)
                    now_us = item.timestamp_us
                if args.checkpoint and args.checkpoint_every_s is not None:
                    if last_checkpoint_us is None:
                        last_checkpoint_us = now_us
                    elif now_us - last_checkpoint_us >= args.checkpoint_every_s * 1e6:
                        engine.checkpoint(args.checkpoint)
                        last_checkpoint_us = now_us
                if shutdown.triggered:
                    break
            if args.checkpoint:
                # The final snapshot BEFORE flushing — a flushed engine
                # has closed its windows early and cannot continue the
                # capture, so the checkpoint must precede it.
                engine.checkpoint(args.checkpoint)
                print(f"checkpoint -> {args.checkpoint}")
            if shutdown.triggered:
                interrupted = shutdown.signum
                print(
                    f"interrupted ({shutdown.name}): stopped cleanly after "
                    f"{engine.stats.frames} frames"
                    + (", state checkpointed" if args.checkpoint else "")
                )
            else:
                engine.flush()
        stats = engine.stats
    finally:
        if events_sink is not None:
            events_sink.close()
    by_type = ", ".join(
        f"{name}={count}" for name, count in sorted(stats.events_by_type.items())
    )
    print(
        f"streamed {stats.frames} frames ({stats.duration_s:.1f}s of capture) "
        f"in {stats.windows_closed} windows: {stats.candidates} candidates, "
        f"peak {stats.peak_resident_devices} resident devices"
    )
    if by_type:
        print(f"events: {by_type}")
    if args.stats_json:
        _write_stats_json(
            args.stats_json,
            _stream_stats_payload(stats, interrupted=interrupted is not None),
        )
    return 0 if interrupted is None else 128 + interrupted


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import IngestServer, ServiceConfig
    from repro.streaming import WindowConfig

    config = ServiceConfig(
        parameter=parameter_by_name(args.parameter),
        shard_count=args.shards,
        window=WindowConfig(
            window_s=args.window_s,
            slide_s=args.slide_s,
            idle_timeout_s=args.idle_timeout_s,
        ),
        min_observations=args.min_observations,
        queue_chunks=args.queue_chunks,
        merge_policy=args.merge_policy,
        checkpoint_every_chunks=args.checkpoint_every_chunks,
    )
    server = IngestServer(config, checkpoint_dir=args.checkpoint_dir)
    interrupted: int | None = None
    try:
        port = server.listen(args.host, args.port)
        print(
            f"listening on {args.host}:{port} "
            f"({config.shard_count} shards, parameter={config.parameter.name})",
            flush=True,
        )
        with _graceful_shutdown() as shutdown:
            while not shutdown.triggered:
                if args.sessions is not None:
                    if server.wait_for_sessions(args.sessions, timeout=0.2):
                        break
                else:
                    time.sleep(0.2)
            if shutdown.triggered:
                interrupted = shutdown.signum
                print(
                    f"interrupted ({shutdown.name}): draining queues, "
                    "checkpointing sensors"
                )
    finally:
        # Graceful either way: consume what already reached the queues,
        # checkpoint every sensor, then stop the threads.
        server.close()
    stats = server.stats()
    print(
        f"served {len(stats.sensors)} sensors: {stats.frames} frames, "
        f"{stats.frames_per_s:.0f} frames/s, peak queue depth "
        f"{stats.queue_peak}"
    )
    for sensor in stats.sensors:
        state = "completed" if sensor.completed else "paused"
        print(
            f"  {sensor.sensor}: {sensor.frames} frames in {sensor.chunks} "
            f"chunks, {sensor.windows_closed} windows, {state}"
        )
    if args.db_out:
        store = server.publish(args.db_out)
        print(
            f"published {len(server.merged_database().devices)} devices "
            f"-> {store}"
        )
    if args.stats_json:
        payload = stats.to_dict()
        payload["interrupted"] = interrupted is not None
        _write_stats_json(args.stats_json, payload)
    return 0 if interrupted is None else 128 + interrupted


def _cmd_sensor(args: argparse.Namespace) -> int:
    from repro.service import SensorSession
    from repro.streaming import pcap_chunk_source

    host, _, port_text = args.connect.rpartition(":")
    if not port_text.isdigit():
        print(
            f"--connect must be HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    chunks = pcap_chunk_source(
        args.pcap,
        chunk_frames=args.chunk_frames,
        skip_bad_fcs=args.skip_bad_fcs,
    )
    session = SensorSession(args.sensor_id, chunks)
    report = session.connect(
        host or "127.0.0.1",
        int(port_text),
        abort_after_chunks=args.abort_after_chunks,
    )
    suffix = "" if report.ended else " (aborted before END)"
    print(
        f"{report.sensor}: sent {report.frames} frames in "
        f"{report.chunks} chunks{suffix}"
    )
    return 0 if report.ended else 1


def _cmd_db_save(args: argparse.Namespace) -> int:
    from repro.persistence import save_database as save_store

    trace = Trace.from_pcap(args.pcap)
    parameter = parameter_by_name(args.parameter)
    builder = SignatureBuilder(parameter, min_observations=args.min_observations)
    database = ReferenceDatabase.from_training_table(builder, trace.table())
    save_store(database, args.store, parameter=parameter.name)
    print(f"learnt {len(database)} reference devices -> {args.store}")
    return 0


def _cmd_db_load(args: argparse.Namespace) -> int:
    from repro.persistence import load_database as load_store

    loaded = load_store(args.store)
    database = loaded.database
    rows = [
        (
            str(device),
            str(len(signature.histograms)),
            str(signature.total_observations),
        )
        for device, signature in database.items()
    ]
    print(
        render_table(
            ["device", "frame types", "observations"],
            rows,
            title=(
                f"{args.store}: {len(database)} devices, "
                f"parameter={loaded.parameter}, layout={loaded.layout} "
                f"(format v{loaded.version})"
            ),
        )
    )
    if args.json:
        if loaded.parameter is None:
            print(
                f"{args.store}: store does not record its network parameter; "
                "cannot export usable legacy JSON — re-save it with "
                "`repro-80211 db save`",
                file=sys.stderr,
            )
            return 1
        save_database(database, loaded.parameter, Path(args.json))
        print(f"exported legacy JSON -> {args.json}")
    return 0


def _cmd_db_merge(args: argparse.Namespace) -> int:
    from repro.persistence import load_database as load_store
    from repro.persistence import save_database as save_store

    merged = ReferenceDatabase()
    parameter: str | None = None
    for store in args.stores:
        loaded = load_store(store)
        if parameter is None:
            parameter = loaded.parameter
        elif loaded.parameter is not None and loaded.parameter != parameter:
            print(
                f"cannot merge: {store} was built from parameter "
                f"{loaded.parameter!r}, earlier stores from {parameter!r}",
                file=sys.stderr,
            )
            return 1
        report = merged.merge(loaded.database, on_conflict=args.on_conflict)
        print(
            f"{store}: +{len(report.added)} added, "
            f"{len(report.replaced)} replaced, {len(report.skipped)} kept"
        )
    save_store(merged, args.out, parameter=parameter)
    print(f"merged {len(merged)} devices -> {args.out}")
    return 0


def _cmd_db_info(args: argparse.Namespace) -> int:
    from repro.persistence import database_info

    info = database_info(args.store)
    print(f"{info['path']}: {info['format']} v{info['version']}")
    print(f"  layout: {info['layout']}")
    print(f"  parameter: {info['parameter']}")
    print(f"  devices: {info['device_count']}")
    bins = info.get("bin_counts", {})
    for ftype in info.get("frame_types", []):
        print(f"  frame type {ftype!r}: {bins.get(ftype, '?')} bins")
    print(f"  bytes: {info['total_bytes']}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.traces.datasets import build_dataset, _spec

    spec = _spec(args.dataset, args.scale)
    trace = build_dataset(spec)
    count = trace.to_pcap(args.out)
    print(f"{spec.name}: wrote {count} frames to {args.out}")
    return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    trace = Trace.from_pcap(args.pcap)
    parameter = parameter_by_name(args.parameter)
    builder = SignatureBuilder(parameter, min_observations=args.min_observations)
    device = MacAddress.parse(args.device)
    signature = builder.build_single(trace.frames, device)
    if signature is None:
        print(f"{device}: fewer than {args.min_observations} observations", file=sys.stderr)
        return 1
    for ftype_key, histogram in sorted(signature.histograms.items()):
        print(
            render_histogram(
                histogram,
                builder.bins,
                title=(
                    f"{device} — {parameter.label} — {ftype_key} "
                    f"(weight {signature.weight(ftype_key):.2f})"
                ),
                as_csv=args.csv,
            )
        )
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-80211",
        description="Passive 802.11 device fingerprinting (ICDCS 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--parameter", default="interarrival",
                       help="network parameter (rate, size, access, txtime, interarrival)")
        p.add_argument("--min-observations", type=int, default=50)

    learn = sub.add_parser("learn", help="build a reference database from a pcap")
    learn.add_argument("pcap")
    learn.add_argument("--db", required=True, help="output JSON database path")
    common(learn)
    learn.set_defaults(func=_cmd_learn)

    match = sub.add_parser("match", help="match a capture against a database")
    match.add_argument("pcap")
    match.add_argument("--db", required=True)
    match.add_argument("--window-s", type=float, default=300.0)
    match.add_argument("--min-observations", type=int, default=50)
    match.set_defaults(func=_cmd_match)

    evaluate = sub.add_parser(
        "evaluate",
        help="full evaluation on one capture, or the cross-scenario "
        "matrix when no pcap is given",
    )
    evaluate.add_argument(
        "pcap", nargs="?", help="capture to evaluate (omit for matrix mode)"
    )
    evaluate.add_argument(
        "--training-s", type=float, help="training prefix (pcap mode)"
    )
    evaluate.add_argument("--window-s", type=float, default=300.0)
    evaluate.add_argument("--min-observations", type=int, default=50)
    evaluate.add_argument(
        "--scenario",
        action="append",
        help="library scenario to evaluate (repeatable; default: all)",
    )
    evaluate.add_argument(
        "--parameter",
        action="append",
        choices=[p.name for p in ALL_PARAMETERS],
        help="network parameter axis (repeatable; default: all five)",
    )
    evaluate.add_argument(
        "--measure",
        action="append",
        help="similarity measure axis (repeatable; default: cosine, "
        "intersection)",
    )
    evaluate.add_argument(
        "--out", help="write the matrix as BENCH_experiments.json here"
    )
    evaluate.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already present in --out from a previous run",
    )
    evaluate.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="station-count scale factor for matrix scenarios",
    )
    evaluate.add_argument(
        "--verbose", action="store_true", help="print each cell as it finishes"
    )
    evaluate.set_defaults(func=_cmd_evaluate)

    scenarios = sub.add_parser("scenarios", help="inspect the scenario library")
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenarios_list = scenarios_sub.add_parser(
        "list", help="list the bundled scenario presets"
    )
    scenarios_list.set_defaults(func=_cmd_scenarios_list)

    stream = sub.add_parser(
        "stream", help="online fingerprinting over a pcap (bounded memory)"
    )
    stream.add_argument("pcap")
    stream.add_argument("--db", required=True, help="reference database JSON")
    stream.add_argument("--window-s", type=float, default=300.0)
    stream.add_argument(
        "--slide-s",
        type=float,
        default=None,
        help="sliding-window step (default: tumbling windows)",
    )
    stream.add_argument("--min-observations", type=int, default=50)
    stream.add_argument(
        "--idle-timeout-s",
        type=float,
        default=None,
        help="evict devices idle this long inside a window (memory bound)",
    )
    stream.add_argument(
        "--spoof-guard",
        action="store_true",
        help="alert when a database device's traffic stops matching it",
    )
    stream.add_argument(
        "--track",
        action="store_true",
        help="link randomised MACs back to database devices",
    )
    stream.add_argument(
        "--events", help="write every event as JSON lines to this file"
    )
    stream.add_argument(
        "--checkpoint",
        help="snapshot resumable engine state to this file (written after "
        "the last frame, before windows are flushed)",
    )
    stream.add_argument(
        "--checkpoint-every-s",
        type=float,
        default=None,
        help="additionally checkpoint every N capture-seconds",
    )
    stream.add_argument(
        "--resume", help="restore engine state from a checkpoint before streaming"
    )
    stream.add_argument(
        "--chunk-frames",
        type=int,
        default=None,
        help="ingest columnar chunks of this many frames (vectorized "
        "fast path, identical events; default: per-frame)",
    )
    stream.add_argument("--skip-bad-fcs", action="store_true")
    stream.add_argument("--verbose", action="store_true")
    stream.add_argument(
        "--stats-json",
        help="write the final stream statistics as JSON to this path",
    )
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="run the multi-sensor ingest service (sensors connect with "
        "`repro-80211 sensor`)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0: ephemeral, printed)"
    )
    common(serve)
    serve.add_argument(
        "--shards", type=int, default=4,
        help="consistent-hash shard engines per sensor pipeline",
    )
    serve.add_argument("--window-s", type=float, default=300.0)
    serve.add_argument("--slide-s", type=float, default=None)
    serve.add_argument("--idle-timeout-s", type=float, default=None)
    serve.add_argument(
        "--queue-chunks", type=int, default=8,
        help="bounded per-sensor ingest queue (backpressure threshold)",
    )
    serve.add_argument(
        "--merge-policy",
        choices=["replace", "keep", "error"],
        default="replace",
        help="cross-sensor conflict policy for the shared database",
    )
    serve.add_argument(
        "--checkpoint-dir",
        help="checkpoint/resume sensor sessions under this directory",
    )
    serve.add_argument(
        "--checkpoint-every-chunks", type=int, default=None,
        help="additionally checkpoint a sensor every N consumed chunks",
    )
    serve.add_argument(
        "--sessions", type=int, default=None,
        help="exit after this many completed sensor sessions "
        "(default: run until SIGINT/SIGTERM)",
    )
    serve.add_argument(
        "--db-out", help="publish the merged reference database store here"
    )
    serve.add_argument(
        "--stats-json",
        help="write the final service statistics as JSON to this path",
    )
    serve.set_defaults(func=_cmd_serve)

    sensor = sub.add_parser(
        "sensor",
        help="stream a pcap to a running ingest service as one capture "
        "session",
    )
    sensor.add_argument("pcap")
    sensor.add_argument(
        "--connect", required=True, help="service address as HOST:PORT"
    )
    sensor.add_argument(
        "--sensor-id", required=True,
        help="stable sensor name (also the checkpoint/resume key)",
    )
    sensor.add_argument("--chunk-frames", type=int, default=8192)
    sensor.add_argument("--skip-bad-fcs", action="store_true")
    sensor.add_argument(
        "--abort-after-chunks", type=int, default=None,
        help="drop the connection after N chunks without END "
        "(crash/resume drills)",
    )
    sensor.set_defaults(func=_cmd_sensor)

    db = sub.add_parser(
        "db", help="manage persistent reference-database stores"
    )
    dbsub = db.add_subparsers(dest="db_command", required=True)

    db_save = dbsub.add_parser(
        "save", help="learn a database from a pcap and persist it"
    )
    db_save.add_argument("pcap")
    db_save.add_argument("store", help="output store directory")
    common(db_save)
    db_save.set_defaults(func=_cmd_db_save)

    db_load = dbsub.add_parser(
        "load", help="load a store and list its devices"
    )
    db_load.add_argument("store")
    db_load.add_argument("--json", help="also export as legacy JSON to this path")
    db_load.set_defaults(func=_cmd_db_load)

    db_merge = dbsub.add_parser(
        "merge", help="merge several stores into one"
    )
    db_merge.add_argument("stores", nargs="+", help="input store directories")
    db_merge.add_argument("--out", required=True, help="output store directory")
    db_merge.add_argument(
        "--on-conflict",
        choices=["replace", "keep", "error"],
        default="replace",
        help="policy when a device appears in several stores "
        "(default: the later store wins)",
    )
    db_merge.set_defaults(func=_cmd_db_merge)

    db_info = dbsub.add_parser("info", help="show store metadata")
    db_info.add_argument("store")
    db_info.set_defaults(func=_cmd_db_info)

    simulate = sub.add_parser("simulate", help="generate a synthetic dataset pcap")
    simulate.add_argument(
        "dataset",
        choices=["office1", "office2", "conference1", "conference2"],
    )
    simulate.add_argument("--out", required=True)
    simulate.add_argument("--scale", type=float, default=1.0)
    simulate.set_defaults(func=_cmd_simulate)

    histogram = sub.add_parser("histogram", help="render one device's histograms")
    histogram.add_argument("pcap")
    histogram.add_argument("--device", required=True, help="MAC address")
    histogram.add_argument("--csv", action="store_true")
    common(histogram)
    histogram.set_defaults(func=_cmd_histogram)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``repro-80211`` / ``python -m repro.cli``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
