"""Trace handling: containers, canonical datasets, filters, statistics.

A :class:`~repro.traces.trace.Trace` is an ordered capture with naming
metadata; :mod:`repro.traces.datasets` builds the four canonical
evaluation scenarios standing in for the paper's office/conference
captures; :mod:`repro.traces.stats` summarises them (Table I).
"""

from repro.traces.datasets import (
    DatasetSpec,
    clear_dataset_cache,
    conference_trace,
    office_trace,
    paper_datasets,
)
from repro.traces.filters import (
    broadcast_data_only,
    data_frames_only,
    first_transmissions_only,
    null_function_only,
    sent_at_rate,
)
from repro.traces.stats import TraceStats, summarize_trace
from repro.traces.table import FrameTable, TableObservations, window_bounds
from repro.traces.trace import Trace, TraceSplit

__all__ = [
    "DatasetSpec",
    "FrameTable",
    "TableObservations",
    "Trace",
    "TraceSplit",
    "TraceStats",
    "broadcast_data_only",
    "clear_dataset_cache",
    "conference_trace",
    "data_frames_only",
    "first_transmissions_only",
    "null_function_only",
    "office_trace",
    "paper_datasets",
    "sent_at_rate",
    "summarize_trace",
    "window_bounds",
]
