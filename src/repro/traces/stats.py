"""Per-trace summary statistics (the Table I analogue).

Summarises a trace the way the paper's Table I does: durations,
encryption, and the number of reference devices — i.e. devices whose
training-prefix activity clears the 50-observation minimum.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class TraceStats:
    """One Table I row."""

    name: str
    total_duration_s: float
    training_duration_s: float
    candidate_duration_s: float
    encrypted: bool
    reference_devices: int
    total_frames: int
    attributed_frames: int
    distinct_senders: int

    @property
    def encryption_label(self) -> str:
        """Table I's encryption column."""
        return "WPA" if self.encrypted else "None"


def summarize_trace(
    trace: Trace, training_s: float, min_observations: int = 50
) -> TraceStats:
    """Compute the Table I row for one trace.

    Reference devices are counted exactly as the evaluation does: a
    signature builder over the training prefix with the minimum
    observation rule (the parameter choice barely matters for the
    count; inter-arrival is used as in the paper's headline method).
    """
    # Imported lazily: repro.traces must not depend on repro.core at
    # import time (core.parameters imports the columnar table layer).
    from repro.core.parameters import InterArrivalTime
    from repro.core.signature import SignatureBuilder

    split = trace.split(training_s)
    builder = SignatureBuilder(InterArrivalTime(), min_observations=min_observations)
    references = builder.build(split.training.frames)
    sender_counts = Counter(
        c.sender for c in trace.frames if c.sender is not None
    )
    return TraceStats(
        name=trace.name,
        total_duration_s=trace.duration_s,
        training_duration_s=split.training.duration_s,
        candidate_duration_s=split.validation.duration_s,
        encrypted=trace.encrypted,
        reference_devices=len(references),
        total_frames=len(trace),
        attributed_frames=sum(sender_counts.values()),
        distinct_senders=len(sender_counts),
    )
