"""Frame predicates used by the Section VI factor experiments.

The paper repeatedly conditions histograms on frame subsets: Figure 4
uses "only data frames transmitted the first time (no retries) and sent
at 54 Mbps", Figure 7 "only data broadcast frames", Figure 8 "solely
Data null function frames".  These composable predicates express those
conditions.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.dot11.capture import CapturedFrame

FramePredicate = Callable[[CapturedFrame], bool]


def data_frames_only(captured: CapturedFrame) -> bool:
    """Data-type frames (including QoS and null variants)."""
    return captured.frame.is_data


def first_transmissions_only(captured: CapturedFrame) -> bool:
    """Frames with the retry bit clear (first transmission)."""
    return not captured.frame.retry


def broadcast_data_only(captured: CapturedFrame) -> bool:
    """Group-addressed data frames (the Figure 7 condition)."""
    return captured.frame.is_data and captured.frame.is_multicast


def null_function_only(captured: CapturedFrame) -> bool:
    """(QoS) null-function frames (the Figure 8 condition)."""
    return captured.frame.is_null_function


def sent_at_rate(rate_mbps: float) -> FramePredicate:
    """Factory: frames transmitted at exactly ``rate_mbps``."""

    def predicate(captured: CapturedFrame) -> bool:
        return abs(captured.rate_mbps - rate_mbps) < 1e-9

    return predicate


def combine(*predicates: FramePredicate) -> FramePredicate:
    """Conjunction of predicates."""

    def predicate(captured: CapturedFrame) -> bool:
        return all(p(captured) for p in predicates)

    return predicate


def filter_frames(
    frames: Iterable[CapturedFrame], *predicates: FramePredicate
) -> list[CapturedFrame]:
    """Apply a conjunction of predicates to a frame sequence."""
    joint = combine(*predicates)
    return [c for c in frames if joint(c)]
