"""Columnar (struct-of-arrays) trace representation.

:class:`FrameTable` stores a captured frame sequence as parallel NumPy
columns — ``timestamp_us``, ``size``, ``rate_mbps`` — plus interned
integer codes for the sender MAC (``sender_idx``) and the frame-type
label (``ftype_idx``).  It is the ingest-side counterpart of the packed
reference matrices (DESIGN.md §3): every stage upstream of the
histogram — observation extraction, window cutting, signature binning —
can then run as whole-array NumPy operations instead of per-frame
Python dispatch (DESIGN.md §6).

Interning scheme: ``senders[sender_idx[i]]`` is frame ``i``'s sender;
unattributable frames (ACK/CTS, the paper's ``si = null``) carry the
sentinel ``-1`` so they still advance the channel clock in the
time-derived parameters without ever producing an observation.
``ftype_keys[ftype_idx[i]]`` is the histogram key.  Codes are assigned
in first-appearance order, so downstream dict orderings match the
object path's exactly.

Tables are cheap to slice: row slices are NumPy **views** onto the
parent's columns (zero copy), and the backing
:class:`~repro.dot11.capture.CapturedFrame` sequence — kept for
lossless :meth:`FrameTable.to_frames` round-trips and for consumers
that need fields outside the columns — is shared by reference with an
offset, never copied per window.

:func:`window_bounds` is the single implementation of the evaluation
protocol's tumbling windows, shared by :meth:`repro.traces.trace.Trace.windows`,
:meth:`FrameTable.windows` and the detection fast path: each cut is an
``np.searchsorted`` on the timestamp column — O(log n) per window
instead of the former O(n) stamp-list rebuild.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress


class TableObservations(NamedTuple):
    """One parameter's vectorized observation batch over a table.

    Rows are aligned across the four arrays and appear in frame order —
    the exact sequence :meth:`~repro.core.parameters.NetworkParameter.observations`
    yields, with ``sender_idx``/``ftype_idx`` coded against the source
    table's intern tuples.  ``positions`` holds each observation's row
    index in the source table, which is what lets a window slice of a
    *whole-trace* observation batch reproduce per-window extraction
    (the shift-and-mask argument in DESIGN.md §6).
    """

    sender_idx: np.ndarray
    ftype_idx: np.ndarray
    values: np.ndarray
    positions: np.ndarray


def window_bounds(
    stamps: np.ndarray, window_s: float
) -> Iterator[tuple[int, int]]:
    """Frame-index ranges of the tumbling detection windows.

    Windows are ``[start, start + step)`` except the final one, which
    is right-**closed**: a last frame sitting exactly on a window
    boundary belongs to the final regular window instead of spawning a
    degenerate extra window beyond the trace span.  An empty trace
    yields one empty window, matching the historical contract.
    """
    if window_s <= 0:
        raise ValueError(f"window size must be positive: {window_s}")
    step = window_s * 1e6
    count = len(stamps)
    if count == 0:
        yield (0, 0)
        return
    start = float(stamps[0])
    last = float(stamps[-1])
    while True:
        end = start + step
        if end >= last:
            yield int(np.searchsorted(stamps, start, side="left")), count
            return
        lo, hi = np.searchsorted(stamps, (start, end), side="left")
        yield int(lo), int(hi)
        start = end


class FrameTable:
    """A captured frame sequence as parallel columns.

    Build one with :meth:`from_frames` (or the zero-copy accessors
    ``Trace.table()`` / ``SimulationResult.table()`` /
    :func:`repro.radiotap.pcap.read_trace_table`); slice it with
    :meth:`slice_rows` / :meth:`slice_us` / :meth:`windows` — all views.
    """

    __slots__ = (
        "timestamp_us",
        "size",
        "rate_mbps",
        "sender_idx",
        "ftype_idx",
        "senders",
        "ftype_keys",
        "_frames",
        "_base",
    )

    def __init__(
        self,
        timestamp_us: np.ndarray,
        size: np.ndarray,
        rate_mbps: np.ndarray,
        sender_idx: np.ndarray,
        ftype_idx: np.ndarray,
        senders: tuple[MacAddress, ...],
        ftype_keys: tuple[str, ...],
        frames: Sequence[CapturedFrame] | None = None,
        base: int = 0,
    ) -> None:
        self.timestamp_us = timestamp_us
        self.size = size
        self.rate_mbps = rate_mbps
        self.sender_idx = sender_idx
        self.ftype_idx = ftype_idx
        self.senders = senders
        self.ftype_keys = ftype_keys
        self._frames = frames
        self._base = base

    # -- construction --------------------------------------------------
    @classmethod
    def from_frames(
        cls,
        frames: Iterable[CapturedFrame],
        *,
        timestamps: np.ndarray | None = None,
    ) -> "FrameTable":
        """Intern a frame sequence into columns in one pass.

        The source frames are retained by reference (no copy), so
        :meth:`to_frames` round-trips losslessly.  ``timestamps`` lets
        a caller that already extracted the timestamp column (e.g.
        :meth:`Trace.table`, whose constructor cached it) share it
        instead of re-walking the frames.
        """
        backing = frames if isinstance(frames, list) else list(frames)
        count = len(backing)
        # Column-at-a-time fromiter passes beat a single row loop: each
        # pass is one attribute access per frame with no index writes.
        if timestamps is not None:
            stamps = timestamps
        else:
            stamps = np.fromiter(
                (c.timestamp_us for c in backing), dtype=np.float64, count=count
            )
        sizes = np.fromiter(
            (c.frame.size for c in backing), dtype=np.float64, count=count
        )
        rates = np.fromiter(
            (c.rate_mbps for c in backing), dtype=np.float64, count=count
        )
        sender_codes: dict[MacAddress, int] = {}
        ftype_codes: dict = {}
        sender_idx = np.fromiter(
            (
                -1
                if (sender := c.frame.addr2) is None
                else sender_codes.setdefault(sender, len(sender_codes))
                for c in backing
            ),
            dtype=np.int64,
            count=count,
        )
        ftype_idx = np.fromiter(
            (ftype_codes.setdefault(c.frame.subtype, len(ftype_codes)) for c in backing),
            dtype=np.int64,
            count=count,
        )
        return cls(
            timestamp_us=stamps,
            size=sizes,
            rate_mbps=rates,
            sender_idx=sender_idx,
            ftype_idx=ftype_idx,
            senders=tuple(sender_codes),
            ftype_keys=tuple(subtype.label for subtype in ftype_codes),
            frames=backing,
        )

    # -- basic protocol ------------------------------------------------
    def __len__(self) -> int:
        return self.timestamp_us.shape[0]

    def __repr__(self) -> str:
        return (
            f"<FrameTable n={len(self)} senders={len(self.senders)} "
            f"ftypes={len(self.ftype_keys)}>"
        )

    @property
    def start_us(self) -> float:
        """Timestamp of the first row (0 for an empty table)."""
        return float(self.timestamp_us[0]) if len(self) else 0.0

    @property
    def end_us(self) -> float:
        """Timestamp of the last row (0 for an empty table)."""
        return float(self.timestamp_us[-1]) if len(self) else 0.0

    # -- round trip ----------------------------------------------------
    def to_frames(self) -> list[CapturedFrame]:
        """The backing captured frames (lossless round trip)."""
        if self._frames is None:
            raise ValueError(
                "this FrameTable carries no backing frames; build it with "
                "FrameTable.from_frames to round-trip"
            )
        return list(self._frames[self._base : self._base + len(self)])

    def iter_frames(self) -> Iterator[CapturedFrame]:
        """Iterate the backing frames without materialising a copy."""
        if self._frames is None:
            raise ValueError("this FrameTable carries no backing frames")
        for row in range(self._base, self._base + len(self)):
            yield self._frames[row]

    def frame_at(self, row: int) -> CapturedFrame:
        """The backing frame of one table row."""
        if self._frames is None:
            raise ValueError("this FrameTable carries no backing frames")
        return self._frames[self._base + row]

    # -- slicing (views) -----------------------------------------------
    def slice_rows(self, lo: int, hi: int) -> "FrameTable":
        """Row range ``[lo, hi)`` as a zero-copy view table.

        Column slices are NumPy views; the intern tuples and the
        backing frame sequence are shared with the parent.
        """
        return FrameTable(
            timestamp_us=self.timestamp_us[lo:hi],
            size=self.size[lo:hi],
            rate_mbps=self.rate_mbps[lo:hi],
            sender_idx=self.sender_idx[lo:hi],
            ftype_idx=self.ftype_idx[lo:hi],
            senders=self.senders,
            ftype_keys=self.ftype_keys,
            frames=self._frames,
            base=self._base + lo,
        )

    def slice_us(self, start_us: float, end_us: float) -> "FrameTable":
        """Rows with timestamps in ``[start_us, end_us)`` (a view)."""
        lo, hi = np.searchsorted(self.timestamp_us, (start_us, end_us), side="left")
        return self.slice_rows(int(lo), int(hi))

    def windows(self, window_s: float) -> Iterator["FrameTable"]:
        """Tumbling detection windows as view tables.

        Same boundary semantics as :meth:`repro.traces.trace.Trace.windows`
        (both delegate to :func:`window_bounds`).
        """
        for lo, hi in window_bounds(self.timestamp_us, window_s):
            yield self.slice_rows(lo, hi)

    # -- column helpers ------------------------------------------------
    def sender_code(self, sender: MacAddress) -> int:
        """Intern code of one sender (-1 if it never transmitted)."""
        try:
            return self.senders.index(sender)
        except ValueError:
            return -1

    def mask_ftypes(self, labels: Iterable[str]) -> np.ndarray:
        """Boolean row mask selecting the given frame-type labels."""
        wanted = set(labels)
        codes = [i for i, key in enumerate(self.ftype_keys) if key in wanted]
        if not codes:
            return np.zeros(len(self), dtype=bool)
        return np.isin(self.ftype_idx, np.asarray(codes, dtype=np.int64))
