"""The :class:`Trace` container and train/validation splitting.

A trace is an immutable, time-ordered list of captured frames plus
metadata (name, encryption, device-name mapping for ground truth).
Splitting and windowing follow the paper's evaluation protocol: a
training prefix builds the reference database, the remainder is cut
into fixed detection windows (5 minutes in the paper) that each yield
one candidate signature per active device.

The frames list is treated as immutable, so the timestamp column is
extracted **once** (at construction, where it also vectorizes the
time-order check) and every cut — :meth:`Trace.slice_us`,
:meth:`Trace.split`, :meth:`Trace.windows` — is an ``np.searchsorted``
on that cached array plus a frame-list slice: O(log n) per window
instead of the former per-cut O(n) stamp-list rebuild.  Sliced traces
share the parent's column views (and its columnar
:class:`~repro.traces.table.FrameTable`, if built) without re-scanning
their frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.traces.table import FrameTable, window_bounds


@dataclass
class Trace:
    """A time-ordered 802.11 capture with ground-truth metadata."""

    frames: list[CapturedFrame]
    name: str = ""
    encrypted: bool = False
    device_names: dict[MacAddress, str] = field(default_factory=dict)
    #: Cached timestamp column (µs), shared with slices as a view.
    _stamps: np.ndarray = field(
        init=False, default=None, repr=False, compare=False
    )
    #: Cached columnar view, built lazily by :meth:`table`.
    _table: FrameTable | None = field(
        init=False, default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._stamps = np.fromiter(
            (captured.timestamp_us for captured in self.frames),
            dtype=np.float64,
            count=len(self.frames),
        )
        self._table = None
        # Same tolerance as the historical per-frame check: allow
        # sub-microsecond backwards jitter, reject real disorder.
        if self._stamps.size > 1 and float(np.min(np.diff(self._stamps))) < -1e-6:
            raise ValueError(f"trace {self.name!r} is not time-ordered")

    @classmethod
    def _view(cls, parent: "Trace", lo: int, hi: int) -> "Trace":
        """A sub-trace sharing the parent's cached columns (no re-scan)."""
        trace = cls.__new__(cls)
        trace.frames = parent.frames[lo:hi]
        trace.name = parent.name
        trace.encrypted = parent.encrypted
        trace.device_names = parent.device_names
        trace._stamps = parent._stamps[lo:hi]
        trace._table = (
            parent._table.slice_rows(lo, hi) if parent._table is not None else None
        )
        return trace

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[CapturedFrame]:
        return iter(self.frames)

    @property
    def start_us(self) -> float:
        """Timestamp of the first frame (0 for an empty trace)."""
        return float(self._stamps[0]) if self._stamps.size else 0.0

    @property
    def end_us(self) -> float:
        """Timestamp of the last frame (0 for an empty trace)."""
        return float(self._stamps[-1]) if self._stamps.size else 0.0

    @property
    def duration_s(self) -> float:
        """Observed span of the trace in seconds."""
        return (self.end_us - self.start_us) / 1e6

    def senders(self) -> set[MacAddress]:
        """All attributable senders appearing in the trace."""
        return {c.sender for c in self.frames if c.sender is not None}

    def frames_of(self, sender: MacAddress) -> list[CapturedFrame]:
        """All frames attributed to one sender."""
        return [c for c in self.frames if c.sender == sender]

    def table(self) -> FrameTable:
        """The trace as a columnar :class:`FrameTable` (built once).

        Slices taken *after* the first call share the parent table's
        columns as views, so windowing a tabled trace never re-interns.
        """
        if self._table is None:
            self._table = FrameTable.from_frames(self.frames, timestamps=self._stamps)
        return self._table

    # ------------------------------------------------------------------
    def slice_us(self, start_us: float, end_us: float) -> "Trace":
        """Sub-trace with timestamps in ``[start_us, end_us)``."""
        lo, hi = np.searchsorted(self._stamps, (start_us, end_us), side="left")
        return Trace._view(self, int(lo), int(hi))

    def split(self, training_s: float) -> "TraceSplit":
        """Split into a training prefix and a validation remainder.

        ``training_s`` is measured from the trace start, matching the
        paper's "first hour / first 20 minutes" protocol.
        """
        if training_s <= 0:
            raise ValueError(f"training duration must be positive: {training_s}")
        boundary = self.start_us + training_s * 1e6
        return TraceSplit(
            training=self.slice_us(self.start_us, boundary),
            validation=self.slice_us(boundary, self.end_us + 1.0),
        )

    def windows(self, window_s: float) -> Iterator["Trace"]:
        """Cut the trace into fixed-size detection windows.

        The last partial window is included — short candidate windows
        simply yield fewer observations and fall below the
        minimum-observation threshold naturally.  The final window is
        right-closed, so a last frame sitting exactly on a window
        boundary joins it instead of spawning a degenerate extra
        window beyond the trace span (see
        :func:`repro.traces.table.window_bounds`).
        """
        for lo, hi in window_bounds(self._stamps, window_s):
            yield Trace._view(self, lo, hi)

    # ------------------------------------------------------------------
    def to_pcap(self, path: str | Path) -> int:
        """Persist as a radiotap pcap; returns the frame count."""
        from repro.radiotap.pcap import write_trace_pcap

        return write_trace_pcap(path, self.frames)

    @classmethod
    def from_pcap(
        cls, path: str | Path, name: str = "", encrypted: bool = False
    ) -> "Trace":
        """Load a radiotap pcap from disk."""
        from repro.radiotap.pcap import read_trace_pcap

        return cls(frames=read_trace_pcap(path), name=name or str(path), encrypted=encrypted)


@dataclass(slots=True)
class TraceSplit:
    """Training/validation pair produced by :meth:`Trace.split`."""

    training: Trace
    validation: Trace
