"""The :class:`Trace` container and train/validation splitting.

A trace is an immutable, time-ordered list of captured frames plus
metadata (name, encryption, device-name mapping for ground truth).
Splitting and windowing follow the paper's evaluation protocol: a
training prefix builds the reference database, the remainder is cut
into fixed detection windows (5 minutes in the paper) that each yield
one candidate signature per active device.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress


@dataclass
class Trace:
    """A time-ordered 802.11 capture with ground-truth metadata."""

    frames: list[CapturedFrame]
    name: str = ""
    encrypted: bool = False
    device_names: dict[MacAddress, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        previous = -1.0
        for captured in self.frames:
            if captured.timestamp_us < previous - 1e-6:
                raise ValueError(f"trace {self.name!r} is not time-ordered")
            previous = captured.timestamp_us

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[CapturedFrame]:
        return iter(self.frames)

    @property
    def start_us(self) -> float:
        """Timestamp of the first frame (0 for an empty trace)."""
        return self.frames[0].timestamp_us if self.frames else 0.0

    @property
    def end_us(self) -> float:
        """Timestamp of the last frame (0 for an empty trace)."""
        return self.frames[-1].timestamp_us if self.frames else 0.0

    @property
    def duration_s(self) -> float:
        """Observed span of the trace in seconds."""
        return (self.end_us - self.start_us) / 1e6

    def senders(self) -> set[MacAddress]:
        """All attributable senders appearing in the trace."""
        return {c.sender for c in self.frames if c.sender is not None}

    def frames_of(self, sender: MacAddress) -> list[CapturedFrame]:
        """All frames attributed to one sender."""
        return [c for c in self.frames if c.sender == sender]

    # ------------------------------------------------------------------
    def slice_us(self, start_us: float, end_us: float) -> "Trace":
        """Sub-trace with timestamps in ``[start_us, end_us)``."""
        stamps = [c.timestamp_us for c in self.frames]
        lo = bisect.bisect_left(stamps, start_us)
        hi = bisect.bisect_left(stamps, end_us)
        return Trace(
            frames=self.frames[lo:hi],
            name=self.name,
            encrypted=self.encrypted,
            device_names=self.device_names,
        )

    def split(self, training_s: float) -> "TraceSplit":
        """Split into a training prefix and a validation remainder.

        ``training_s`` is measured from the trace start, matching the
        paper's "first hour / first 20 minutes" protocol.
        """
        if training_s <= 0:
            raise ValueError(f"training duration must be positive: {training_s}")
        boundary = self.start_us + training_s * 1e6
        return TraceSplit(
            training=self.slice_us(self.start_us, boundary),
            validation=self.slice_us(boundary, self.end_us + 1.0),
        )

    def windows(self, window_s: float) -> Iterator["Trace"]:
        """Cut the trace into fixed-size detection windows.

        The last partial window is included — short candidate windows
        simply yield fewer observations and fall below the
        minimum-observation threshold naturally.
        """
        if window_s <= 0:
            raise ValueError(f"window size must be positive: {window_s}")
        step = window_s * 1e6
        start = self.start_us
        while start <= self.end_us:
            yield self.slice_us(start, start + step)
            start += step

    # ------------------------------------------------------------------
    def to_pcap(self, path: str | Path) -> int:
        """Persist as a radiotap pcap; returns the frame count."""
        from repro.radiotap.pcap import write_trace_pcap

        return write_trace_pcap(path, self.frames)

    @classmethod
    def from_pcap(
        cls, path: str | Path, name: str = "", encrypted: bool = False
    ) -> "Trace":
        """Load a radiotap pcap from disk."""
        from repro.radiotap.pcap import read_trace_pcap

        return cls(frames=read_trace_pcap(path), name=name or str(path), encrypted=encrypted)


@dataclass(slots=True)
class TraceSplit:
    """Training/validation pair produced by :meth:`Trace.split`."""

    training: Trace
    validation: Trace
