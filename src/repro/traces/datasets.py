"""The four canonical evaluation traces (Table I analogues).

The paper evaluates on the Sigcomm'08 monitor capture (7 h and its
first hour) and two self-recorded office traces (7 h / 1 h, WPA).
Neither real capture can ship here, so these builders synthesise the
closest simulation analogues (DESIGN.md §2):

* **conference** — many devices, arrival/departure churn, mobility
  (changing SNR → rate switching), several APs, bursty web traffic;
  unencrypted, like the Sigcomm trace;
* **office** — fewer devices, static, strong links, encrypted (WPA),
  steadier traffic with heavier downloads.

Default sizes are *time-scaled* (≈50 min / ≈25 min instead of 7 h /
1 h) so the benchmark suite runs in minutes; the ``scale`` knob grows
device count and duration proportionally towards paper scale.  The
train/candidate split ratios follow the paper (first ~1/6 of a long
trace, first 1/3 of a short one).

Traces are deterministic per (kind, scale, seed) and memoised, since
several benchmarks share them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.simulator.channel import ChannelModel
from repro.simulator.profiles import PROFILE_LIBRARY
from repro.simulator.scenario import Scenario, StationSpec
from repro.simulator.traffic import (
    ArpProbeService,
    CbrTraffic,
    IgmpService,
    KeepAliveService,
    LlmnrService,
    MdnsService,
    SsdpService,
    WebTraffic,
)
from repro.traces.trace import Trace


@dataclass(frozen=True)
class DatasetSpec:
    """Shape of one canonical dataset."""

    name: str
    duration_s: float
    training_s: float
    device_count: int
    encrypted: bool
    mobile: bool
    churn: bool
    area_m: float
    ap_count: int
    seed: int

    @property
    def candidate_s(self) -> float:
        """Validation portion length."""
        return self.duration_s - self.training_s


def _spec(name: str, scale: float) -> DatasetSpec:
    """Materialise a canonical spec at a given scale."""
    base = {
        "conference1": DatasetSpec(
            name="conference1",
            duration_s=3000.0,
            training_s=600.0,
            device_count=34,
            encrypted=False,
            mobile=True,
            churn=True,
            area_m=80.0,
            ap_count=3,
            seed=101,
        ),
        "conference2": DatasetSpec(
            name="conference2",
            duration_s=1500.0,
            training_s=500.0,
            device_count=22,
            encrypted=False,
            mobile=True,
            churn=True,
            area_m=80.0,
            ap_count=3,
            seed=202,
        ),
        "office1": DatasetSpec(
            name="office1",
            duration_s=3000.0,
            training_s=600.0,
            device_count=22,
            encrypted=True,
            mobile=False,
            churn=False,
            area_m=30.0,
            ap_count=1,
            seed=303,
        ),
        "office2": DatasetSpec(
            name="office2",
            duration_s=1500.0,
            training_s=500.0,
            device_count=15,
            encrypted=True,
            mobile=False,
            churn=False,
            area_m=30.0,
            ap_count=1,
            seed=404,
        ),
    }[name]
    if scale == 1.0:
        return base
    return DatasetSpec(
        name=base.name,
        duration_s=base.duration_s * scale,
        training_s=base.training_s * scale,
        device_count=max(2, int(base.device_count * scale)),
        encrypted=base.encrypted,
        mobile=base.mobile,
        churn=base.churn,
        area_m=base.area_m,
        ap_count=base.ap_count,
        seed=base.seed,
    )


def _traffic_mix(rng: random.Random, office: bool) -> list:
    """A plausible per-device application/service mix."""
    sources: list = []
    roll = rng.random()
    if office and roll < 0.35:
        # Heavy user: sustained transfer.
        sources.append(
            CbrTraffic(
                # Common MTU/MSS variants seen across stacks.
                payload=rng.choice([1470, 1460, 1400]),
                interval_ms=rng.uniform(40, 140),
            )
        )
    # The web mix is a common application; the small-request size takes
    # one of a few typical values (OS/browser dependent), so devices
    # overlap but are not artificially identical.
    sources.append(
        WebTraffic(
            mean_think_s=rng.uniform(4, 20) if not office else rng.uniform(6, 30),
            mean_burst_frames=rng.uniform(6, 24),
            small_size=rng.choice([80, 88, 96, 104]),
        )
    )
    service_pool = [
        SsdpService(period_s=rng.uniform(25, 40), burst_size=rng.randint(2, 4)),
        LlmnrService(mean_period_s=rng.uniform(30, 70)),
        MdnsService(period_s=rng.uniform(45, 90)),
        IgmpService(period_s=rng.uniform(118, 130)),
        ArpProbeService(mean_period_s=rng.uniform(25, 60)),
        KeepAliveService(period_s=rng.uniform(12, 30), size=rng.choice([64, 70, 78])),
    ]
    rng.shuffle(service_pool)
    for source in service_pool[: rng.randint(1, 3)]:
        sources.append(source)
    return sources


def build_dataset(spec: DatasetSpec) -> Trace:
    """Simulate one canonical dataset into a :class:`Trace`."""
    rng = random.Random(spec.seed)
    if spec.mobile:
        # Conference hall: attendees roam across a large area, so link
        # quality (and thus rates) drifts per window and the monitor
        # misses distant high-rate frames — the paper's "changing
        # wireless conditions".
        channel = ChannelModel(
            path_loss_exponent=3.4,
            shadowing_sigma_db=3.0,
            tx_power_dbm=15.0,
        )
    else:
        # Office: static stations behind walls — stable links whose
        # quality (and converged rate) differs per device position.
        channel = ChannelModel(
            path_loss_exponent=4.0,
            shadowing_sigma_db=1.2,
            tx_power_dbm=10.0,
        )
    scenario = Scenario(
        duration_s=spec.duration_s,
        seed=spec.seed,
        encrypted=spec.encrypted,
        area_m=spec.area_m,
        channel_model=channel,
        ap_count=spec.ap_count,
    )
    for index in range(spec.device_count):
        profile = PROFILE_LIBRARY[index % len(PROFILE_LIBRARY)]
        arrival_s = 0.0
        departure_s: float | None = None
        if spec.churn:
            # Some devices arrive late or leave early, like conference
            # attendees; everyone overlaps the training window a bit.
            if rng.random() < 0.4:
                arrival_s = rng.uniform(0.0, spec.duration_s * 0.3)
            if rng.random() < 0.3:
                departure_s = rng.uniform(spec.duration_s * 0.6, spec.duration_s)
        # Conference attendees relocate between sessions: long parked
        # periods at one spot, then a walk to another — so a device's
        # training-period link quality says little about its validation
        # windows (the paper's "devices often change location").
        speed = rng.uniform(0.8, 1.5) if spec.mobile else 0.0
        downlink = []
        if not spec.mobile and rng.random() < 0.5:
            downlink = [
                WebTraffic(
                    mean_think_s=rng.uniform(6, 25),
                    mean_burst_frames=rng.uniform(10, 30),
                )
            ]
        scenario.add_station(
            StationSpec(
                name=f"{spec.name}-dev-{index:03d}",
                profile=profile,
                sources=_traffic_mix(rng, office=not spec.mobile),
                downlink=downlink,
                arrival_s=arrival_s,
                departure_s=departure_s,
                speed_mps=speed,
                pause_s=rng.uniform(400.0, 1000.0) if spec.mobile else 30.0,
            )
        )
    result = scenario.run()
    return Trace(
        frames=result.captures,
        name=spec.name,
        encrypted=spec.encrypted,
        device_names=result.station_names,
    )


_CACHE: dict[tuple[str, float], Trace] = {}


def _cached(name: str, scale: float) -> Trace:
    key = (name, scale)
    if key not in _CACHE:
        _CACHE[key] = build_dataset(_spec(name, scale))
    return _CACHE[key]


def clear_dataset_cache() -> None:
    """Drop memoised datasets (tests use this for isolation)."""
    _CACHE.clear()


def conference_trace(which: int = 1, scale: float = 1.0) -> Trace:
    """Conference 1 (long) or 2 (short) analogue."""
    if which not in (1, 2):
        raise ValueError(f"conference trace must be 1 or 2, got {which}")
    return _cached(f"conference{which}", scale)


def office_trace(which: int = 1, scale: float = 1.0) -> Trace:
    """Office 1 (long) or 2 (short) analogue."""
    if which not in (1, 2):
        raise ValueError(f"office trace must be 1 or 2, got {which}")
    return _cached(f"office{which}", scale)


def paper_datasets(scale: float = 1.0) -> dict[str, tuple[Trace, float]]:
    """All four canonical traces with their training durations.

    Returns ``{name: (trace, training_s)}`` in the paper's column
    order (Conf. 1, Conf. 2, Office 1, Office 2).
    """
    return {
        "conference1": (conference_trace(1, scale), _spec("conference1", scale).training_s),
        "conference2": (conference_trace(2, scale), _spec("conference2", scale).training_s),
        "office1": (office_trace(1, scale), _spec("office1", scale).training_s),
        "office2": (office_trace(2, scale), _spec("office2", scale).training_s),
    }
