"""The detection phase: similarity and identification tests.

Implements Section IV-B's protocol: the validation trace is cut into
detection windows (5 minutes in the paper); each window yields one
candidate signature per device active enough to clear the minimum
observation count; every candidate is matched against the reference
database (Algorithm 1) and the two tests are scored across a threshold
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase
from repro.core.matcher import batch_match_signatures
from repro.core.metrics import (
    CurvePoint,
    IdentificationCurve,
    IdentificationPoint,
    SimilarityCurve,
)
from repro.core.signature import Signature, SignatureBuilder
from repro.core.similarity import SimilarityMeasure, cosine_similarity
from repro.traces.table import window_bounds
from repro.traces.trace import Trace

#: Default threshold sweep: fine steps near the top where cosine
#: similarities concentrate.
DEFAULT_THRESHOLDS: tuple[float, ...] = tuple(
    round(t, 4) for t in [i / 200 for i in range(0, 201)]
)


@dataclass(frozen=True)
class DetectionConfig:
    """Evaluation protocol parameters (paper defaults)."""

    window_s: float = 300.0
    min_observations: int = 50
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS
    measure: SimilarityMeasure = cosine_similarity


@dataclass(slots=True)
class WindowCandidate:
    """One candidate: a device's signature in one detection window."""

    device: MacAddress
    window_index: int
    signature: Signature
    similarities: dict[MacAddress, float] = field(default_factory=dict)


def _columnar_window_candidates(
    validation: Trace, builder: SignatureBuilder, config: DetectionConfig
) -> list[WindowCandidate] | None:
    """All window candidates via the columnar fast path (DESIGN.md §6).

    Observations for the *whole* validation trace are extracted and
    binned once; each detection window is then an ``np.searchsorted``
    slice of that batch.  A window's first ``table_memory`` rows are
    excluded so a channel-clock observation never reaches back across
    the window boundary — exactly reproducing per-window extraction.
    Returns ``None`` when the parameter has no columnar extractor.
    """
    table = validation.table()
    observed = builder.parameter.observe_table(table)
    if observed is None:
        return None
    bin_idx = builder.bins.index_many(observed.values)
    memory = builder.parameter.table_memory
    candidates: list[WindowCandidate] = []
    for window_index, (lo, hi) in enumerate(
        window_bounds(table.timestamp_us, config.window_s)
    ):
        obs_lo, obs_hi = np.searchsorted(
            observed.positions, (lo + memory, hi), side="left"
        )
        signatures = builder.build_binned(
            observed.sender_idx[obs_lo:obs_hi],
            observed.ftype_idx[obs_lo:obs_hi],
            bin_idx[obs_lo:obs_hi],
            table.senders,
            table.ftype_keys,
        )
        for device, signature in signatures.items():
            candidates.append(
                WindowCandidate(
                    device=device, window_index=window_index, signature=signature
                )
            )
    return candidates


def extract_window_candidates(
    validation: Trace,
    builder: SignatureBuilder,
    database: ReferenceDatabase,
    config: DetectionConfig,
    measure: SimilarityMeasure | None = None,
    columnar: bool = True,
) -> list[WindowCandidate]:
    """Build and match all window candidates of a validation trace.

    With ``columnar=True`` (the default) signature construction runs
    on the trace's :class:`~repro.traces.table.FrameTable`: one
    vectorized observation/binning pass over the whole validation
    trace, O(log n) window cuts, one ``np.bincount`` scatter per
    window — falling back to the per-window object path only for
    parameters without a columnar extractor.  ``columnar=False``
    forces the object reference path (used by the equivalence
    benchmark).  Both paths produce bin-for-bin identical candidates.

    Candidate signatures are collected first, then matched in a single
    :func:`~repro.core.matcher.batch_match_signatures` call — for the
    cosine measure that is one matrix–matrix product per frame type
    over every (window, device) candidate at once.
    """
    chosen = measure if measure is not None else config.measure
    candidates: list[WindowCandidate] | None = None
    if columnar:
        candidates = _columnar_window_candidates(validation, builder, config)
    if candidates is None:
        candidates = []
        for window_index, window in enumerate(validation.windows(config.window_s)):
            for device, signature in builder.build(window.frames).items():
                candidates.append(
                    WindowCandidate(
                        device=device, window_index=window_index, signature=signature
                    )
                )
    scores = batch_match_signatures(
        [candidate.signature for candidate in candidates], database, chosen
    )
    devices = database.devices
    for candidate, row in zip(candidates, scores):
        candidate.similarities = dict(zip(devices, row.tolist()))
    return candidates


@dataclass
class SimilarityOutcome:
    """Similarity-test result: the full curve plus bookkeeping."""

    curve: SimilarityCurve
    known_candidates: int
    total_candidates: int

    @property
    def auc(self) -> float:
        """Area under the similarity curve (Table II)."""
        return self.curve.auc


def evaluate_similarity(
    candidates: list[WindowCandidate],
    database: ReferenceDatabase,
    config: DetectionConfig,
) -> SimilarityOutcome:
    """Score the similarity test across the threshold sweep.

    TPR: fraction of known candidates whose returned set (similarity ≥
    T) contains the true device.  FPR: wrong references returned,
    normalised by the N−1 wrong references available per candidate.
    """
    reference_count = len(database)
    known = [c for c in candidates if c.device in database]
    points: list[CurvePoint] = []
    for threshold in config.thresholds:
        true_positives = 0
        false_positives = 0
        false_capacity = 0
        for candidate in known:
            returned = {
                device
                for device, sim in candidate.similarities.items()
                if sim >= threshold
            }
            if candidate.device in returned:
                true_positives += 1
            false_positives += len(returned - {candidate.device})
            false_capacity += max(reference_count - 1, 1)
        if not known:
            continue
        points.append(
            CurvePoint(
                threshold=threshold,
                tpr=true_positives / len(known),
                fpr=false_positives / false_capacity,
            )
        )
    return SimilarityOutcome(
        curve=SimilarityCurve(points=points),
        known_candidates=len(known),
        total_candidates=len(candidates),
    )


@dataclass
class IdentificationOutcome:
    """Identification-test result across the acceptance sweep."""

    curve: IdentificationCurve
    known_candidates: int
    total_candidates: int

    def ratio_at_fpr(self, fpr_budget: float) -> float:
        """Identification ratio at an FPR budget (Table III)."""
        return self.curve.ratio_at_fpr(fpr_budget)


def evaluate_identification(
    candidates: list[WindowCandidate],
    database: ReferenceDatabase,
    config: DetectionConfig,
) -> IdentificationOutcome:
    """Score the identification test across acceptance thresholds.

    A candidate is *identified* as the argmax reference if that best
    similarity clears the acceptance threshold.  The identification
    ratio counts known candidates identified correctly; the FPR counts
    candidates (known or not) identified as a wrong device.
    """
    known_total = sum(1 for c in candidates if c.device in database)
    points: list[IdentificationPoint] = []
    prepared: list[tuple[WindowCandidate, MacAddress | None, float]] = []
    for candidate in candidates:
        best_device: MacAddress | None = None
        best_sim = float("-inf")
        for device, sim in candidate.similarities.items():
            if sim > best_sim:
                best_device, best_sim = device, sim
        prepared.append((candidate, best_device, best_sim))

    for threshold in config.thresholds:
        correct = 0
        wrong = 0
        for candidate, best_device, best_sim in prepared:
            if best_device is None or best_sim < threshold:
                continue  # rejected: no identification claimed
            if best_device == candidate.device:
                correct += 1
            else:
                wrong += 1
        if not candidates:
            continue
        points.append(
            IdentificationPoint(
                threshold=threshold,
                identification_ratio=correct / known_total if known_total else 0.0,
                fpr=wrong / len(candidates),
            )
        )
    return IdentificationOutcome(
        curve=IdentificationCurve(points=points),
        known_candidates=known_total,
        total_candidates=len(candidates),
    )
