"""Accuracy metrics: similarity curves, AUC and identification ratios.

Section IV-B defines the multi-class analogue of ROC analysis:

* **similarity test** — TPR is the fraction of candidate windows
  (whose device is known to the database) for which the returned set
  contains the true device; FPR is the fraction of *wrong* reference
  devices returned, normalised by the wrong devices available (N−1 per
  window).  Plotting TPR against FPR across thresholds gives the
  similarity curve; points may fall below the diagonal (the paper's
  lower-right-triangle remark) because the classes are per-device.
* **AUC** — trapezoidal area under the similarity curve, the "global
  probability of correct classification" of Table II.
* **identification test** — the argmax match, accepted only when its
  similarity clears a threshold; the identification ratio at a given
  FPR budget is what Table III reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class CurvePoint:
    """One threshold's operating point."""

    threshold: float
    tpr: float
    fpr: float


@dataclass
class SimilarityCurve:
    """A swept TPR-vs-FPR curve for one parameter and one trace."""

    points: list[CurvePoint]

    def __post_init__(self) -> None:
        # Sort by FPR for well-defined integration and lookup.
        self.points.sort(key=lambda p: (p.fpr, p.tpr))

    @property
    def auc(self) -> float:
        """Area under the curve (Table II's metric)."""
        return area_under_curve(
            [p.fpr for p in self.points], [p.tpr for p in self.points]
        )

    def tpr_at_fpr(self, fpr_budget: float) -> float:
        """Best TPR achievable with FPR ≤ ``fpr_budget``."""
        best = 0.0
        for point in self.points:
            if point.fpr <= fpr_budget + 1e-12:
                best = max(best, point.tpr)
        return best

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(fpr, tpr) arrays for plotting."""
        return (
            np.array([p.fpr for p in self.points]),
            np.array([p.tpr for p in self.points]),
        )


def area_under_curve(fpr: list[float], tpr: list[float]) -> float:
    """Trapezoidal AUC with (0,0)/(1,1) anchoring.

    The measured operating points rarely reach the exact corners; the
    curve is anchored there so AUCs are comparable across traces, as in
    standard ROC practice.
    """
    if len(fpr) != len(tpr):
        raise ValueError("fpr and tpr must have equal length")
    pairs = sorted(zip([0.0, *fpr, 1.0], [0.0, *tpr, 1.0]))
    xs = np.array([p[0] for p in pairs])
    ys = np.array([p[1] for p in pairs])
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(ys, xs))


@dataclass(frozen=True, slots=True)
class IdentificationPoint:
    """One acceptance threshold's identification operating point."""

    threshold: float
    identification_ratio: float
    fpr: float


@dataclass
class IdentificationCurve:
    """Identification ratio vs FPR across acceptance thresholds."""

    points: list[IdentificationPoint]

    def ratio_at_fpr(self, fpr_budget: float) -> float:
        """Best identification ratio with FPR ≤ ``fpr_budget``
        (how Table III's "ratio at FPR 0.01 / 0.1" is read)."""
        best = 0.0
        for point in self.points:
            if point.fpr <= fpr_budget + 1e-12:
                best = max(best, point.identification_ratio)
        return best
