"""Multi-parameter fusion — the paper's stated future work.

Section VIII: "future work should also investigate whether the
fingerprinting method can be improved by combining several network
parameters."  :class:`FusionMatcher` does exactly that: it maintains
one signature per parameter per device and combines per-parameter
Algorithm 1 scores with configurable fusion weights.  The extension
benchmark compares fused fingerprints against the best single
parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase
from repro.core.matcher import match_signature
from repro.core.parameters import NetworkParameter
from repro.core.signature import Signature, SignatureBuilder
from repro.core.similarity import SimilarityMeasure, cosine_similarity


@dataclass
class FusedSignature:
    """One device's signatures across several parameters."""

    per_parameter: dict[str, Signature] = field(default_factory=dict)

    @property
    def parameter_names(self) -> set[str]:
        """Parameters this fused signature covers."""
        return set(self.per_parameter)


class FusionMatcher:
    """Learn and match multi-parameter fingerprints.

    ``weights`` assigns each parameter's contribution to the combined
    score; they are normalised internally, so any positive scale works.
    """

    def __init__(
        self,
        parameters: list[NetworkParameter],
        weights: dict[str, float] | None = None,
        min_observations: int = 50,
        measure: SimilarityMeasure = cosine_similarity,
    ) -> None:
        if not parameters:
            raise ValueError("fusion needs at least one parameter")
        self.parameters = parameters
        raw = weights if weights is not None else {p.name: 1.0 for p in parameters}
        missing = {p.name for p in parameters} - set(raw)
        if missing:
            raise ValueError(f"missing fusion weights for: {sorted(missing)}")
        total = sum(raw[p.name] for p in parameters)
        if total <= 0:
            raise ValueError("fusion weights must sum to a positive value")
        self.weights = {p.name: raw[p.name] / total for p in parameters}
        self.builders = {
            p.name: SignatureBuilder(p, min_observations=min_observations)
            for p in parameters
        }
        self.measure = measure
        self._databases: dict[str, ReferenceDatabase] = {}

    def learn(self, frames: list[CapturedFrame]) -> None:
        """Learning phase over all parameters."""
        self._databases = {
            name: ReferenceDatabase.from_training(builder, frames)
            for name, builder in self.builders.items()
        }

    @property
    def devices(self) -> set[MacAddress]:
        """Devices known to at least one per-parameter database."""
        known: set[MacAddress] = set()
        for database in self._databases.values():
            known.update(database.devices)
        return known

    def extract(self, frames: list[CapturedFrame]) -> dict[MacAddress, FusedSignature]:
        """Candidate fused signatures from a detection window."""
        fused: dict[MacAddress, FusedSignature] = {}
        for name, builder in self.builders.items():
            for device, signature in builder.build(frames).items():
                fused.setdefault(device, FusedSignature()).per_parameter[name] = signature
        return fused

    def match(self, candidate: FusedSignature) -> dict[MacAddress, float]:
        """Combined similarity vector across all parameters."""
        if not self._databases:
            raise RuntimeError("FusionMatcher.match called before learn()")
        combined: dict[MacAddress, float] = {
            device: 0.0 for device in self.devices
        }
        for name, signature in candidate.per_parameter.items():
            database = self._databases.get(name)
            if database is None:
                continue
            scores = match_signature(signature, database, self.measure)
            weight = self.weights[name]
            for device, score in scores.items():
                combined[device] = combined.get(device, 0.0) + weight * score
        return combined

    def identify(self, candidate: FusedSignature) -> tuple[MacAddress | None, float]:
        """Argmax identification over the combined scores."""
        scores = self.match(candidate)
        winner: MacAddress | None = None
        best = float("-inf")
        for device, score in scores.items():
            if score > best:
                winner, best = device, score
        if winner is None:
            return None, 0.0
        return winner, best
