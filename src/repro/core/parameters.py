"""The five network parameters of Section III.

Each parameter turns a captured frame sequence into per-sender
observations ``(sender, frame type, value)`` following the paper's
Section IV-A semantics:

* frames whose sender a passive monitor cannot attribute (ACK, CTS)
  produce **no observation** — their measured value is dropped — but
  they still advance the channel clock (``t_{i-1}``) for the
  time-derived parameters, exactly as in the paper's Figure 1 example;
* ``rate_i`` and ``size_i`` come straight from the Radiotap header;
* ``tt_i = size_i / rate_i`` (µs) is the paper's simplified
  transmission time;
* ``i_i = t_i − t_{i−1}`` is the inter-arrival between consecutive
  end-of-receptions on the channel, regardless of sender;
* ``mtime_i = (t_i − tt_i) − t_{i−1}`` is the idle gap the sender
  waited between the previous frame's end and its own frame's start.

All parameters also accept a *default binning* used throughout the
evaluation (ablated in ``benchmarks/test_ablation_bin_width.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.dot11.phy import PAPER_RATE_AXIS, paper_transmission_time_us
from repro.core.histogram import BinSpec, CategoricalBins, UniformBins


@dataclass(frozen=True, slots=True)
class Observation:
    """One attributed measurement."""

    sender: MacAddress
    ftype_key: str
    value: float


class NetworkParameter:
    """Base class: a passively measurable per-frame quantity."""

    #: Short identifier used in tables and the CLI.
    name: str = "abstract"
    #: Human-readable label matching the paper's terminology.
    label: str = "abstract parameter"

    def default_bins(self) -> BinSpec:
        """Binning used by the evaluation unless overridden."""
        raise NotImplementedError

    def observations(
        self, frames: Iterable[CapturedFrame]
    ) -> Iterator[Observation]:
        """Yield attributed observations from a frame sequence."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class TransmissionRate(NetworkParameter):
    """``p_i = rate_i`` — the Radiotap-reported transmission rate."""

    name = "rate"
    label = "Transmission rate"

    def default_bins(self) -> BinSpec:
        return CategoricalBins(categories=tuple(float(r) for r in PAPER_RATE_AXIS))

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        for captured in frames:
            sender = captured.sender
            if sender is None:
                continue
            yield Observation(sender, captured.ftype_key, captured.rate_mbps)


class FrameSize(NetworkParameter):
    """``p_i = size_i`` — the full MAC-layer frame size in bytes."""

    name = "size"
    label = "Frame size"

    def default_bins(self) -> BinSpec:
        return UniformBins(lo=0.0, hi=2400.0, width=32.0)

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        for captured in frames:
            sender = captured.sender
            if sender is None:
                continue
            yield Observation(sender, captured.ftype_key, float(captured.size))


class TransmissionTime(NetworkParameter):
    """``tt_i = size_i / rate_i`` in microseconds (Section IV-A)."""

    name = "txtime"
    label = "Transmission time"

    def default_bins(self) -> BinSpec:
        # The range must reach size/rate of a full frame at 1 Mbps
        # (~19 ms), otherwise low-rate broadcast traffic piles into the
        # clip bin and washes out device differences.
        return UniformBins(lo=0.0, hi=20000.0, width=20.0)

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        for captured in frames:
            sender = captured.sender
            if sender is None:
                continue
            value = paper_transmission_time_us(captured.size, captured.rate_mbps)
            yield Observation(sender, captured.ftype_key, value)


class InterArrivalTime(NetworkParameter):
    """``i_i = t_i − t_{i−1}`` between consecutive end-of-receptions.

    The previous frame may come from *any* sender (or be an
    unattributable ACK/CTS); only the attribution of the value follows
    the current frame's sender.  The first frame of a capture yields no
    observation.
    """

    name = "interarrival"
    label = "Inter-arrival time"

    def default_bins(self) -> BinSpec:
        # The paper's histograms span 0-2500 µs (Figure 2); longer
        # idle-tail gaps are dropped rather than clipped — a clip bin
        # would dominate every lightly-loaded device's signature and
        # make them mutually indistinguishable.
        return UniformBins(lo=0.0, hi=2500.0, width=50.0, drop_outside=True)

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        previous_t: float | None = None
        for captured in frames:
            t_i = captured.timestamp_us
            if previous_t is not None and captured.sender is not None:
                yield Observation(
                    captured.sender, captured.ftype_key, t_i - previous_t
                )
            previous_t = t_i


class MediumAccessTime(NetworkParameter):
    """``mtime_i = (t_i − tt_i) − t_{i−1}`` — the sender's idle wait.

    The frame's start-of-reception is estimated as ``t_i − tt_i`` using
    the paper's simplified transmission time; subtracting the previous
    end-of-reception yields how long the sender left the medium idle
    (DIFS + backoff slots, SIFS inside protected exchanges).
    """

    name = "access"
    label = "Medium access time"

    def default_bins(self) -> BinSpec:
        # Same tail treatment as the inter-arrival time: only waits in
        # the contention range carry device information.
        return UniformBins(lo=0.0, hi=1000.0, width=20.0, drop_outside=True)

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        previous_t: float | None = None
        for captured in frames:
            t_i = captured.timestamp_us
            if previous_t is not None and captured.sender is not None:
                tt_i = paper_transmission_time_us(captured.size, captured.rate_mbps)
                yield Observation(
                    captured.sender, captured.ftype_key, (t_i - tt_i) - previous_t
                )
            previous_t = t_i


#: The paper's five parameters, in its Section III order.
ALL_PARAMETERS: tuple[NetworkParameter, ...] = (
    TransmissionRate(),
    FrameSize(),
    MediumAccessTime(),
    TransmissionTime(),
    InterArrivalTime(),
)


def parameter_by_name(name: str) -> NetworkParameter:
    """Look up one of the five parameters by its short name."""
    for parameter in ALL_PARAMETERS:
        if parameter.name == name:
            return parameter
    raise KeyError(f"unknown network parameter: {name!r}")
