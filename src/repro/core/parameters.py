"""The five network parameters of Section III.

Each parameter turns a captured frame sequence into per-sender
observations ``(sender, frame type, value)`` following the paper's
Section IV-A semantics:

* frames whose sender a passive monitor cannot attribute (ACK, CTS)
  produce **no observation** — their measured value is dropped — but
  they still advance the channel clock (``t_{i-1}``) for the
  time-derived parameters, exactly as in the paper's Figure 1 example;
* ``rate_i`` and ``size_i`` come straight from the Radiotap header;
* ``tt_i = size_i / rate_i`` (µs) is the paper's simplified
  transmission time;
* ``i_i = t_i − t_{i−1}`` is the inter-arrival between consecutive
  end-of-receptions on the channel, regardless of sender;
* ``mtime_i = (t_i − tt_i) − t_{i−1}`` is the idle gap the sender
  waited between the previous frame's end and its own frame's start.

All parameters also accept a *default binning* used throughout the
evaluation (ablated in ``benchmarks/test_ablation_bin_width.py``).

Each parameter has three equivalent extractors: the scalar reference
:meth:`~NetworkParameter.observations`, the O(1)-per-frame streaming
:meth:`~NetworkParameter.online`, and the vectorized
:meth:`~NetworkParameter.observe_table` over a columnar
:class:`~repro.traces.table.FrameTable` (the hot batch path; the
time-derived parameters become shifted-array subtractions under a
sender mask — DESIGN.md §6).  Equivalence is property-pinned in
``tests/test_parameters.py`` and ``tests/test_table.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.dot11.phy import PAPER_RATE_AXIS, paper_transmission_time_us
from repro.core.histogram import BinSpec, CategoricalBins, UniformBins
from repro.traces.table import FrameTable, TableObservations


@dataclass(frozen=True, slots=True)
class Observation:
    """One attributed measurement."""

    sender: MacAddress
    ftype_key: str
    value: float


class NetworkParameter:
    """Base class: a passively measurable per-frame quantity."""

    #: Short identifier used in tables and the CLI.
    name: str = "abstract"
    #: Human-readable label matching the paper's terminology.
    label: str = "abstract parameter"
    #: Frames of channel memory an observation consumes (0 for pure
    #: per-frame values, 1 for the ``t_{i-1}``-derived parameters).
    #: The detection fast path uses this to slice a whole-trace
    #: observation batch into per-window batches: an observation at
    #: table row ``p`` is valid for a window starting at row ``lo``
    #: iff ``p >= lo + table_memory`` (DESIGN.md §6).
    table_memory: int = 0

    def default_bins(self) -> BinSpec:
        """Binning used by the evaluation unless overridden."""
        raise NotImplementedError

    def observations(
        self, frames: Iterable[CapturedFrame]
    ) -> Iterator[Observation]:
        """Yield attributed observations from a frame sequence."""
        raise NotImplementedError

    def observe_table(self, table: FrameTable) -> TableObservations | None:
        """Vectorized observation extraction over a columnar table.

        Returns the full observation batch as aligned arrays — the
        same (sender, frame type, value) sequence :meth:`observations`
        yields on ``table.to_frames()``, bit for bit — or ``None`` when
        the parameter has no columnar implementation, in which case
        callers fall back to the object path.  The five built-in
        parameters all vectorize.
        """
        return None

    def online(self) -> "ObservationStream":
        """A stateful frame-by-frame extractor (streaming engine).

        Feeding frames one at a time through :meth:`ObservationStream.push`
        yields exactly the observation sequence :meth:`observations`
        produces on the whole list.  The five built-in parameters
        override this with O(1)-per-frame extractors; the base
        implementation works for any causal parameter with at most one
        frame of memory (see :class:`ObservationStream`).
        """
        return ObservationStream(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ObservationStream:
    """Incremental observation extraction: one frame per :meth:`push`.

    The generic implementation exploits that every Section III
    parameter is *causal with one frame of memory* — the observations a
    frame contributes depend only on that frame and its predecessor
    (the channel clock ``t_{i-1}``).  Each push therefore re-runs the
    batch extractor over the ``(previous, current)`` pair and drops the
    prefix the previous frame alone would have produced.  Parameters
    with longer memory must override :meth:`NetworkParameter.online`.
    """

    __slots__ = ("_parameter", "_previous")

    def __init__(self, parameter: NetworkParameter) -> None:
        self._parameter = parameter
        self._previous: CapturedFrame | None = None

    def push(self, frame: CapturedFrame) -> tuple[Observation, ...]:
        """Observations this frame contributes, in batch order."""
        if self._previous is None:
            produced = tuple(self._parameter.observations([frame]))
        else:
            prefix = sum(1 for _ in self._parameter.observations([self._previous]))
            produced = tuple(
                self._parameter.observations([self._previous, frame])
            )[prefix:]
        self._previous = frame
        return produced

    def push_table(
        self, table: FrameTable, lo: int, hi: int
    ) -> TableObservations | None:
        """Vectorized push of chunk rows ``[lo, hi)`` (chunked streaming).

        Returns the observation batch those rows contribute given the
        stream's current state — exactly what feeding each backing
        frame through :meth:`push` would yield, with ``positions`` in
        the chunk's row coordinates — and advances the state past row
        ``hi - 1``.  Returns ``None`` when no columnar fast path
        exists, in which case callers fall back to per-frame pushes.
        """
        return None

    def export_state(self) -> dict:
        """Checkpointable state (see :mod:`repro.persistence.checkpoint`).

        The generic stream's whole memory is its predecessor frame;
        the checkpoint layer knows how to serialise a
        :class:`~repro.dot11.capture.CapturedFrame` it finds in here.
        """
        return {"previous_frame": self._previous}

    def restore_state(self, state: dict) -> None:
        """Re-arm the stream from :meth:`export_state` output."""
        self._previous = state.get("previous_frame")


class _PerFrameStream(ObservationStream):
    """O(1) stream for values that are pure functions of one frame."""

    __slots__ = ("_value",)

    def __init__(
        self, parameter: NetworkParameter, value: "Callable[[CapturedFrame], float]"
    ) -> None:
        super().__init__(parameter)
        self._value = value

    def push(self, frame: CapturedFrame) -> tuple[Observation, ...]:
        sender = frame.sender
        if sender is None:
            return ()
        return (Observation(sender, frame.ftype_key, self._value(frame)),)

    def push_table(
        self, table: FrameTable, lo: int, hi: int
    ) -> TableObservations | None:
        # Pure per-frame values carry no state: the chunk slice is the
        # whole story, and the parameter's vectorized extractor is
        # already bit-identical to the scalar value function.
        observed = self._parameter.observe_table(table.slice_rows(lo, hi))
        if observed is None:
            return None
        return TableObservations(
            sender_idx=observed.sender_idx,
            ftype_idx=observed.ftype_idx,
            values=observed.values,
            positions=observed.positions + lo,
        )

    def export_state(self) -> dict:
        return {}  # pure per-frame function: nothing to remember

    def restore_state(self, state: dict) -> None:
        pass


class _ChannelClockStream(ObservationStream):
    """O(1) stream for the time-derived parameters.

    Tracks the previous end-of-reception ``t_{i-1}`` across *all*
    frames (unattributable ACK/CTS advance the clock without yielding
    an observation, as in the batch extractors).
    """

    __slots__ = ("_value", "_table_value", "_previous_t")

    def __init__(
        self,
        parameter: NetworkParameter,
        value: "Callable[[CapturedFrame, float], float]",
        table_value: "Callable[[FrameTable, int, float], float]",
    ) -> None:
        """``table_value(table, row, previous_t)`` is the columnar twin
        of ``value`` — same float64 arithmetic over the table columns,
        so frame-less tables (wire-decoded, shard-partitioned) take the
        fast path too."""
        super().__init__(parameter)
        self._value = value
        self._table_value = table_value
        self._previous_t: float | None = None

    def push(self, frame: CapturedFrame) -> tuple[Observation, ...]:
        previous_t = self._previous_t
        self._previous_t = frame.timestamp_us
        if previous_t is None or frame.sender is None:
            return ()
        return (
            Observation(
                frame.sender, frame.ftype_key, self._value(frame, previous_t)
            ),
        )

    def push_table(
        self, table: FrameTable, lo: int, hi: int
    ) -> TableObservations | None:
        observed = self._parameter.observe_table(table.slice_rows(lo, hi))
        if observed is None:
            return None
        previous_t = self._previous_t
        self._previous_t = float(table.timestamp_us[hi - 1])
        sender_idx = observed.sender_idx
        ftype_idx = observed.ftype_idx
        values = observed.values
        positions = observed.positions + lo
        if previous_t is not None and table.sender_idx[lo] >= 0:
            # The slice's first row observes against the carried
            # channel clock — the one value slice-local extraction
            # cannot see.  Computed from the table columns (same
            # float64 arithmetic as the scalar value function), so
            # frame-less tables work and the result stays bit-identical
            # to the per-frame path.
            value = self._table_value(table, lo, previous_t)
            sender_idx = np.concatenate(([table.sender_idx[lo]], sender_idx))
            ftype_idx = np.concatenate(([table.ftype_idx[lo]], ftype_idx))
            values = np.concatenate(([value], values))
            positions = np.concatenate(([lo], positions))
        return TableObservations(sender_idx, ftype_idx, values, positions)

    def export_state(self) -> dict:
        return {"previous_t": self._previous_t}  # the channel clock

    def restore_state(self, state: dict) -> None:
        self._previous_t = state.get("previous_t")


def _attributable_positions(table: FrameTable) -> np.ndarray:
    """Rows that can yield an observation (sender known)."""
    return np.flatnonzero(table.sender_idx >= 0)


def _clocked_positions(table: FrameTable) -> np.ndarray:
    """Rows yielding a time-derived observation: attributable rows
    with a predecessor on the channel (the first row has no
    ``t_{i-1}``; ACK/CTS rows advance the clock but are masked out)."""
    positions = np.flatnonzero(table.sender_idx[1:] >= 0)
    return positions + 1


def _gathered(
    table: FrameTable, positions: np.ndarray, values: np.ndarray
) -> TableObservations:
    return TableObservations(
        sender_idx=table.sender_idx[positions],
        ftype_idx=table.ftype_idx[positions],
        values=values,
        positions=positions,
    )


class TransmissionRate(NetworkParameter):
    """``p_i = rate_i`` — the Radiotap-reported transmission rate."""

    name = "rate"
    label = "Transmission rate"

    def default_bins(self) -> BinSpec:
        return CategoricalBins(categories=tuple(float(r) for r in PAPER_RATE_AXIS))

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        for captured in frames:
            sender = captured.sender
            if sender is None:
                continue
            yield Observation(sender, captured.ftype_key, captured.rate_mbps)

    def observe_table(self, table: FrameTable) -> TableObservations:
        positions = _attributable_positions(table)
        return _gathered(table, positions, table.rate_mbps[positions])

    def online(self) -> ObservationStream:
        return _PerFrameStream(self, lambda captured: captured.rate_mbps)


class FrameSize(NetworkParameter):
    """``p_i = size_i`` — the full MAC-layer frame size in bytes."""

    name = "size"
    label = "Frame size"

    def default_bins(self) -> BinSpec:
        return UniformBins(lo=0.0, hi=2400.0, width=32.0)

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        for captured in frames:
            sender = captured.sender
            if sender is None:
                continue
            yield Observation(sender, captured.ftype_key, float(captured.size))

    def observe_table(self, table: FrameTable) -> TableObservations:
        positions = _attributable_positions(table)
        return _gathered(table, positions, table.size[positions])

    def online(self) -> ObservationStream:
        return _PerFrameStream(self, lambda captured: float(captured.size))


class TransmissionTime(NetworkParameter):
    """``tt_i = size_i / rate_i`` in microseconds (Section IV-A)."""

    name = "txtime"
    label = "Transmission time"

    def default_bins(self) -> BinSpec:
        # The range must reach size/rate of a full frame at 1 Mbps
        # (~19 ms), otherwise low-rate broadcast traffic piles into the
        # clip bin and washes out device differences.
        return UniformBins(lo=0.0, hi=20000.0, width=20.0)

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        for captured in frames:
            sender = captured.sender
            if sender is None:
                continue
            value = paper_transmission_time_us(captured.size, captured.rate_mbps)
            yield Observation(sender, captured.ftype_key, value)

    def observe_table(self, table: FrameTable) -> TableObservations:
        # size * 8 / rate over float64 columns is bit-identical to the
        # scalar paper_transmission_time_us (sizes are exact in float64).
        positions = _attributable_positions(table)
        values = table.size[positions] * 8.0 / table.rate_mbps[positions]
        return _gathered(table, positions, values)

    def online(self) -> ObservationStream:
        return _PerFrameStream(
            self,
            lambda captured: paper_transmission_time_us(
                captured.size, captured.rate_mbps
            ),
        )


class InterArrivalTime(NetworkParameter):
    """``i_i = t_i − t_{i−1}`` between consecutive end-of-receptions.

    The previous frame may come from *any* sender (or be an
    unattributable ACK/CTS); only the attribution of the value follows
    the current frame's sender.  The first frame of a capture yields no
    observation.
    """

    name = "interarrival"
    label = "Inter-arrival time"
    table_memory = 1

    def default_bins(self) -> BinSpec:
        # The paper's histograms span 0-2500 µs (Figure 2); longer
        # idle-tail gaps are dropped rather than clipped — a clip bin
        # would dominate every lightly-loaded device's signature and
        # make them mutually indistinguishable.
        return UniformBins(lo=0.0, hi=2500.0, width=50.0, drop_outside=True)

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        previous_t: float | None = None
        for captured in frames:
            t_i = captured.timestamp_us
            if previous_t is not None and captured.sender is not None:
                yield Observation(
                    captured.sender, captured.ftype_key, t_i - previous_t
                )
            previous_t = t_i

    def observe_table(self, table: FrameTable) -> TableObservations:
        # The channel clock vectorizes as a shifted-array subtraction:
        # t_{i-1} is simply the timestamp column shifted by one row,
        # because *every* frame (attributable or not) advances it.
        positions = _clocked_positions(table)
        t = table.timestamp_us
        return _gathered(table, positions, t[positions] - t[positions - 1])

    def online(self) -> ObservationStream:
        return _ChannelClockStream(
            self,
            lambda captured, previous_t: captured.timestamp_us - previous_t,
            lambda table, row, previous_t: (
                float(table.timestamp_us[row]) - previous_t
            ),
        )


class MediumAccessTime(NetworkParameter):
    """``mtime_i = (t_i − tt_i) − t_{i−1}`` — the sender's idle wait.

    The frame's start-of-reception is estimated as ``t_i − tt_i`` using
    the paper's simplified transmission time; subtracting the previous
    end-of-reception yields how long the sender left the medium idle
    (DIFS + backoff slots, SIFS inside protected exchanges).
    """

    name = "access"
    label = "Medium access time"
    table_memory = 1

    def default_bins(self) -> BinSpec:
        # Same tail treatment as the inter-arrival time: only waits in
        # the contention range carry device information.
        return UniformBins(lo=0.0, hi=1000.0, width=20.0, drop_outside=True)

    def observations(self, frames: Iterable[CapturedFrame]) -> Iterator[Observation]:
        previous_t: float | None = None
        for captured in frames:
            t_i = captured.timestamp_us
            if previous_t is not None and captured.sender is not None:
                tt_i = paper_transmission_time_us(captured.size, captured.rate_mbps)
                yield Observation(
                    captured.sender, captured.ftype_key, (t_i - tt_i) - previous_t
                )
            previous_t = t_i

    def observe_table(self, table: FrameTable) -> TableObservations:
        # Same shift-and-mask as the inter-arrival time, with the
        # start-of-reception estimate t_i − tt_i in place of t_i; the
        # operation order matches the scalar path bit for bit.
        positions = _clocked_positions(table)
        t = table.timestamp_us
        tt = table.size[positions] * 8.0 / table.rate_mbps[positions]
        values = (t[positions] - tt) - t[positions - 1]
        return _gathered(table, positions, values)

    def online(self) -> ObservationStream:
        def value(captured: CapturedFrame, previous_t: float) -> float:
            tt_i = paper_transmission_time_us(captured.size, captured.rate_mbps)
            return (captured.timestamp_us - tt_i) - previous_t

        def table_value(table: FrameTable, row: int, previous_t: float) -> float:
            tt_i = float(table.size[row]) * 8.0 / float(table.rate_mbps[row])
            return (float(table.timestamp_us[row]) - tt_i) - previous_t

        return _ChannelClockStream(self, value, table_value)


#: The paper's five parameters, in its Section III order.
ALL_PARAMETERS: tuple[NetworkParameter, ...] = (
    TransmissionRate(),
    FrameSize(),
    MediumAccessTime(),
    TransmissionTime(),
    InterArrivalTime(),
)


def parameter_by_name(name: str) -> NetworkParameter:
    """Look up one of the five parameters by its short name."""
    for parameter in ALL_PARAMETERS:
        if parameter.name == name:
            return parameter
    raise KeyError(f"unknown network parameter: {name!r}")
