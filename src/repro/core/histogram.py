"""Histogram binning and percentage-frequency distributions.

Signature construction (Section IV-A) converts raw observations into a
percentage frequency distribution per frame type: bin ``b_j``'s value
is ``o_j / |P^ftype(s)|``.  Two binning families cover the paper's
parameters: uniform-width bins over a range (times, sizes) and
categorical bins (the discrete 802.11 rate set).

Out-of-range values are **clipped into the edge bins** by default so a
heavy tail (e.g. very long inter-arrivals) still contributes mass
instead of silently vanishing; ``drop_outside=True`` reproduces strict
range-limited histograms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class BinSpec:
    """Maps raw values onto bin indices."""

    #: Number of bins this spec produces.
    bin_count: int = 0

    def index(self, value: float) -> int | None:
        """Bin index for ``value`` (``None`` = discard the value)."""
        raise NotImplementedError

    def bin_label(self, index: int) -> str:
        """Human-readable label of one bin (for rendering)."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformBins(BinSpec):
    """``k = (hi - lo) / width`` equal-width bins over ``[lo, hi)``."""

    lo: float
    hi: float
    width: float
    drop_outside: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"bin width must be positive: {self.width}")
        if self.hi <= self.lo:
            raise ValueError(f"empty bin range: [{self.lo}, {self.hi})")
        object.__setattr__(
            self, "bin_count", int(np.ceil((self.hi - self.lo) / self.width))
        )

    bin_count: int = field(init=False, default=0)

    def index(self, value: float) -> int | None:
        if value < self.lo:
            return None if self.drop_outside else 0
        if value >= self.hi:
            return None if self.drop_outside else self.bin_count - 1
        return int((value - self.lo) / self.width)

    def bin_label(self, index: int) -> str:
        low = self.lo + index * self.width
        return f"[{low:g},{min(low + self.width, self.hi):g})"


@dataclass(frozen=True)
class CategoricalBins(BinSpec):
    """One bin per discrete category (e.g. the 802.11 rate set)."""

    categories: tuple[float, ...]
    tolerance: float = 1e-6

    def __post_init__(self) -> None:
        if not self.categories:
            raise ValueError("at least one category required")
        object.__setattr__(self, "bin_count", len(self.categories))

    bin_count: int = field(init=False, default=0)

    def index(self, value: float) -> int | None:
        for position, category in enumerate(self.categories):
            if abs(value - category) <= self.tolerance:
                return position
        return None

    def bin_label(self, index: int) -> str:
        return f"{self.categories[index]:g}"


class Histogram:
    """A mutable observation accumulator over one bin spec."""

    __slots__ = ("spec", "counts", "total")

    def __init__(self, spec: BinSpec) -> None:
        self.spec = spec
        self.counts = np.zeros(spec.bin_count, dtype=np.int64)
        self.total = 0

    def add(self, value: float) -> bool:
        """Record one observation; returns False if it was discarded."""
        index = self.spec.index(value)
        if index is None:
            return False
        self.counts[index] += 1
        self.total += 1
        return True

    def add_many(self, values: list[float]) -> int:
        """Record many observations; returns how many were kept."""
        kept = 0
        for value in values:
            if self.add(value):
                kept += 1
        return kept

    def frequencies(self) -> np.ndarray:
        """Percentage frequency distribution ``P_j = o_j / total``.

        An empty histogram yields the all-zero vector.
        """
        if self.total == 0:
            return np.zeros(self.spec.bin_count, dtype=np.float64)
        return self.counts.astype(np.float64) / self.total

    def merged_with(self, other: "Histogram") -> "Histogram":
        """Combine two histograms over the same spec."""
        if self.spec is not other.spec and self.spec != other.spec:
            raise ValueError("cannot merge histograms with different bin specs")
        merged = Histogram(self.spec)
        merged.counts = self.counts + other.counts
        merged.total = self.total + other.total
        return merged

    def __repr__(self) -> str:
        return f"<Histogram n={self.total} bins={self.spec.bin_count}>"
