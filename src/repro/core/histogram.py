"""Histogram binning and percentage-frequency distributions.

Signature construction (Section IV-A) converts raw observations into a
percentage frequency distribution per frame type: bin ``b_j``'s value
is ``o_j / |P^ftype(s)|``.  Two binning families cover the paper's
parameters: uniform-width bins over a range (times, sizes) and
categorical bins (the discrete 802.11 rate set).

Out-of-range values are **clipped into the edge bins** by default so a
heavy tail (e.g. very long inter-arrivals) still contributes mass
instead of silently vanishing; ``drop_outside=True`` reproduces strict
range-limited histograms.

Binning has two code paths with identical results: the scalar
:meth:`BinSpec.index` for one value at a time, and the vectorized
:meth:`BinSpec.index_many`/:meth:`Histogram.add_array` pair that bins a
whole observation array in one NumPy pass (see DESIGN.md "Batch matrix
layout").  Discarded values are encoded as index ``-1`` in the
vectorized path, mirroring ``None`` in the scalar one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class BinSpec:
    """Maps raw values onto bin indices."""

    #: Number of bins this spec produces.
    bin_count: int = 0

    def index(self, value: float) -> int | None:
        """Bin index for ``value`` (``None`` = discard the value)."""
        raise NotImplementedError

    def index_many(self, values: np.ndarray) -> np.ndarray:
        """Bin indices for an array of values (``-1`` = discard).

        The base implementation loops over :meth:`index` so any custom
        ``BinSpec`` subclass is automatically batch-capable; the
        built-in specs override it with fully vectorized versions.
        """
        flat = np.asarray(values, dtype=np.float64).ravel()
        indices = np.empty(flat.shape[0], dtype=np.int64)
        for position, value in enumerate(flat):
            index = self.index(float(value))
            indices[position] = -1 if index is None else index
        return indices

    def bin_label(self, index: int) -> str:
        """Human-readable label of one bin (for rendering)."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformBins(BinSpec):
    """``k = (hi - lo) / width`` equal-width bins over ``[lo, hi)``."""

    lo: float
    hi: float
    width: float
    drop_outside: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"bin width must be positive: {self.width}")
        if self.hi <= self.lo:
            raise ValueError(f"empty bin range: [{self.lo}, {self.hi})")
        object.__setattr__(
            self, "bin_count", int(np.ceil((self.hi - self.lo) / self.width))
        )

    bin_count: int = field(init=False, default=0)

    def index(self, value: float) -> int | None:
        if value < self.lo:
            return None if self.drop_outside else 0
        if value >= self.hi:
            return None if self.drop_outside else self.bin_count - 1
        return int((value - self.lo) / self.width)

    def index_many(self, values: np.ndarray) -> np.ndarray:
        flat = np.asarray(values, dtype=np.float64).ravel()
        if np.isnan(flat).any():
            # Parity with the scalar path, where int(nan) raises.
            raise ValueError("cannot bin NaN values")
        below = flat < self.lo
        above = flat >= self.hi
        # Out-of-range values (±inf included) are replaced before the
        # integer cast so it never sees a non-finite quotient; their
        # indices are overwritten by the masks below.  In-range values
        # use the same arithmetic as the scalar path: quotients are
        # non-negative, so int64 truncation equals the scalar int().
        safe = np.where(below | above, self.lo, flat)
        indices = ((safe - self.lo) / self.width).astype(np.int64)
        if self.drop_outside:
            indices[below | above] = -1
        else:
            indices[below] = 0
            indices[above] = self.bin_count - 1
        return indices

    def bin_label(self, index: int) -> str:
        low = self.lo + index * self.width
        return f"[{low:g},{min(low + self.width, self.hi):g})"


@dataclass(frozen=True)
class CategoricalBins(BinSpec):
    """One bin per discrete category (e.g. the 802.11 rate set)."""

    categories: tuple[float, ...]
    tolerance: float = 1e-6

    def __post_init__(self) -> None:
        if not self.categories:
            raise ValueError("at least one category required")
        object.__setattr__(self, "bin_count", len(self.categories))
        order = np.argsort(self.categories, kind="stable")
        object.__setattr__(self, "_sorted", np.asarray(self.categories, dtype=np.float64)[order])
        object.__setattr__(self, "_order", order.astype(np.int64))
        # When tolerance windows overlap, "first category in tuple
        # order" can differ from "nearest category"; the searchsorted
        # path only sees the two nearest neighbours, so fall back to
        # the scan that preserves the declared-order semantics.
        gaps = np.diff(self._sorted)
        object.__setattr__(
            self, "_overlapping", bool(gaps.size and gaps.min() <= 2 * self.tolerance)
        )

    bin_count: int = field(init=False, default=0)
    _sorted: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _order: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _overlapping: bool = field(init=False, repr=False, compare=False, default=False)

    def index(self, value: float) -> int | None:
        if self._overlapping:
            return self._index_scan(value)
        position = int(np.searchsorted(self._sorted, value))
        best: int | None = None
        best_distance = self.tolerance
        for neighbour in (position - 1, position):
            if 0 <= neighbour < self.bin_count:
                distance = abs(value - float(self._sorted[neighbour]))
                if distance <= best_distance:
                    best = int(self._order[neighbour])
                    best_distance = distance
        return best

    def _index_scan(self, value: float) -> int | None:
        for position, category in enumerate(self.categories):
            if abs(value - category) <= self.tolerance:
                return position
        return None

    def index_many(self, values: np.ndarray) -> np.ndarray:
        flat = np.asarray(values, dtype=np.float64).ravel()
        if self._overlapping:
            return super().index_many(flat)
        positions = np.searchsorted(self._sorted, flat)
        left = np.clip(positions - 1, 0, self.bin_count - 1)
        right = np.clip(positions, 0, self.bin_count - 1)
        left_distance = np.abs(flat - self._sorted[left])
        right_distance = np.abs(flat - self._sorted[right])
        # The scalar path prefers the left neighbour on exact distance
        # ties; with non-overlapping tolerance windows at most one
        # neighbour can actually be in range, so <= keeps them equal.
        take_left = left_distance <= right_distance
        nearest = np.where(take_left, left, right)
        distance = np.where(take_left, left_distance, right_distance)
        indices = self._order[nearest]
        # ~(d <= tol) rather than d > tol so NaN distances (NaN input)
        # are discarded, matching the scalar comparison semantics.
        indices[~(distance <= self.tolerance)] = -1
        return indices

    def bin_label(self, index: int) -> str:
        return f"{self.categories[index]:g}"


class Histogram:
    """A mutable observation accumulator over one bin spec."""

    __slots__ = ("spec", "counts", "total")

    def __init__(self, spec: BinSpec) -> None:
        self.spec = spec
        self.counts = np.zeros(spec.bin_count, dtype=np.int64)
        self.total = 0

    def add(self, value: float) -> bool:
        """Record one observation; returns False if it was discarded."""
        index = self.spec.index(value)
        if index is None:
            return False
        self.counts[index] += 1
        self.total += 1
        return True

    def add_many(self, values: list[float]) -> int:
        """Record many observations; returns how many were kept."""
        kept = 0
        for value in values:
            if self.add(value):
                kept += 1
        return kept

    def add_array(self, values: np.ndarray) -> int:
        """Record a whole observation array in one vectorized pass.

        Equivalent to :meth:`add_many` (property-tested) but bins with
        :meth:`BinSpec.index_many` and accumulates via ``np.bincount``.
        Returns how many observations were kept.
        """
        flat = np.asarray(values, dtype=np.float64).ravel()
        if flat.size == 0:
            return 0
        indices = self.spec.index_many(flat)
        kept_indices = indices[indices >= 0]
        if kept_indices.size:
            self.counts += np.bincount(kept_indices, minlength=self.spec.bin_count)
        kept = int(kept_indices.size)
        self.total += kept
        return kept

    def frequencies(self) -> np.ndarray:
        """Percentage frequency distribution ``P_j = o_j / total``.

        An empty histogram yields the all-zero vector.
        """
        if self.total == 0:
            return np.zeros(self.spec.bin_count, dtype=np.float64)
        return self.counts.astype(np.float64) / self.total

    def merged_with(self, other: "Histogram") -> "Histogram":
        """Combine two histograms over the same spec."""
        if self.spec is not other.spec and self.spec != other.spec:
            raise ValueError("cannot merge histograms with different bin specs")
        merged = Histogram(self.spec)
        merged.counts = self.counts + other.counts
        merged.total = self.total + other.total
        return merged

    def __repr__(self) -> str:
        return f"<Histogram n={self.total} bins={self.spec.bin_count}>"
