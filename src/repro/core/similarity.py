"""Histogram similarity measures.

The paper (Definition 2) uses the Cosine similarity: 1 for identical
distributions, 0 for disjoint support.  As printed, the definition
carries a ``1 −`` that contradicts the stated semantics and
Algorithm 1; we implement the stated semantics as
:func:`cosine_similarity` and expose the printed complement as
:func:`cosine_distance` (see DESIGN.md "Known erratum handled").

Because the paper cites Cha's histogram-distance taxonomy [8] and
leaves "the most adequate signal processing method" open, the module
also ships the classic alternatives used in the ablation benchmark:
intersection, chi-square, Bhattacharyya and Jensen–Shannon.  All are
*similarities* normalised to [0, 1] with 1 = identical.

The batch matching engine (see DESIGN.md "Batch matrix layout") needs
cosine over whole histogram matrices at once: :func:`normalize_rows`
and :func:`cosine_similarity_matrix` are the vectorized kernels, with
the same zero-norm semantics as the scalar :func:`cosine_similarity`
(an all-zero histogram scores 0 against everything).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

SimilarityMeasure = Callable[[np.ndarray, np.ndarray], float]

_EPS = 1e-12


def _validate(candidate: np.ndarray, reference: np.ndarray) -> None:
    if candidate.shape != reference.shape:
        raise ValueError(
            f"histogram shapes differ: {candidate.shape} vs {reference.shape}"
        )


def cosine_similarity(candidate: np.ndarray, reference: np.ndarray) -> float:
    """Definition 2 with the stated semantics: dot / (‖c‖·‖r‖) ∈ [0, 1].

    Two all-zero histograms have no overlap information and score 0.
    """
    _validate(candidate, reference)
    norm_c = float(np.linalg.norm(candidate))
    norm_r = float(np.linalg.norm(reference))
    if norm_c < _EPS or norm_r < _EPS:
        return 0.0
    value = float(np.dot(candidate, reference)) / (norm_c * norm_r)
    return min(1.0, max(0.0, value))


def cosine_distance(candidate: np.ndarray, reference: np.ndarray) -> float:
    """The paper's printed formula: ``1 − cosine_similarity``."""
    return 1.0 - cosine_similarity(candidate, reference)


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Rows scaled to unit L2 norm; all-zero rows stay all-zero.

    A zero row then contributes 0 to any dot product, which is exactly
    the scalar :func:`cosine_similarity` zero-norm convention.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.where(norms < _EPS, 1.0, norms)


def unit_cosine_product(
    unit_candidates: np.ndarray, unit_references: np.ndarray
) -> np.ndarray:
    """Clipped cosine scores of already unit-normalised rows.

    ``(M, bins) × (N, bins) → (M, N)`` in one matrix–matrix product —
    the batch engine's hot path, which keeps reference rows
    pre-normalised (:class:`~repro.core.database.PackedDatabase`) so
    they are not renormalised on every call.  Rows must be unit-norm
    or all-zero (see :func:`normalize_rows`); results are clipped to
    [0, 1] like the scalar measure.
    """
    unit_candidates = np.atleast_2d(np.asarray(unit_candidates, dtype=np.float64))
    unit_references = np.atleast_2d(np.asarray(unit_references, dtype=np.float64))
    if unit_candidates.shape[-1] != unit_references.shape[-1]:
        raise ValueError(
            f"histogram shapes differ: {unit_candidates.shape} vs "
            f"{unit_references.shape}"
        )
    scores = unit_candidates @ unit_references.T
    np.clip(scores, 0.0, 1.0, out=scores)
    return scores


def cosine_similarity_matrix(
    candidates: np.ndarray, references: np.ndarray
) -> np.ndarray:
    """Pairwise cosine similarities, ``(M, bins) × (N, bins) → (M, N)``.

    One matrix–matrix product replaces M·N scalar
    :func:`cosine_similarity` calls; rows with zero norm score 0
    against everything.  Results are clipped to [0, 1] like the scalar
    measure.
    """
    return unit_cosine_product(normalize_rows(candidates), normalize_rows(references))


def intersection_similarity(candidate: np.ndarray, reference: np.ndarray) -> float:
    """Histogram intersection: Σ min(c_j, r_j) (1 for identical
    normalised histograms)."""
    _validate(candidate, reference)
    if candidate.sum() < _EPS or reference.sum() < _EPS:
        return 0.0
    return float(np.minimum(candidate, reference).sum())


def chi_square_similarity(candidate: np.ndarray, reference: np.ndarray) -> float:
    """1 − χ²/2 with the symmetric chi-square statistic.

    For normalised histograms the symmetric χ² statistic lies in
    [0, 2] (2 at disjoint support), so this maps exactly onto [0, 1]
    with 1 = identical and 0 = disjoint.
    """
    _validate(candidate, reference)
    total_c = candidate.sum()
    total_r = reference.sum()
    if total_c < _EPS or total_r < _EPS:
        return 0.0
    p = candidate / total_c
    q = reference / total_r
    denominator = p + q
    mask = denominator > _EPS
    chi2 = float(np.sum((p[mask] - q[mask]) ** 2 / denominator[mask]))
    return max(0.0, 1.0 - chi2 / 2.0)


def bhattacharyya_similarity(candidate: np.ndarray, reference: np.ndarray) -> float:
    """Bhattacharyya coefficient Σ √(c_j·r_j) ∈ [0, 1]."""
    _validate(candidate, reference)
    if candidate.sum() < _EPS or reference.sum() < _EPS:
        return 0.0
    return float(np.sqrt(candidate * reference).sum())


def jensen_shannon_similarity(candidate: np.ndarray, reference: np.ndarray) -> float:
    """1 − JSD(c‖r) with the base-2 Jensen–Shannon divergence."""
    _validate(candidate, reference)
    total_c = candidate.sum()
    total_r = reference.sum()
    if total_c < _EPS or total_r < _EPS:
        return 0.0
    p = candidate / total_c
    q = reference / total_r
    mid = (p + q) / 2.0

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > _EPS
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    divergence = (_kl(p, mid) + _kl(q, mid)) / 2.0
    return max(0.0, 1.0 - divergence)


_MEASURES: dict[str, SimilarityMeasure] = {
    "cosine": cosine_similarity,
    "intersection": intersection_similarity,
    "chi2": chi_square_similarity,
    "bhattacharyya": bhattacharyya_similarity,
    "jensen-shannon": jensen_shannon_similarity,
}


def similarity_measure_by_name(name: str) -> SimilarityMeasure:
    """Look up a similarity measure (``cosine`` is the paper's)."""
    try:
        return _MEASURES[name]
    except KeyError:
        raise KeyError(
            f"unknown similarity measure {name!r}; available: {sorted(_MEASURES)}"
        ) from None
