"""Two-dimensional (joint) histogram signatures — §IV-A extension.

The paper notes that plain histograms "may eliminate characteristic
patterns" and name-checks n-dimensional histograms as a candidate
refinement.  This module implements the 2-D case: a
:class:`JointParameter` measures a *pair* of the five base parameters
per frame and bins the pair into a flattened 2-D histogram, which then
flows through the unchanged signature/matching machinery.

Example: the (inter-arrival × frame size) joint distribution separates
"short gap because of a small frame" from "short gap because of an
aggressive backoff", which the marginals confuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.core.histogram import BinSpec
from repro.core.parameters import (
    NetworkParameter,
    Observation,
    parameter_by_name,
)
from repro.dot11.capture import CapturedFrame
from repro.dot11.phy import paper_transmission_time_us

#: Per-frame value functions.  ``previous_t`` is the end-of-reception
#: of the previous frame on the channel (None for the first frame).
_VALUE_FUNCTIONS: dict[str, Callable[[CapturedFrame, float | None], float | None]] = {
    "rate": lambda c, prev: c.rate_mbps,
    "size": lambda c, prev: float(c.size),
    "txtime": lambda c, prev: paper_transmission_time_us(c.size, c.rate_mbps),
    "interarrival": lambda c, prev: None if prev is None else c.timestamp_us - prev,
    "access": lambda c, prev: (
        None
        if prev is None
        else (c.timestamp_us - paper_transmission_time_us(c.size, c.rate_mbps)) - prev
    ),
}


@dataclass(frozen=True)
class JointBins(BinSpec):
    """Cartesian product of two bin specs, flattened row-major.

    The value passed to :meth:`index` is an encoded pair produced by
    :meth:`encode`; the flattening keeps the downstream histogram and
    similarity code unchanged (they only see one long vector).
    """

    x_bins: BinSpec
    y_bins: BinSpec

    bin_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "bin_count", self.x_bins.bin_count * self.y_bins.bin_count)

    #: Encoding base: must exceed any bin count a spec can produce.
    _BASE = 1 << 20

    def encode(self, x: float, y: float) -> float | None:
        """Encode a raw value pair into a joint scalar (None = drop)."""
        ix = self.x_bins.index(x)
        iy = self.y_bins.index(y)
        if ix is None or iy is None:
            return None
        return float(ix * self._BASE + iy)

    def index(self, value: float) -> int | None:
        encoded = int(value)
        ix, iy = divmod(encoded, self._BASE)
        if not (0 <= ix < self.x_bins.bin_count and 0 <= iy < self.y_bins.bin_count):
            return None
        return ix * self.y_bins.bin_count + iy

    def bin_label(self, index: int) -> str:
        ix, iy = divmod(index, self.y_bins.bin_count)
        return f"{self.x_bins.bin_label(ix)}×{self.y_bins.bin_label(iy)}"


class JointParameter(NetworkParameter):
    """A pair of base parameters measured jointly per frame.

    ``x``/``y`` are base-parameter names (``rate``, ``size``,
    ``txtime``, ``interarrival``, ``access``).  Bin specs default to
    the base parameters' own defaults.
    """

    def __init__(
        self,
        x: str,
        y: str,
        x_bins: BinSpec | None = None,
        y_bins: BinSpec | None = None,
    ) -> None:
        if x not in _VALUE_FUNCTIONS or y not in _VALUE_FUNCTIONS:
            raise KeyError(f"unknown base parameter in joint pair: ({x}, {y})")
        if x == y:
            raise ValueError("joint parameter needs two distinct base parameters")
        self._x = x
        self._y = y
        self.name = f"joint:{x}x{y}"
        self.label = (
            f"Joint {parameter_by_name(x).label} × {parameter_by_name(y).label}"
        )
        self._bins = JointBins(
            x_bins=x_bins if x_bins is not None else parameter_by_name(x).default_bins(),
            y_bins=y_bins if y_bins is not None else parameter_by_name(y).default_bins(),
        )

    def default_bins(self) -> BinSpec:
        return self._bins

    def observations(
        self, frames: Iterable[CapturedFrame]
    ) -> Iterator[Observation]:
        fx = _VALUE_FUNCTIONS[self._x]
        fy = _VALUE_FUNCTIONS[self._y]
        previous_t: float | None = None
        for captured in frames:
            if captured.sender is not None:
                x_value = fx(captured, previous_t)
                y_value = fy(captured, previous_t)
                if x_value is not None and y_value is not None:
                    encoded = self._bins.encode(x_value, y_value)
                    if encoded is not None:
                        yield Observation(
                            captured.sender, captured.ftype_key, encoded
                        )
            previous_t = captured.timestamp_us
