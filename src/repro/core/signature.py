"""Device signatures (Definition 1) and their construction.

``Sig(s) = {(weight^ftype(s), hist^ftype(s)) | ∀ftype}`` — one
percentage-frequency histogram per frame type, weighted by the fraction
of the device's observations that frame type contributes:

``weight^ftype(s) = |P^ftype(s)| / Σ_ftype |P^ftype(s)|``

The builder enforces the implementation's minimum-observation rule
(Section V-C): a signature is only emitted for devices with at least
``min_observations`` attributed observations (the paper uses 50).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.histogram import BinSpec, Histogram
from repro.core.parameters import NetworkParameter

#: The paper's minimum number of observations per signature.
DEFAULT_MIN_OBSERVATIONS = 50


@dataclass
class Signature:
    """Definition 1: weighted per-frame-type histograms of one device."""

    histograms: dict[str, np.ndarray]
    weights: dict[str, float]
    observation_counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if set(self.histograms) != set(self.weights):
            raise ValueError("histograms and weights must cover the same frame types")
        for ftype, weight in self.weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for {ftype!r}: {weight}")

    @property
    def total_observations(self) -> int:
        """Total attributed observations across all frame types."""
        return sum(self.observation_counts.values())

    @property
    def frame_types(self) -> set[str]:
        """Frame types this signature contains."""
        return set(self.histograms)

    def histogram(self, ftype_key: str) -> np.ndarray | None:
        """Percentage-frequency histogram of one frame type."""
        return self.histograms.get(ftype_key)

    def weight(self, ftype_key: str) -> float:
        """Weight of one frame type (0 if absent)."""
        return self.weights.get(ftype_key, 0.0)


class SignatureBuilder:
    """Builds signatures for every device visible in a capture.

    One builder is bound to a network parameter and a bin spec; its
    :meth:`build` can be called on any frame sequence (full training
    trace or a 5-minute candidate window).
    """

    def __init__(
        self,
        parameter: NetworkParameter,
        bins: BinSpec | None = None,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
    ) -> None:
        if min_observations < 1:
            raise ValueError(f"min_observations must be >= 1: {min_observations}")
        self.parameter = parameter
        self.bins = bins if bins is not None else parameter.default_bins()
        self.min_observations = min_observations

    def build(
        self, frames: list[CapturedFrame]
    ) -> dict[MacAddress, Signature]:
        """Extract observations and assemble per-device signatures.

        Devices with fewer than ``min_observations`` kept observations
        are omitted, mirroring the paper's tool.
        """
        # Gather raw values per (sender, frame type) first, then bin
        # each bucket in one vectorized Histogram.add_array pass —
        # identical counts to per-value add(), without the per-value
        # Python dispatch.
        buckets: dict[MacAddress, dict[str, list[float]]] = {}
        for observation in self.parameter.observations(frames):
            per_type = buckets.setdefault(observation.sender, {})
            per_type.setdefault(observation.ftype_key, []).append(observation.value)

        accumulators: dict[MacAddress, dict[str, Histogram]] = {}
        for sender, values_by_type in buckets.items():
            per_type = accumulators.setdefault(sender, {})
            for ftype_key, values in values_by_type.items():
                histogram = Histogram(self.bins)
                histogram.add_array(np.asarray(values, dtype=np.float64))
                per_type[ftype_key] = histogram

        signatures: dict[MacAddress, Signature] = {}
        for sender, per_type in accumulators.items():
            total = sum(h.total for h in per_type.values())
            if total < self.min_observations:
                continue
            histograms: dict[str, np.ndarray] = {}
            weights: dict[str, float] = {}
            counts: dict[str, int] = {}
            for ftype_key, histogram in per_type.items():
                if histogram.total == 0:
                    continue
                histograms[ftype_key] = histogram.frequencies()
                weights[ftype_key] = histogram.total / total
                counts[ftype_key] = histogram.total
            if histograms:
                signatures[sender] = Signature(
                    histograms=histograms,
                    weights=weights,
                    observation_counts=counts,
                )
        return signatures

    def build_single(
        self, frames: list[CapturedFrame], sender: MacAddress
    ) -> Signature | None:
        """Signature of one specific device (``None`` below threshold)."""
        return self.build(frames).get(sender)
