"""Device signatures (Definition 1) and their construction.

``Sig(s) = {(weight^ftype(s), hist^ftype(s)) | ∀ftype}`` — one
percentage-frequency histogram per frame type, weighted by the fraction
of the device's observations that frame type contributes:

``weight^ftype(s) = |P^ftype(s)| / Σ_ftype |P^ftype(s)|``

The builder enforces the implementation's minimum-observation rule
(Section V-C): a signature is only emitted for devices with at least
``min_observations`` attributed observations (the paper uses 50).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.histogram import BinSpec, Histogram
from repro.core.parameters import NetworkParameter
from repro.traces.table import FrameTable

#: The paper's minimum number of observations per signature.
DEFAULT_MIN_OBSERVATIONS = 50


@dataclass
class Signature:
    """Definition 1: weighted per-frame-type histograms of one device."""

    histograms: dict[str, np.ndarray]
    weights: dict[str, float]
    observation_counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if set(self.histograms) != set(self.weights):
            raise ValueError("histograms and weights must cover the same frame types")
        for ftype, weight in self.weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for {ftype!r}: {weight}")

    @property
    def total_observations(self) -> int:
        """Total attributed observations across all frame types."""
        return sum(self.observation_counts.values())

    @property
    def frame_types(self) -> set[str]:
        """Frame types this signature contains."""
        return set(self.histograms)

    def histogram(self, ftype_key: str) -> np.ndarray | None:
        """Percentage-frequency histogram of one frame type."""
        return self.histograms.get(ftype_key)

    def weight(self, ftype_key: str) -> float:
        """Weight of one frame type (0 if absent)."""
        return self.weights.get(ftype_key, 0.0)


class SignatureBuilder:
    """Builds signatures for every device visible in a capture.

    One builder is bound to a network parameter and a bin spec; its
    :meth:`build` can be called on any frame sequence (full training
    trace or a 5-minute candidate window).
    """

    def __init__(
        self,
        parameter: NetworkParameter,
        bins: BinSpec | None = None,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
    ) -> None:
        if min_observations < 1:
            raise ValueError(f"min_observations must be >= 1: {min_observations}")
        self.parameter = parameter
        self.bins = bins if bins is not None else parameter.default_bins()
        self.min_observations = min_observations

    def build(
        self, frames: list[CapturedFrame]
    ) -> dict[MacAddress, Signature]:
        """Extract observations and assemble per-device signatures.

        Devices with fewer than ``min_observations`` kept observations
        are omitted, mirroring the paper's tool.
        """
        # Gather raw values per (sender, frame type) first, then bin
        # each bucket in one vectorized Histogram.add_array pass —
        # identical counts to per-value add(), without the per-value
        # Python dispatch.
        buckets: dict[MacAddress, dict[str, list[float]]] = {}
        for observation in self.parameter.observations(frames):
            per_type = buckets.setdefault(observation.sender, {})
            per_type.setdefault(observation.ftype_key, []).append(observation.value)

        accumulators: dict[MacAddress, dict[str, Histogram]] = {}
        for sender, values_by_type in buckets.items():
            per_type = accumulators.setdefault(sender, {})
            for ftype_key, values in values_by_type.items():
                histogram = Histogram(self.bins)
                histogram.add_array(np.asarray(values, dtype=np.float64))
                per_type[ftype_key] = histogram

        signatures: dict[MacAddress, Signature] = {}
        for sender, per_type in accumulators.items():
            total = sum(h.total for h in per_type.values())
            if total < self.min_observations:
                continue
            histograms: dict[str, np.ndarray] = {}
            weights: dict[str, float] = {}
            counts: dict[str, int] = {}
            for ftype_key, histogram in per_type.items():
                if histogram.total == 0:
                    continue
                histograms[ftype_key] = histogram.frequencies()
                weights[ftype_key] = histogram.total / total
                counts[ftype_key] = histogram.total
            if histograms:
                signatures[sender] = Signature(
                    histograms=histograms,
                    weights=weights,
                    observation_counts=counts,
                )
        return signatures

    def build_single(
        self, frames: list[CapturedFrame], sender: MacAddress
    ) -> Signature | None:
        """Signature of one specific device (``None`` below threshold)."""
        return self.build(frames).get(sender)

    # -- columnar fast path --------------------------------------------
    def build_table(self, table: FrameTable) -> dict[MacAddress, Signature]:
        """:meth:`build` over a columnar :class:`FrameTable`.

        Extracts observations vectorized, bins them in one
        ``index_many`` pass and scatters them into the per-(device,
        frame type) count matrix with a single flat ``np.bincount`` —
        bin-for-bin identical to the object path (property-pinned in
        ``tests/test_table.py``).  Parameters without a columnar
        extractor fall back to :meth:`build` on the backing frames.
        """
        observed = self.parameter.observe_table(table)
        if observed is None:
            return self.build(table.to_frames())
        bin_idx = self.bins.index_many(observed.values)
        return self.build_binned(
            observed.sender_idx,
            observed.ftype_idx,
            bin_idx,
            table.senders,
            table.ftype_keys,
        )

    def build_binned(
        self,
        sender_idx: np.ndarray,
        ftype_idx: np.ndarray,
        bin_idx: np.ndarray,
        senders: tuple[MacAddress, ...],
        ftype_keys: tuple[str, ...],
    ) -> dict[MacAddress, Signature]:
        """Assemble signatures from pre-binned observation codes.

        ``bin_idx`` uses the vectorized binning convention (``-1`` =
        discarded).  The detection fast path bins a whole validation
        trace once and calls this per window slice.  Devices and frame
        types are emitted in first-observation order — matching the
        scalar path's dict ordering exactly, so every downstream
        insertion-order-dependent structure (reference databases,
        candidate lists) is identical between the two paths.
        """
        if sender_idx.size == 0:
            return {}
        n_ftypes = len(ftype_keys)
        n_bins = self.bins.bin_count
        # Compress to the senders actually present in this batch: a
        # window slice of a large trace must scale with its *active*
        # devices, not the whole capture's intern table (the count
        # matrix below is per-sender × ftypes × bins).
        active = np.flatnonzero(np.bincount(sender_idx, minlength=len(senders)))
        local_code = np.zeros(len(senders), dtype=np.int64)
        local_code[active] = np.arange(active.size)
        # One cell per (sender, ftype) pair; bucket order (pre-discard,
        # like the scalar path's) via the first occurrence of each pair.
        pair = local_code[sender_idx] * n_ftypes + ftype_idx
        kept = bin_idx >= 0
        flat = pair[kept] * n_bins + bin_idx[kept]
        counts = np.bincount(
            flat, minlength=active.size * n_ftypes * n_bins
        ).reshape(active.size, n_ftypes, n_bins)
        ftype_totals = counts.sum(axis=2)
        sender_totals = ftype_totals.sum(axis=1)

        # First occurrence per cell in one reversed scatter: duplicate
        # fancy-assignment indices keep the *last* write, so reversing
        # both sides leaves each cell with its earliest position.
        first_seen = np.full(active.size * n_ftypes, pair.size, dtype=np.int64)
        first_seen[pair[::-1]] = np.arange(pair.size - 1, -1, -1, dtype=np.int64)
        first_seen = first_seen.reshape(active.size, n_ftypes)
        sender_first = first_seen.min(axis=1)

        eligible = np.flatnonzero(sender_totals >= self.min_observations).tolist()
        eligible.sort(key=sender_first.__getitem__)
        signatures: dict[MacAddress, Signature] = {}
        for s in eligible:
            total = int(sender_totals[s])
            first_row = first_seen[s]
            present = np.flatnonzero(ftype_totals[s] > 0).tolist()
            present.sort(key=first_row.__getitem__)
            histograms: dict[str, np.ndarray] = {}
            weights: dict[str, float] = {}
            obs_counts: dict[str, int] = {}
            for f in present:
                kept_count = int(ftype_totals[s, f])
                key = ftype_keys[f]
                histograms[key] = counts[s, f].astype(np.float64) / kept_count
                weights[key] = kept_count / total
                obs_counts[key] = kept_count
            if histograms:
                signatures[senders[int(active[s])]] = Signature(
                    histograms=histograms,
                    weights=weights,
                    observation_counts=obs_counts,
                )
        return signatures
