"""The reference database (learning phase).

Built from a training trace, the database stores one signature per
reference device (Section IV-B).  It assumes a clean learning stage —
the paper's pollution attack against this assumption is modelled in
:mod:`repro.applications.attacks`.

For the batch matching engine the database also exposes a *packed*
view (:meth:`ReferenceDatabase.packed`): per frame type, one
contiguous ``(N_devices, n_bins)`` frequency matrix, one ``(N_devices,)``
weight vector, and the unit-normalised frequency rows — so Algorithm 1
for cosine reduces to one matrix–vector product per frame type (see
DESIGN.md "Batch matrix layout").

The pack is maintained **incrementally** (DESIGN.md §4): matrices live
in capacity-doubling buffers, so :meth:`add` costs amortised O(bins)
per frame type (one row write + one row normalisation) instead of the
full O(N·bins) repack, and :meth:`remove` one in-place row shift.
Databases whose signatures disagree on a frame type's bin count cannot
be packed; mutations detect this and drop back to the full-rebuild
path until the conflict is resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.signature import Signature, SignatureBuilder
from repro.core.similarity import normalize_rows


@dataclass
class MergeReport:
    """What :meth:`ReferenceDatabase.merge` did, device by device.

    Conflicting devices — present in both databases — end up in
    ``replaced`` (their signature was overwritten by the source, the
    default policy) or ``skipped`` (kept, under ``on_conflict="keep"``);
    the two are mutually exclusive per merge.
    """

    added: list[MacAddress] = field(default_factory=list)
    replaced: list[MacAddress] = field(default_factory=list)
    skipped: list[MacAddress] = field(default_factory=list)

    @property
    def conflicts(self) -> int:
        """Number of devices present in both databases."""
        return len(self.replaced) + len(self.skipped)

    def __bool__(self) -> bool:
        """True when the merge changed the target database."""
        return bool(self.added or self.replaced)


def merge_databases(target, source, on_conflict: str = "replace") -> MergeReport:
    """Fold ``source``'s devices into ``target`` (shared merge body).

    ``target`` needs only membership (``in``) and ``add``; ``source``
    only ``items()`` — so this one implementation backs both
    :meth:`ReferenceDatabase.merge` and
    :meth:`~repro.core.sharding.ShardedReferenceDatabase.merge`.
    Conflicting devices (present in both) follow ``on_conflict``:

    * ``"replace"`` (default) — the source signature wins
      (``report.replaced``);
    * ``"keep"`` — the target's signature wins (``report.skipped``);
    * ``"error"`` — raise ``ValueError`` before touching anything.
    """
    if on_conflict not in ("replace", "keep", "error"):
        raise ValueError(f"unknown merge policy: {on_conflict!r}")
    entries = source.items()
    if on_conflict == "error":
        conflicts = [device for device, _ in entries if device in target]
        if conflicts:
            raise ValueError(
                f"merge conflicts for {len(conflicts)} device(s): "
                f"{', '.join(str(device) for device in conflicts[:5])}"
            )
    report = MergeReport()
    for device, signature in entries:
        if device in target:
            if on_conflict == "keep":
                report.skipped.append(device)
                continue
            report.replaced.append(device)
        else:
            report.added.append(device)
        target.add(device, signature)
    return report


@dataclass(frozen=True, eq=False)
class PackedDatabase:
    """Contiguous per-frame-type matrix view of a reference database.

    Device order matches the database's insertion order, so row ``i``
    of every matrix describes ``devices[i]``.  Devices lacking a frame
    type get an all-zero frequency row and weight 0 — exactly the
    "missing type contributes 0" rule of Algorithm 1.
    """

    devices: tuple[MacAddress, ...]
    frame_types: tuple[str, ...]
    #: ftype → ``(N, n_bins)`` percentage-frequency matrix.
    frequencies: dict[str, np.ndarray]
    #: ftype → ``(N,)`` reference frame-type weights.
    weights: dict[str, np.ndarray]
    #: ftype → ``(N, n_bins)`` unit rows ``r_i/‖r_i‖`` (cosine fast path).
    normalized: dict[str, np.ndarray]

    @classmethod
    def from_signatures(
        cls, entries: list[tuple[MacAddress, Signature]]
    ) -> "PackedDatabase | None":
        """Pack signatures into matrices; ``None`` if they are ragged.

        Ragged means two signatures disagree on a frame type's bin
        count, in which case no rectangular matrix exists and callers
        must stay on the scalar path.
        """
        devices = tuple(device for device, _ in entries)
        bin_counts: dict[str, int] = {}
        for _, signature in entries:
            for ftype_key, histogram in signature.histograms.items():
                bins = int(histogram.shape[-1])
                if bin_counts.setdefault(ftype_key, bins) != bins:
                    return None
        frame_types = tuple(bin_counts)
        frequencies: dict[str, np.ndarray] = {}
        weights: dict[str, np.ndarray] = {}
        normalized: dict[str, np.ndarray] = {}
        for ftype_key in frame_types:
            matrix = np.zeros((len(entries), bin_counts[ftype_key]), dtype=np.float64)
            weight = np.zeros(len(entries), dtype=np.float64)
            for row, (_, signature) in enumerate(entries):
                histogram = signature.histogram(ftype_key)
                if histogram is not None:
                    matrix[row] = histogram
                    weight[row] = signature.weight(ftype_key)
            frequencies[ftype_key] = matrix
            weights[ftype_key] = weight
            normalized[ftype_key] = normalize_rows(matrix)
        return cls(
            devices=devices,
            frame_types=frame_types,
            frequencies=frequencies,
            weights=weights,
            normalized=normalized,
        )

    def bin_count(self, ftype_key: str) -> int | None:
        """Histogram width of one frame type (``None`` if absent)."""
        matrix = self.frequencies.get(ftype_key)
        return None if matrix is None else int(matrix.shape[-1])


class _PackBuffers:
    """Growable backing store for the incremental packed view.

    Matrices are allocated with spare row capacity (doubling growth),
    so registering or replacing one device writes one row per frame
    type — amortised O(bins) — and removing one device shifts the rows
    behind it up in place.  :meth:`snapshot` wraps ``[:count]`` views
    into a :class:`PackedDatabase`; a snapshot therefore shares storage
    with the live buffers and is only guaranteed stable until the next
    membership change.
    """

    __slots__ = (
        "devices",
        "row_of",
        "bin_counts",
        "members",
        "frequencies",
        "weights",
        "normalized",
        "count",
        "capacity",
    )

    def __init__(self, capacity: int = 8) -> None:
        self.devices: list[MacAddress] = []
        self.row_of: dict[MacAddress, int] = {}
        self.bin_counts: dict[str, int] = {}
        #: ftype → number of devices exhibiting it; a frame type whose
        #: membership drops to zero is purged so its stale bin count
        #: cannot shape-clash with future signatures or candidates.
        self.members: dict[str, int] = {}
        self.frequencies: dict[str, np.ndarray] = {}
        self.weights: dict[str, np.ndarray] = {}
        self.normalized: dict[str, np.ndarray] = {}
        self.count = 0
        self.capacity = capacity

    @classmethod
    def from_signatures(
        cls, entries: list[tuple[MacAddress, Signature]]
    ) -> "_PackBuffers | None":
        """Full build; ``None`` when the signatures are ragged."""
        buffers = cls(capacity=max(8, len(entries)))
        for device, signature in entries:
            if not buffers.set_row(device, signature, previous=None):
                return None
        return buffers

    @classmethod
    def adopt(
        cls,
        devices: list[MacAddress],
        frequencies: dict[str, np.ndarray],
        weights: dict[str, np.ndarray],
        members: dict[str, int],
    ) -> "_PackBuffers":
        """Wrap already-packed matrices into live buffers.

        The persistence layer restores a saved database through this:
        the ``(N, bins)`` frequency matrices and ``(N,)`` weight vectors
        come straight off disk, so rebuilding the incremental view costs
        one vectorized row-normalisation per frame type instead of the
        per-signature Python repack of :meth:`from_signatures`.  The
        matrices are copied into growable buffers; callers keep
        ownership of their arrays.
        """
        buffers = cls(capacity=max(8, len(devices)))
        buffers.devices = list(devices)
        buffers.row_of = {device: row for row, device in enumerate(devices)}
        buffers.count = len(devices)
        buffers.members = dict(members)
        for ftype_key, matrix in frequencies.items():
            bins = int(matrix.shape[-1])
            buffers.bin_counts[ftype_key] = bins
            frequency_buffer = np.zeros((buffers.capacity, bins), dtype=np.float64)
            frequency_buffer[: buffers.count] = matrix
            buffers.frequencies[ftype_key] = frequency_buffer
            normalized_buffer = np.zeros((buffers.capacity, bins), dtype=np.float64)
            normalized_buffer[: buffers.count] = normalize_rows(
                frequency_buffer[: buffers.count]
            )
            buffers.normalized[ftype_key] = normalized_buffer
            weight_buffer = np.zeros(buffers.capacity, dtype=np.float64)
            weight_buffer[: buffers.count] = weights[ftype_key]
            buffers.weights[ftype_key] = weight_buffer
        return buffers

    def _grow(self) -> None:
        new_capacity = max(8, self.capacity * 2)
        for ftype_key, bins in self.bin_counts.items():
            frequencies = np.zeros((new_capacity, bins), dtype=np.float64)
            frequencies[: self.count] = self.frequencies[ftype_key][: self.count]
            self.frequencies[ftype_key] = frequencies
            normalized = np.zeros((new_capacity, bins), dtype=np.float64)
            normalized[: self.count] = self.normalized[ftype_key][: self.count]
            self.normalized[ftype_key] = normalized
            weights = np.zeros(new_capacity, dtype=np.float64)
            weights[: self.count] = self.weights[ftype_key][: self.count]
            self.weights[ftype_key] = weights
        self.capacity = new_capacity

    def set_row(
        self, device: MacAddress, signature: Signature, previous: Signature | None
    ) -> bool:
        """Write one device's row; ``False`` on a bin-count conflict.

        ``previous`` is the signature being replaced (``None`` for a
        new device) — needed to keep the frame-type membership counts
        exact.  A conflict leaves the buffers unusable (partial write);
        the caller must discard them and fall back to the full rebuild.
        """
        for ftype_key, histogram in signature.histograms.items():
            bins = int(histogram.shape[-1])
            if self.bin_counts.setdefault(ftype_key, bins) != bins:
                return False
            if ftype_key not in self.frequencies:
                self.frequencies[ftype_key] = np.zeros(
                    (self.capacity, bins), dtype=np.float64
                )
                self.normalized[ftype_key] = np.zeros(
                    (self.capacity, bins), dtype=np.float64
                )
                self.weights[ftype_key] = np.zeros(self.capacity, dtype=np.float64)
        row = self.row_of.get(device)
        if row is None:
            if self.count == self.capacity:
                self._grow()
            row = self.count
            self.count += 1
            self.devices.append(device)
            self.row_of[device] = row
        before = set(previous.histograms) if previous is not None else set()
        now = set(signature.histograms)
        for ftype_key in now - before:
            self.members[ftype_key] = self.members.get(ftype_key, 0) + 1
        for ftype_key in list(self.bin_counts):
            histogram = signature.histogram(ftype_key)
            if histogram is None:
                # Replacement may drop a frame type: clear the old row.
                self.frequencies[ftype_key][row] = 0.0
                self.normalized[ftype_key][row] = 0.0
                self.weights[ftype_key][row] = 0.0
                if ftype_key in before:
                    self._drop_member(ftype_key)
                continue
            self.frequencies[ftype_key][row] = histogram
            self.normalized[ftype_key][row] = normalize_rows(
                self.frequencies[ftype_key][row]
            )
            self.weights[ftype_key][row] = signature.weight(ftype_key)
        return True

    def remove_row(self, device: MacAddress, signature: Signature) -> None:
        """Drop one device, shifting later rows up in place."""
        row = self.row_of.pop(device)
        keep = self.count - 1
        for ftype_key in self.bin_counts:
            self.frequencies[ftype_key][row:keep] = self.frequencies[ftype_key][
                row + 1 : self.count
            ]
            self.frequencies[ftype_key][keep] = 0.0
            self.normalized[ftype_key][row:keep] = self.normalized[ftype_key][
                row + 1 : self.count
            ]
            self.normalized[ftype_key][keep] = 0.0
            self.weights[ftype_key][row:keep] = self.weights[ftype_key][
                row + 1 : self.count
            ]
            self.weights[ftype_key][keep] = 0.0
        del self.devices[row]
        for shifted in self.devices[row:]:
            self.row_of[shifted] -= 1
        self.count = keep
        for ftype_key in signature.histograms:
            self._drop_member(ftype_key)

    def _drop_member(self, ftype_key: str) -> None:
        """Decrement a frame type's membership, purging it at zero."""
        remaining = self.members.get(ftype_key, 0) - 1
        if remaining > 0:
            self.members[ftype_key] = remaining
            return
        self.members.pop(ftype_key, None)
        self.bin_counts.pop(ftype_key, None)
        self.frequencies.pop(ftype_key, None)
        self.normalized.pop(ftype_key, None)
        self.weights.pop(ftype_key, None)

    def snapshot(self) -> PackedDatabase:
        """The current matrices as an (aliasing) :class:`PackedDatabase`."""
        return PackedDatabase(
            devices=tuple(self.devices),
            frame_types=tuple(self.bin_counts),
            frequencies={
                f: matrix[: self.count] for f, matrix in self.frequencies.items()
            },
            weights={f: vector[: self.count] for f, vector in self.weights.items()},
            normalized={
                f: matrix[: self.count] for f, matrix in self.normalized.items()
            },
        )


class ReferenceDatabase:
    """Signatures of the known (authorised) devices."""

    def __init__(self) -> None:
        self._signatures: dict[MacAddress, Signature] = {}
        self._buffers: _PackBuffers | None = None
        self._packed: PackedDatabase | None = None
        self._packed_stale = True

    @classmethod
    def from_training(
        cls, builder: SignatureBuilder, frames: list[CapturedFrame]
    ) -> "ReferenceDatabase":
        """Learning phase: one signature per device in the training trace."""
        database = cls()
        for sender, signature in builder.build(frames).items():
            database.add(sender, signature)
        return database

    @classmethod
    def from_training_table(
        cls, builder: SignatureBuilder, table
    ) -> "ReferenceDatabase":
        """:meth:`from_training` over a columnar
        :class:`~repro.traces.table.FrameTable` (vectorized fast path).

        Device insertion order matches :meth:`from_training` exactly —
        :meth:`SignatureBuilder.build_table` emits first-observation
        order — so the packed matrices and every downstream score are
        bit-identical between the two paths.
        """
        database = cls()
        for sender, signature in builder.build_table(table).items():
            database.add(sender, signature)
        return database

    @classmethod
    def _restore(
        cls,
        signatures: dict[MacAddress, Signature],
        buffers: _PackBuffers | None,
    ) -> "ReferenceDatabase":
        """Rebuild a database around pre-packed buffers (persistence).

        ``buffers`` must describe exactly ``signatures`` in its device
        order (``None`` for ragged databases, which re-pack lazily via
        the full rebuild on first :meth:`packed`).
        """
        database = cls()
        database._signatures = dict(signatures)
        database._buffers = buffers
        return database

    def add(self, device: MacAddress, signature: Signature) -> None:
        """Register (or replace) one reference device's signature.

        With a live packed view this writes one matrix row per frame
        type (amortised O(bins)) instead of repacking the database.
        """
        previous = self._signatures.get(device)
        self._signatures[device] = signature
        if self._buffers is not None and not self._buffers.set_row(
            device, signature, previous
        ):
            self._buffers = None  # bin-count conflict: pack became ragged
        self._packed_stale = True

    def remove(self, device: MacAddress) -> bool:
        """Forget a reference device; ``False`` (no-op) if unknown.

        Removal can resolve a bin-count conflict, in which case the
        next :meth:`packed` call rebuilds the matrix view in full.
        """
        signature = self._signatures.pop(device, None)
        if signature is None:
            return False
        if self._buffers is not None:
            self._buffers.remove_row(device, signature)
        self._packed_stale = True
        return True

    def get(self, device: MacAddress) -> Signature | None:
        """Signature of one device, if known."""
        return self._signatures.get(device)

    def merge(
        self, source: "ReferenceDatabase", on_conflict: str = "replace"
    ) -> MergeReport:
        """Fold another database's devices into this one.

        Conflict policy per :func:`merge_databases`.  Insertion order:
        existing devices keep their rows, new devices append in the
        source's order — so merging databases learnt from consecutive
        captures behaves like learning them in sequence.
        """
        return merge_databases(self, source, on_conflict)

    def packed(self) -> PackedDatabase | None:
        """The cached matrix view (``None`` for empty/ragged databases).

        Maintained incrementally across :meth:`add`/:meth:`remove`; the
        returned snapshot shares storage with the live buffers and is
        only guaranteed stable until the next membership change.
        Mutating a stored :class:`Signature` *in place* is not tracked
        — re-:meth:`add` it to refresh the pack.
        """
        if self._packed_stale:
            if not self._signatures:
                self._packed = None
            else:
                if self._buffers is None:
                    self._buffers = _PackBuffers.from_signatures(
                        list(self._signatures.items())
                    )
                self._packed = (
                    self._buffers.snapshot() if self._buffers is not None else None
                )
            self._packed_stale = False
        return self._packed

    def __contains__(self, device: MacAddress) -> bool:
        return device in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def __iter__(self) -> Iterator[MacAddress]:
        return iter(self._signatures)

    def items(self) -> list[tuple[MacAddress, Signature]]:
        """(device, signature) pairs in insertion order.

        Returns a snapshot list, so callers may :meth:`add`/:meth:`remove`
        while iterating — the mutation-during-iteration hazard the
        sharded rebalancing path would otherwise hit.
        """
        return list(self._signatures.items())

    @property
    def devices(self) -> list[MacAddress]:
        """All reference devices (a snapshot, safe to mutate against)."""
        return list(self._signatures)
