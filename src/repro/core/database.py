"""The reference database (learning phase).

Built from a training trace, the database stores one signature per
reference device (Section IV-B).  It assumes a clean learning stage —
the paper's pollution attack against this assumption is modelled in
:mod:`repro.applications.attacks`.

For the batch matching engine the database also exposes a *packed*
view (:meth:`ReferenceDatabase.packed`): per frame type, one
contiguous ``(N_devices, n_bins)`` frequency matrix, one ``(N_devices,)``
weight vector, and the unit-normalised frequency rows — so Algorithm 1
for cosine reduces to one matrix–vector product per frame type (see
DESIGN.md "Batch matrix layout").  The packed view is cached and
rebuilt lazily after :meth:`add`/:meth:`remove`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.signature import Signature, SignatureBuilder
from repro.core.similarity import normalize_rows


@dataclass(frozen=True, eq=False)
class PackedDatabase:
    """Contiguous per-frame-type matrix view of a reference database.

    Device order matches the database's insertion order, so row ``i``
    of every matrix describes ``devices[i]``.  Devices lacking a frame
    type get an all-zero frequency row and weight 0 — exactly the
    "missing type contributes 0" rule of Algorithm 1.
    """

    devices: tuple[MacAddress, ...]
    frame_types: tuple[str, ...]
    #: ftype → ``(N, n_bins)`` percentage-frequency matrix.
    frequencies: dict[str, np.ndarray]
    #: ftype → ``(N,)`` reference frame-type weights.
    weights: dict[str, np.ndarray]
    #: ftype → ``(N, n_bins)`` unit rows ``r_i/‖r_i‖`` (cosine fast path).
    normalized: dict[str, np.ndarray]

    @classmethod
    def from_signatures(
        cls, entries: list[tuple[MacAddress, Signature]]
    ) -> "PackedDatabase | None":
        """Pack signatures into matrices; ``None`` if they are ragged.

        Ragged means two signatures disagree on a frame type's bin
        count, in which case no rectangular matrix exists and callers
        must stay on the scalar path.
        """
        devices = tuple(device for device, _ in entries)
        bin_counts: dict[str, int] = {}
        for _, signature in entries:
            for ftype_key, histogram in signature.histograms.items():
                bins = int(histogram.shape[-1])
                if bin_counts.setdefault(ftype_key, bins) != bins:
                    return None
        frame_types = tuple(bin_counts)
        frequencies: dict[str, np.ndarray] = {}
        weights: dict[str, np.ndarray] = {}
        normalized: dict[str, np.ndarray] = {}
        for ftype_key in frame_types:
            matrix = np.zeros((len(entries), bin_counts[ftype_key]), dtype=np.float64)
            weight = np.zeros(len(entries), dtype=np.float64)
            for row, (_, signature) in enumerate(entries):
                histogram = signature.histogram(ftype_key)
                if histogram is not None:
                    matrix[row] = histogram
                    weight[row] = signature.weight(ftype_key)
            frequencies[ftype_key] = matrix
            weights[ftype_key] = weight
            normalized[ftype_key] = normalize_rows(matrix)
        return cls(
            devices=devices,
            frame_types=frame_types,
            frequencies=frequencies,
            weights=weights,
            normalized=normalized,
        )

    def bin_count(self, ftype_key: str) -> int | None:
        """Histogram width of one frame type (``None`` if absent)."""
        matrix = self.frequencies.get(ftype_key)
        return None if matrix is None else int(matrix.shape[-1])


class ReferenceDatabase:
    """Signatures of the known (authorised) devices."""

    def __init__(self) -> None:
        self._signatures: dict[MacAddress, Signature] = {}
        self._packed: PackedDatabase | None = None
        self._packed_stale = True

    @classmethod
    def from_training(
        cls, builder: SignatureBuilder, frames: list[CapturedFrame]
    ) -> "ReferenceDatabase":
        """Learning phase: one signature per device in the training trace."""
        database = cls()
        for sender, signature in builder.build(frames).items():
            database.add(sender, signature)
        return database

    def add(self, device: MacAddress, signature: Signature) -> None:
        """Register (or replace) one reference device's signature."""
        self._signatures[device] = signature
        self._packed_stale = True

    def remove(self, device: MacAddress) -> None:
        """Forget a reference device."""
        del self._signatures[device]
        self._packed_stale = True

    def get(self, device: MacAddress) -> Signature | None:
        """Signature of one device, if known."""
        return self._signatures.get(device)

    def packed(self) -> PackedDatabase | None:
        """The cached matrix view (``None`` for empty/ragged databases).

        Rebuilt lazily after membership changes.  Mutating a stored
        :class:`Signature` *in place* is not tracked — re-:meth:`add`
        it to refresh the pack.
        """
        if self._packed_stale:
            self._packed = (
                PackedDatabase.from_signatures(list(self._signatures.items()))
                if self._signatures
                else None
            )
            self._packed_stale = False
        return self._packed

    def __contains__(self, device: MacAddress) -> bool:
        return device in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def __iter__(self) -> Iterator[MacAddress]:
        return iter(self._signatures)

    def items(self) -> Iterator[tuple[MacAddress, Signature]]:
        """(device, signature) pairs in insertion order."""
        return iter(self._signatures.items())

    @property
    def devices(self) -> list[MacAddress]:
        """All reference devices."""
        return list(self._signatures)
