"""The reference database (learning phase).

Built from a training trace, the database stores one signature per
reference device (Section IV-B).  It assumes a clean learning stage —
the paper's pollution attack against this assumption is modelled in
:mod:`repro.applications.attacks`.
"""

from __future__ import annotations

from typing import Iterator

from repro.dot11.capture import CapturedFrame
from repro.dot11.mac import MacAddress
from repro.core.signature import Signature, SignatureBuilder


class ReferenceDatabase:
    """Signatures of the known (authorised) devices."""

    def __init__(self) -> None:
        self._signatures: dict[MacAddress, Signature] = {}

    @classmethod
    def from_training(
        cls, builder: SignatureBuilder, frames: list[CapturedFrame]
    ) -> "ReferenceDatabase":
        """Learning phase: one signature per device in the training trace."""
        database = cls()
        for sender, signature in builder.build(frames).items():
            database.add(sender, signature)
        return database

    def add(self, device: MacAddress, signature: Signature) -> None:
        """Register (or replace) one reference device's signature."""
        self._signatures[device] = signature

    def remove(self, device: MacAddress) -> None:
        """Forget a reference device."""
        del self._signatures[device]

    def get(self, device: MacAddress) -> Signature | None:
        """Signature of one device, if known."""
        return self._signatures.get(device)

    def __contains__(self, device: MacAddress) -> bool:
        return device in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def __iter__(self) -> Iterator[MacAddress]:
        return iter(self._signatures)

    def items(self) -> Iterator[tuple[MacAddress, Signature]]:
        """(device, signature) pairs in insertion order."""
        return iter(self._signatures.items())

    @property
    def devices(self) -> list[MacAddress]:
        """All reference devices."""
        return list(self._signatures)
