"""Horizontal sharding of the reference database (DESIGN.md §5).

The paper's monitor fingerprints every device the sniffer has ever
seen; at production scale that database no longer fits one packed
matrix in one interpreter.  :class:`ShardedReferenceDatabase` splits
the device population across ``K`` ordinary
:class:`~repro.core.database.ReferenceDatabase` shards by
**consistent-hashing the MAC address** onto a vnode ring — the mapping
is a pure function of the address, stable across processes and
restarts, and growing the ring from ``K`` to ``K+1`` shards relocates
only ``≈1/(K+1)`` of the devices.

Matching fans Algorithm 1 out per shard: every shard is a complete,
self-contained reference database, so each one is matched with the
unmodified single-shard engine
(:func:`~repro.core.matcher.batch_match_signatures`) and the per-shard
similarity columns are stitched back into global insertion order.  The
per-shard numbers are therefore *identical* to running the engine on
that shard alone; cross-partition sums agree with the unsharded engine
to BLAS reduction-order (≈1 ULP — see DESIGN.md §5 for why bitwise
equality across different matrix partitions is not attainable).

Two executors drive the fan-out: the default
:class:`SequentialShardExecutor` (in-process loop) and
:class:`ProcessPoolShardExecutor`, which parks one snapshot of the
shard set in a ``concurrent.futures`` worker pool so repeated queries
only ship candidates, not references.  Top-k queries merge per-shard
top-k lists — exact, because a global top-k can only contain devices
that are top-k within their own shard.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterator, Sequence

import numpy as np

from repro.dot11.mac import MacAddress
from repro.core.database import MergeReport, ReferenceDatabase, merge_databases
from repro.core.matcher import batch_match_signatures
from repro.core.signature import Signature
from repro.core.similarity import SimilarityMeasure, cosine_similarity

#: Virtual nodes per shard on the consistent-hash ring.  More vnodes
#: flatten the device distribution across shards at the cost of a
#: larger (bisected, so cheap) ring.
DEFAULT_VNODES = 64


def _hash64(data: bytes) -> int:
    """Stable 64-bit hash (blake2b) — independent of PYTHONHASHSEED."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Maps MAC addresses onto shard indices via a vnode ring.

    Each shard owns :data:`DEFAULT_VNODES` points on a 64-bit ring; a
    device lands on the first point at or clockwise-after the hash of
    its address.  The assignment is deterministic across processes
    (blake2b, not ``hash()``) and *consistent*: re-ringing ``K`` →
    ``K+1`` shards only moves the devices whose arc the new shard's
    vnodes capture, ≈``1/(K+1)`` of the population.
    """

    def __init__(self, shard_count: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shard_count < 1:
            raise ValueError(f"shard count must be >= 1: {shard_count}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.shard_count = shard_count
        self.vnodes = vnodes
        points = sorted(
            (_hash64(f"shard:{shard}:vnode:{vnode}".encode("ascii")), shard)
            for shard in range(shard_count)
            for vnode in range(vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_of(self, device: MacAddress) -> int:
        """The shard index owning one MAC address."""
        position = bisect.bisect_right(self._hashes, _hash64(device.to_bytes()))
        return self._owners[position % len(self._owners)]


def _local_top_k(scores: np.ndarray, k: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-row top-k of one shard's ``(M, N_shard)`` score matrix.

    Returns ``(columns, values)`` per candidate, ordered by descending
    score with ties broken towards the lowest column — the insertion
    tie-break, applied shard-locally (shard-local column order is
    global insertion order restricted to the shard).
    """
    out: list[tuple[np.ndarray, np.ndarray]] = []
    for row in scores:
        if row.shape[0] <= k:
            order = np.argsort(-row, kind="stable")
        else:
            # argpartition bounds the sort to the k candidates;
            # sorting the partition first makes the stable score sort
            # break ties towards the lowest column.
            part = np.sort(np.argpartition(-row, k - 1)[:k])
            order = part[np.argsort(-row[part], kind="stable")]
            order = _stable_tie_fixup(row, order, k)
        out.append((order[:k], row[order[:k]]))
    return out


def _stable_tie_fixup(row: np.ndarray, order: np.ndarray, k: int) -> np.ndarray:
    """Re-select ties at the k-th score by earliest insertion order.

    ``argpartition`` picks an arbitrary subset of the columns tied with
    the k-th best score; the documented tie-break is earliest-registered
    (lowest column).  Replace the tied tail with the lowest-index
    columns holding that score.
    """
    boundary = row[order[k - 1]]
    tied = np.flatnonzero(row == boundary)
    if len(tied) <= 1:
        return order
    keep = [i for i in order[:k] if row[i] > boundary]
    return np.asarray(keep + list(tied[: k - len(keep)]), dtype=order.dtype)


class SequentialShardExecutor:
    """Default executor: match the shards one after another, in-process."""

    def map_shards(
        self,
        sharded: "ShardedReferenceDatabase",
        shard_indices: Sequence[int],
        candidates: Sequence[Signature],
        measure: SimilarityMeasure,
    ) -> list[np.ndarray]:
        """Per-shard ``(M, len(shard))`` similarity matrices, in order."""
        return [
            batch_match_signatures(candidates, sharded.shards[index], measure)
            for index in shard_indices
        ]

    def map_top_k(
        self,
        sharded: "ShardedReferenceDatabase",
        shard_indices: Sequence[int],
        candidates: Sequence[Signature],
        k: int,
        measure: SimilarityMeasure,
    ) -> list[list[tuple[np.ndarray, np.ndarray]]]:
        """Per-shard, per-candidate local top-k ``(columns, scores)``."""
        return [
            _local_top_k(
                batch_match_signatures(candidates, sharded.shards[index], measure), k
            )
            for index in shard_indices
        ]

    def close(self) -> None:
        """Nothing to release."""


# -- process-pool plumbing (module-level so workers can unpickle it) ----
_WORKER_SHARDS: tuple[ReferenceDatabase, ...] | None = None


def _pool_initializer(shards: tuple[ReferenceDatabase, ...]) -> None:
    global _WORKER_SHARDS
    _WORKER_SHARDS = shards


def _pool_match_shard(
    shard_index: int,
    candidates: Sequence[Signature],
    measure: SimilarityMeasure,
) -> np.ndarray:
    assert _WORKER_SHARDS is not None, "worker pool not initialised"
    return batch_match_signatures(candidates, _WORKER_SHARDS[shard_index], measure)


def _pool_top_k_shard(
    shard_index: int,
    candidates: Sequence[Signature],
    k: int,
    measure: SimilarityMeasure,
) -> list[tuple[np.ndarray, np.ndarray]]:
    assert _WORKER_SHARDS is not None, "worker pool not initialised"
    scores = batch_match_signatures(candidates, _WORKER_SHARDS[shard_index], measure)
    # Selecting worker-side keeps the reply k columns wide instead of
    # the shard's full score matrix — the fan-out's bandwidth win.
    return _local_top_k(scores, k)


class ProcessPoolShardExecutor:
    """Fan shard matching out to a ``concurrent.futures`` process pool.

    Workers receive the shard snapshot once at pool start-up (with the
    ``fork`` start method the snapshot is inherited copy-on-write, so
    nothing is pickled); each query then ships only the candidate
    signatures and gets the per-shard score matrix back.  Mutating the
    sharded database bumps its revision counter and the next query
    transparently respawns the pool on the fresh snapshot.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        sharded: "ShardedReferenceDatabase",
        max_workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self._sharded = sharded
        self._max_workers = max_workers
        self._start_method = start_method
        self._pool = None
        self._spawned_revision: int | None = None

    def _ensure_pool(self) -> None:
        if self._pool is not None and self._spawned_revision == self._sharded.revision:
            return
        self.close()
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        method = self._start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else available[0]
        context = multiprocessing.get_context(method)
        workers = self._max_workers or self._sharded.shard_count
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_pool_initializer,
            initargs=(self._sharded.shards,),
        )
        self._spawned_revision = self._sharded.revision

    def map_shards(
        self,
        sharded: "ShardedReferenceDatabase",
        shard_indices: Sequence[int],
        candidates: Sequence[Signature],
        measure: SimilarityMeasure,
    ) -> list[np.ndarray]:
        """Per-shard ``(M, len(shard))`` similarity matrices, in order."""
        if sharded is not self._sharded:
            raise ValueError("executor is bound to a different sharded database")
        self._ensure_pool()
        futures = [
            self._pool.submit(_pool_match_shard, index, tuple(candidates), measure)
            for index in shard_indices
        ]
        return [future.result() for future in futures]

    def map_top_k(
        self,
        sharded: "ShardedReferenceDatabase",
        shard_indices: Sequence[int],
        candidates: Sequence[Signature],
        k: int,
        measure: SimilarityMeasure,
    ) -> list[list[tuple[np.ndarray, np.ndarray]]]:
        """Per-shard local top-k, selected worker-side."""
        if sharded is not self._sharded:
            raise ValueError("executor is bound to a different sharded database")
        self._ensure_pool()
        futures = [
            self._pool.submit(_pool_top_k_shard, index, tuple(candidates), k, measure)
            for index in shard_indices
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._spawned_revision = None

    def __enter__(self) -> "ProcessPoolShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ShardedReferenceDatabase:
    """A reference database consistent-hashed across K shards.

    Drop-in for :class:`~repro.core.database.ReferenceDatabase` in the
    matching APIs: :func:`~repro.core.matcher.match_signature`,
    :func:`~repro.core.matcher.batch_match_signatures` and
    :func:`~repro.core.matcher.best_match` detect the sharded database
    and fan out per shard, so the detection pipeline and all three
    Section VII applications accept one transparently.

    Device order (for score columns and tie-breaks) is **global
    insertion order** — the order devices were first registered,
    regardless of which shard owns them — matching the unsharded
    database's semantics.
    """

    #: Duck-typed dispatch marker for :mod:`repro.core.matcher`.
    is_sharded = True

    def __init__(
        self, shard_count: int = 4, vnodes: int = DEFAULT_VNODES
    ) -> None:
        self.ring = ConsistentHashRing(shard_count, vnodes)
        self._shards = tuple(ReferenceDatabase() for _ in range(shard_count))
        #: Global insertion-ordered device registry (ordered-set dict).
        self._registry: dict[MacAddress, None] = {}
        self.revision = 0

    @classmethod
    def from_database(
        cls,
        database: ReferenceDatabase,
        shard_count: int = 4,
        vnodes: int = DEFAULT_VNODES,
    ) -> "ShardedReferenceDatabase":
        """Reshard an ordinary database (insertion order preserved)."""
        sharded = cls(shard_count, vnodes)
        for device, signature in database.items():
            sharded.add(device, signature)
        return sharded

    # -- membership ----------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def shards(self) -> tuple[ReferenceDatabase, ...]:
        """The per-shard databases (index = ring shard index)."""
        return self._shards

    def shard_index(self, device: MacAddress) -> int:
        """Which shard owns one device (pure function of the MAC)."""
        return self.ring.shard_of(device)

    def add(self, device: MacAddress, signature: Signature) -> None:
        """Register (or replace) one device on its owning shard."""
        self._shards[self.ring.shard_of(device)].add(device, signature)
        self._registry.setdefault(device, None)
        self.revision += 1

    def remove(self, device: MacAddress) -> bool:
        """Forget one device; ``False`` (no-op) if unknown."""
        removed = self._shards[self.ring.shard_of(device)].remove(device)
        if removed:
            del self._registry[device]
            self.revision += 1
        return removed

    def get(self, device: MacAddress) -> Signature | None:
        """Signature of one device, if known."""
        return self._shards[self.ring.shard_of(device)].get(device)

    def merge(
        self,
        source: "ReferenceDatabase | ShardedReferenceDatabase",
        on_conflict: str = "replace",
    ) -> MergeReport:
        """Fold another (sharded or not) database into this one.

        Same conflict policy as
        :meth:`~repro.core.database.ReferenceDatabase.merge` — both
        delegate to :func:`~repro.core.database.merge_databases`.
        """
        return merge_databases(self, source, on_conflict)

    def __contains__(self, device: MacAddress) -> bool:
        return device in self._registry

    def __len__(self) -> int:
        return len(self._registry)

    def __iter__(self) -> Iterator[MacAddress]:
        return iter(list(self._registry))

    @property
    def devices(self) -> list[MacAddress]:
        """All devices, in global insertion order (a snapshot)."""
        return list(self._registry)

    def items(self) -> list[tuple[MacAddress, Signature]]:
        """(device, signature) pairs in global insertion order."""
        return [(device, self.get(device)) for device in self._registry]

    def shard_sizes(self) -> list[int]:
        """Device count per shard (load-balance diagnostics)."""
        return [len(shard) for shard in self._shards]

    # -- matching ------------------------------------------------------
    def batch_match(
        self,
        candidates: Sequence[Signature],
        measure: SimilarityMeasure = cosine_similarity,
        executor: "SequentialShardExecutor | ProcessPoolShardExecutor | None" = None,
    ) -> np.ndarray:
        """Algorithm 1 fanned out per shard, merged into global order.

        Returns the ``(len(candidates), len(self))`` similarity matrix
        with columns in :attr:`devices` order.  Every column holds
        exactly the scores the single-shard engine computes for that
        device's shard.
        """
        devices = self.devices
        out = np.zeros((len(candidates), len(devices)), dtype=np.float64)
        if not candidates or not devices:
            return out
        column_of = {device: column for column, device in enumerate(devices)}
        shard_indices = [
            index for index, shard in enumerate(self._shards) if len(shard)
        ]
        chosen = executor if executor is not None else SequentialShardExecutor()
        results = chosen.map_shards(self, shard_indices, candidates, measure)
        for index, scores in zip(shard_indices, results):
            columns = [column_of[device] for device in self._shards[index].devices]
            out[:, columns] = scores
        return out

    def match(
        self,
        candidate: Signature,
        measure: SimilarityMeasure = cosine_similarity,
        executor: "SequentialShardExecutor | ProcessPoolShardExecutor | None" = None,
    ) -> dict[MacAddress, float]:
        """Single-candidate Algorithm 1, in global insertion order."""
        scores = self.batch_match([candidate], measure, executor)
        return dict(zip(self.devices, scores[0].tolist()))

    def top_k(
        self,
        candidates: Sequence[Signature],
        k: int,
        measure: SimilarityMeasure = cosine_similarity,
        executor: "SequentialShardExecutor | ProcessPoolShardExecutor | None" = None,
    ) -> list[list[tuple[MacAddress, float]]]:
        """The k best references per candidate, merged across shards.

        Each shard contributes only its local top-k (a global top-k
        device is necessarily top-k within its own shard, so the merge
        loses nothing — DESIGN.md §5); per-candidate lists are ordered
        by descending score with ties broken towards earlier global
        insertion, the same tie-break
        :func:`~repro.core.matcher.best_match` uses.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1: {k}")
        devices = self.devices
        if not devices or not candidates:
            return [[] for _ in candidates]
        column_of = {device: column for column, device in enumerate(devices)}
        shard_indices = [
            index for index, shard in enumerate(self._shards) if len(shard)
        ]
        chosen = executor if executor is not None else SequentialShardExecutor()
        per_shard = chosen.map_top_k(self, shard_indices, candidates, k, measure)
        shard_columns = {
            index: [column_of[device] for device in self._shards[index].devices]
            for index in shard_indices
        }
        merged: list[list[tuple[MacAddress, float]]] = []
        for candidate_row in range(len(candidates)):
            entries: list[tuple[int, float]] = []
            for slot, index in enumerate(shard_indices):
                local_columns, local_scores = per_shard[slot][candidate_row]
                to_global = shard_columns[index]
                entries.extend(
                    (to_global[int(local)], float(score))
                    for local, score in zip(local_columns, local_scores)
                )
            entries.sort(key=lambda entry: (-entry[1], entry[0]))
            merged.append(
                [(devices[column], score) for column, score in entries[:k]]
            )
        return merged
