"""End-to-end evaluation harness.

``evaluate_trace`` runs the paper's full protocol on one trace for one
(or all) network parameters: split into training/validation, learn the
reference database, window the validation part, match candidates and
score both tests.  The benchmark suite calls this once per
table/figure cell.

The whole protocol rides the columnar backbone (DESIGN.md §6): the
trace is interned into a :class:`~repro.traces.table.FrameTable` once,
the train/validation split and every detection window are
``np.searchsorted`` views of it, signature construction scatters
vectorized observation batches with ``np.bincount``, and all window
candidates are matched against the packed reference matrices in a
single :func:`~repro.core.matcher.batch_match_signatures` call (see
DESIGN.md "Batch matrix layout").  Parameters without a columnar
extractor transparently fall back to the object reference path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.database import ReferenceDatabase
from repro.core.detection import (
    DetectionConfig,
    IdentificationOutcome,
    SimilarityOutcome,
    evaluate_identification,
    evaluate_similarity,
    extract_window_candidates,
)
from repro.core.parameters import ALL_PARAMETERS, NetworkParameter
from repro.core.signature import SignatureBuilder
from repro.traces.trace import Trace


@dataclass
class EvaluationResult:
    """Everything the paper reports for one (trace, parameter) pair."""

    trace_name: str
    parameter: NetworkParameter
    reference_devices: int
    similarity: SimilarityOutcome
    identification: IdentificationOutcome

    @property
    def auc(self) -> float:
        """Similarity-test AUC (Table II cell)."""
        return self.similarity.auc

    def identification_at(self, fpr_budget: float) -> float:
        """Identification ratio at an FPR budget (Table III cell)."""
        return self.identification.ratio_at_fpr(fpr_budget)


def evaluate_trace(
    trace: Trace,
    parameter: NetworkParameter,
    training_s: float,
    config: DetectionConfig | None = None,
) -> EvaluationResult:
    """Run the full evaluation protocol for one network parameter."""
    cfg = config if config is not None else DetectionConfig()
    builder = SignatureBuilder(
        parameter, min_observations=cfg.min_observations
    )
    trace.table()  # intern once; the split below shares column views
    split = trace.split(training_s)
    database = ReferenceDatabase.from_training_table(
        builder, split.training.table()
    )
    candidates = extract_window_candidates(
        split.validation, builder, database, cfg
    )
    return EvaluationResult(
        trace_name=trace.name,
        parameter=parameter,
        reference_devices=len(database),
        similarity=evaluate_similarity(candidates, database, cfg),
        identification=evaluate_identification(candidates, database, cfg),
    )


def evaluate_all_parameters(
    trace: Trace,
    training_s: float,
    config: DetectionConfig | None = None,
) -> dict[str, EvaluationResult]:
    """Table II/III row: every parameter evaluated on one trace."""
    return {
        parameter.name: evaluate_trace(trace, parameter, training_s, config)
        for parameter in ALL_PARAMETERS
    }
