"""Algorithm 1: matching a candidate signature against the database.

For every frame type the candidate exhibits, the candidate histogram is
compared with each reference's histogram of the same frame type; the
per-type similarity is weighted by the **reference** signature's frame
type weight and accumulated:

``sim_i += weight^ftype(r_i) × simCos(hist^ftype(c), hist^ftype(r_i))``

A reference lacking a frame type the candidate shows contributes 0 for
that type (its weight for the type is 0), naturally penalising
behavioural mismatches.  The result is the similarity vector
``<sim_1, …, sim_N>`` over the reference devices.

Matrix formulation
------------------

Because cosine similarity is a normalised inner product, Algorithm 1
is a sum of matrix products.  Pack the database per frame type ``f``
into the unit-row matrix ``R̂_f`` (row ``i`` is
``hist^f(r_i)/‖hist^f(r_i)‖``, all-zero when device ``i`` lacks ``f``)
and the weight vector ``w_f`` (:class:`~repro.core.database.PackedDatabase`);
normalise the candidate histogram to ``ĉ_f``.  Then the whole
similarity vector is

``sim = Σ_f  w_f ⊙ clip(R̂_f ĉ_f, 0, 1)``

one matrix–vector product per frame type instead of N·|ftypes| scalar
cosine calls.  For M candidates at once, stack the ``ĉ_f`` rows into
``Ĉ_f`` and the ``(M, N)`` similarity matrix is
``Σ_f clip(Ĉ_f R̂_fᵀ, 0, 1) ⊙ w_f`` — a matrix–matrix product per
frame type (:func:`batch_match_signatures`).  Zero-norm rows stay
all-zero under :func:`~repro.core.similarity.normalize_rows`, which
reproduces the scalar zero-norm convention, and a candidate frame type
no reference exhibits contributes nothing, exactly as in the scalar
loop.

:func:`match_signature` takes this fast path automatically when the
measure *is* :func:`~repro.core.similarity.cosine_similarity`; any
other :class:`~repro.core.similarity.SimilarityMeasure` (or a database
that cannot be packed into rectangular matrices) falls back to the
original scalar loop with identical results.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dot11.mac import MacAddress
from repro.core.database import PackedDatabase, ReferenceDatabase
from repro.core.signature import Signature
from repro.core.similarity import (
    SimilarityMeasure,
    _EPS,
    cosine_similarity,
    normalize_rows,
    unit_cosine_product,
)


def _cosine_scores(candidate: Signature, packed: PackedDatabase) -> np.ndarray:
    """The matrix formulation for one candidate: ``Σ_f w_f ⊙ clip(R̂_f ĉ_f)``.

    Frame types accumulate in sorted order, so the floating-point sum
    is independent of signature/database construction order — the
    canonical-order guarantee the sharded engine's per-shard fan-out
    relies on (DESIGN.md §5).
    """
    totals = np.zeros(len(packed.devices), dtype=np.float64)
    for ftype_key in sorted(candidate.histograms):
        candidate_hist = candidate.histograms[ftype_key]
        references = packed.normalized.get(ftype_key)
        if references is None:
            continue  # no reference exhibits this type: contributes 0
        norm = float(np.linalg.norm(candidate_hist))
        if norm < _EPS:
            continue
        scores = unit_cosine_product(candidate_hist / norm, references)[0]
        totals += packed.weights[ftype_key] * scores
    return totals


def _scalar_match(
    candidate: Signature,
    database: ReferenceDatabase,
    measure: SimilarityMeasure,
) -> dict[MacAddress, float]:
    """The original per-pair loop, kept for non-cosine measures."""
    similarities: dict[MacAddress, float] = {device: 0.0 for device in database}
    for ftype_key, candidate_hist in candidate.histograms.items():
        for device, reference in database.items():
            reference_hist = reference.histogram(ftype_key)
            if reference_hist is None:
                continue
            score = measure(candidate_hist, reference_hist)
            similarities[device] += reference.weight(ftype_key) * score
    return similarities


def match_signature(
    candidate: Signature,
    database: ReferenceDatabase,
    measure: SimilarityMeasure = cosine_similarity,
) -> dict[MacAddress, float]:
    """Run Algorithm 1; returns per-reference combined similarities.

    Uses the packed matrix fast path for the cosine measure and the
    scalar loop otherwise; both yield the same numbers.  A
    :class:`~repro.core.sharding.ShardedReferenceDatabase` is accepted
    transparently — the call fans out per shard and merges.
    """
    if getattr(database, "is_sharded", False):
        return database.match(candidate, measure)
    packed = database.packed() if measure is cosine_similarity else None
    if packed is None:
        return _scalar_match(candidate, database, measure)
    scores = _cosine_scores(candidate, packed)
    return dict(zip(packed.devices, scores.tolist()))


def batch_match_signatures(
    candidates: Sequence[Signature],
    database: ReferenceDatabase,
    measure: SimilarityMeasure = cosine_similarity,
) -> np.ndarray:
    """Algorithm 1 for many candidates at once.

    Returns the ``(len(candidates), len(database))`` similarity matrix
    whose row ``i`` equals ``match_signature(candidates[i], database,
    measure)`` values in database insertion order (``database.devices``).
    For the cosine measure this is one matrix–matrix product per frame
    type (accumulated in sorted frame-type order, so the float sum does
    not depend on database construction order); other measures fall
    back to the scalar loop per row.  A
    :class:`~repro.core.sharding.ShardedReferenceDatabase` is accepted
    transparently — the call fans out per shard and merges columns.
    """
    if getattr(database, "is_sharded", False):
        return database.batch_match(candidates, measure)
    packed = database.packed() if measure is cosine_similarity else None
    if packed is None:
        return np.array(
            [
                list(_scalar_match(candidate, database, measure).values())
                for candidate in candidates
            ],
            dtype=np.float64,
        ).reshape(len(candidates), len(database))
    totals = np.zeros((len(candidates), len(packed.devices)), dtype=np.float64)
    for ftype_key in sorted(packed.normalized):
        references = packed.normalized[ftype_key]
        rows = [
            row
            for row, candidate in enumerate(candidates)
            if ftype_key in candidate.histograms
        ]
        if not rows:
            continue
        stacked = np.stack(
            [candidates[row].histograms[ftype_key] for row in rows]
        ).astype(np.float64, copy=False)
        scores = unit_cosine_product(normalize_rows(stacked), references)
        totals[rows] += scores * packed.weights[ftype_key]
    return totals


def best_match(
    candidate: Signature,
    database: ReferenceDatabase,
    measure: SimilarityMeasure = cosine_similarity,
) -> tuple[MacAddress | None, float]:
    """The identification test's core: the argmax reference device.

    Returns ``(None, 0.0)`` on an empty database.  Ties break towards
    the earliest-registered reference for determinism.
    """
    similarities = match_signature(candidate, database, measure)
    winner: MacAddress | None = None
    best_score = float("-inf")
    for device, score in similarities.items():
        if score > best_score:
            winner = device
            best_score = score
    if winner is None:
        return None, 0.0
    return winner, best_score
