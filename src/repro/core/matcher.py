"""Algorithm 1: matching a candidate signature against the database.

For every frame type the candidate exhibits, the candidate histogram is
compared with each reference's histogram of the same frame type; the
per-type similarity is weighted by the **reference** signature's frame
type weight and accumulated:

``sim_i += weight^ftype(r_i) × simCos(hist^ftype(c), hist^ftype(r_i))``

A reference lacking a frame type the candidate shows contributes 0 for
that type (its weight for the type is 0), naturally penalising
behavioural mismatches.  The result is the similarity vector
``<sim_1, …, sim_N>`` over the reference devices.
"""

from __future__ import annotations

from repro.dot11.mac import MacAddress
from repro.core.database import ReferenceDatabase
from repro.core.signature import Signature
from repro.core.similarity import SimilarityMeasure, cosine_similarity


def match_signature(
    candidate: Signature,
    database: ReferenceDatabase,
    measure: SimilarityMeasure = cosine_similarity,
) -> dict[MacAddress, float]:
    """Run Algorithm 1; returns per-reference combined similarities."""
    similarities: dict[MacAddress, float] = {device: 0.0 for device in database}
    for ftype_key, candidate_hist in candidate.histograms.items():
        for device, reference in database.items():
            reference_hist = reference.histogram(ftype_key)
            if reference_hist is None:
                continue
            score = measure(candidate_hist, reference_hist)
            similarities[device] += reference.weight(ftype_key) * score
    return similarities


def best_match(
    candidate: Signature,
    database: ReferenceDatabase,
    measure: SimilarityMeasure = cosine_similarity,
) -> tuple[MacAddress | None, float]:
    """The identification test's core: the argmax reference device.

    Returns ``(None, 0.0)`` on an empty database.  Ties break towards
    the earliest-registered reference for determinism.
    """
    similarities = match_signature(candidate, database, measure)
    winner: MacAddress | None = None
    best_score = float("-inf")
    for device, score in similarities.items():
        if score > best_score:
            winner = device
            best_score = score
    if winner is None:
        return None, 0.0
    return winner, best_score
