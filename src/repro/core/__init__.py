"""The paper's contribution: passive fingerprinting from global
network parameters.

Pipeline: captured frames → per-frame parameter extraction
(:mod:`repro.core.parameters`) → per-device, per-frame-type percentage
histograms (:mod:`repro.core.histogram`) → weighted signatures
(:mod:`repro.core.signature`, Definition 1) → cosine matching
(:mod:`repro.core.similarity`, :mod:`repro.core.matcher`, Algorithm 1)
→ similarity/identification tests with TPR/FPR/AUC metrics
(:mod:`repro.core.detection`, :mod:`repro.core.metrics`) → full
evaluation harness (:mod:`repro.core.pipeline`).
"""

from repro.core.database import MergeReport, PackedDatabase, ReferenceDatabase
from repro.core.sharding import (
    ConsistentHashRing,
    ProcessPoolShardExecutor,
    SequentialShardExecutor,
    ShardedReferenceDatabase,
)
from repro.core.detection import (
    DetectionConfig,
    IdentificationOutcome,
    SimilarityOutcome,
    evaluate_identification,
    evaluate_similarity,
    extract_window_candidates,
)
from repro.core.fusion import FusedSignature, FusionMatcher
from repro.core.histogram import BinSpec, CategoricalBins, Histogram, UniformBins
from repro.core.joint import JointBins, JointParameter
from repro.core.matcher import batch_match_signatures, best_match, match_signature
from repro.core.metrics import CurvePoint, SimilarityCurve, area_under_curve
from repro.core.parameters import (
    ALL_PARAMETERS,
    FrameSize,
    InterArrivalTime,
    MediumAccessTime,
    NetworkParameter,
    Observation,
    TransmissionRate,
    TransmissionTime,
    parameter_by_name,
)
from repro.core.pipeline import EvaluationResult, evaluate_trace
from repro.core.signature import Signature, SignatureBuilder
from repro.core.similarity import (
    bhattacharyya_similarity,
    chi_square_similarity,
    cosine_distance,
    cosine_similarity,
    cosine_similarity_matrix,
    intersection_similarity,
    jensen_shannon_similarity,
    normalize_rows,
    similarity_measure_by_name,
    unit_cosine_product,
)

__all__ = [
    "ALL_PARAMETERS",
    "BinSpec",
    "CategoricalBins",
    "ConsistentHashRing",
    "CurvePoint",
    "DetectionConfig",
    "EvaluationResult",
    "FrameSize",
    "FusedSignature",
    "FusionMatcher",
    "Histogram",
    "IdentificationOutcome",
    "InterArrivalTime",
    "JointBins",
    "JointParameter",
    "MediumAccessTime",
    "MergeReport",
    "NetworkParameter",
    "Observation",
    "PackedDatabase",
    "ProcessPoolShardExecutor",
    "ReferenceDatabase",
    "SequentialShardExecutor",
    "ShardedReferenceDatabase",
    "Signature",
    "SignatureBuilder",
    "SimilarityCurve",
    "SimilarityOutcome",
    "TransmissionRate",
    "TransmissionTime",
    "UniformBins",
    "area_under_curve",
    "batch_match_signatures",
    "best_match",
    "bhattacharyya_similarity",
    "chi_square_similarity",
    "cosine_distance",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "evaluate_identification",
    "evaluate_similarity",
    "evaluate_trace",
    "extract_window_candidates",
    "intersection_similarity",
    "jensen_shannon_similarity",
    "match_signature",
    "normalize_rows",
    "parameter_by_name",
    "similarity_measure_by_name",
    "unit_cosine_product",
]
