"""Scenario assembly and the simulation driver.

A :class:`Scenario` turns declarative :class:`StationSpec` entries into
a wired simulation: stations with their profiles, driver-level services
(power save, probe scanning) derived from those profiles, application
traffic sources, one or more APs, a monitor position, and the shared
medium.  ``run()`` executes the event loop and returns the monitor's
capture — the exact artefact the fingerprinting layer consumes.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame
from repro.dot11.mac import MacAddress, vendor_mac
from repro.dot11.timing import TIMING_BG_MIXED, MacTiming
from repro.simulator.ap import AccessPoint
from repro.simulator.channel import ChannelModel, Mobility, Position
from repro.simulator.device import Station
from repro.simulator.events import EventQueue
from repro.simulator.medium import Medium
from repro.simulator.profiles import DeviceProfile, profile_by_name
from repro.simulator.traffic import PowerSaveService, ProbeScanService, TrafficSource


@dataclass
class StationSpec:
    """Declarative description of one simulated client station.

    ``profile`` may be a profile object or a library name.  ``sources``
    carry the station's *application* traffic; driver-level behaviours
    (power-save nulls, probe scans) are derived from the profile unless
    ``auto_services`` is disabled.  ``downlink`` sources are attached
    to the AP with this station as peer (models download traffic).
    """

    name: str
    profile: DeviceProfile | str
    sources: list[TrafficSource] = field(default_factory=list)
    downlink: list[TrafficSource] = field(default_factory=list)
    arrival_s: float = 0.0
    departure_s: float | None = None
    speed_mps: float = 0.0
    pause_s: float = 30.0
    auto_services: bool = True
    mac: MacAddress | None = None

    def resolved_profile(self) -> DeviceProfile:
        """The concrete device profile for this spec."""
        if isinstance(self.profile, DeviceProfile):
            return self.profile
        return profile_by_name(self.profile)


@dataclass(slots=True)
class SimulationResult:
    """Output of one scenario run."""

    captures: list[CapturedFrame]
    station_names: dict[MacAddress, str]
    duration_s: float
    exchange_count: int
    collision_rounds: int
    _table: object = field(default=None, init=False, repr=False, compare=False)

    @property
    def frame_count(self) -> int:
        """Number of frames the monitor captured."""
        return len(self.captures)

    def table(self):
        """The capture as a columnar
        :class:`~repro.traces.table.FrameTable` (interned once, cached).

        The table references ``captures`` rather than copying it, so
        analysis code gets the vectorized view at the cost of a single
        interning pass.
        """
        if self._table is None:
            from repro.traces.table import FrameTable

            self._table = FrameTable.from_frames(self.captures)
        return self._table


class Scenario:
    """A complete single-channel 802.11 environment to simulate."""

    def __init__(
        self,
        duration_s: float,
        seed: int = 7,
        encrypted: bool = False,
        area_m: float = 40.0,
        channel_model: ChannelModel | None = None,
        timing: MacTiming = TIMING_BG_MIXED,
        channel_number: int = 6,
        ap_count: int = 1,
        ap_profile: DeviceProfile | str = "atheros-ar9285-ath9k",
        ap_beacon_size: int = 170,
        ap_probe_response_size: int = 260,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if ap_count < 0:
            raise ValueError(f"ap_count must be >= 0: {ap_count}")
        self.duration_s = duration_s
        self.seed = seed
        self.encrypted = encrypted
        self.area_m = area_m
        self.channel_model = channel_model if channel_model is not None else ChannelModel()
        self.timing = timing
        self.channel_number = channel_number
        self.ap_count = ap_count
        self.ap_profile = ap_profile
        self.ap_beacon_size = ap_beacon_size
        self.ap_probe_response_size = ap_probe_response_size
        self.specs: list[StationSpec] = []

    def add_station(self, spec: StationSpec) -> None:
        """Register one client station spec.

        Explicit MAC collisions are rejected here — at construction —
        rather than surfacing as two stations silently sharing an
        identity deep inside the event loop.
        """
        if spec.mac is not None:
            for existing in self.specs:
                if existing.mac is not None and existing.mac == spec.mac:
                    raise ValueError(
                        f"station {spec.name!r}: MAC {spec.mac} already "
                        f"assigned to station {existing.name!r}"
                    )
        self.specs.append(spec)

    def validate(self) -> None:
        """Check the assembled scenario is runnable, before wiring.

        Raises :class:`ValueError` for specs that would otherwise fail
        (or silently misbehave) deep inside the event loop: no stations
        at all, duplicate station names or MACs, departure before
        arrival, negative arrival times.  The scenario library calls
        this on every preset it builds.
        """
        if not self.specs:
            raise ValueError("scenario has no stations")
        names: dict[str, StationSpec] = {}
        macs: dict[MacAddress, StationSpec] = {}
        for spec in self.specs:
            if spec.name in names:
                raise ValueError(f"duplicate station name: {spec.name!r}")
            names[spec.name] = spec
            if spec.mac is not None:
                if spec.mac in macs:
                    raise ValueError(
                        f"station {spec.name!r}: MAC {spec.mac} already "
                        f"assigned to station {macs[spec.mac].name!r}"
                    )
                macs[spec.mac] = spec
            if spec.arrival_s < 0:
                raise ValueError(
                    f"station {spec.name!r}: negative arrival {spec.arrival_s}"
                )
            if spec.departure_s is not None and spec.departure_s < spec.arrival_s:
                raise ValueError(
                    f"station {spec.name!r}: departure before arrival"
                )

    # ------------------------------------------------------------------
    def _profile_services(
        self, profile: DeviceProfile
    ) -> list[TrafficSource]:
        """Driver-level traffic implied by the profile."""
        services: list[TrafficSource] = [
            ProbeScanService(
                period_s=profile.probes.period_s,
                period_jitter_s=profile.probes.period_jitter_s,
                burst_size=profile.probes.burst_size,
                intra_burst_gap_ms=profile.probes.intra_burst_gap_ms,
                probe_size=profile.probes.probe_size,
            )
        ]
        if profile.power_save.enabled:
            services.append(
                PowerSaveService(
                    period_ms=profile.power_save.period_ms,
                    period_jitter_ms=profile.power_save.period_jitter_ms,
                    wake_gap_ms=profile.power_save.wake_gap_ms,
                    qos_null=profile.qos_capable,
                )
            )
        return services

    def run(self) -> SimulationResult:
        """Build the simulation, run it, and return the capture."""
        queue, medium, station_names = self._wire()
        queue.run_until(self.duration_s * 1e6)
        medium.verify_capture_order()
        return SimulationResult(
            captures=medium.captures,
            station_names=station_names,
            duration_s=self.duration_s,
            exchange_count=medium.exchange_count,
            collision_rounds=medium.collision_rounds,
        )

    def stream(self, chunk_s: float = 5.0) -> "Iterator[CapturedFrame]":
        """Run the simulation incrementally, yielding frames live.

        The event loop advances ``chunk_s`` of simulated time at a
        time and the monitor's capture buffer is drained after every
        step, so the generator feeds the streaming engine without ever
        holding the full trace — the simulator acts as a live traffic
        feed.  Frame order matches :meth:`run` exactly (same seed, same
        event schedule).
        """
        if chunk_s <= 0:
            raise ValueError(f"chunk size must be positive: {chunk_s}")
        queue, medium, _station_names = self._wire()
        duration_us = self.duration_s * 1e6
        chunk_us = chunk_s * 1e6
        previous_t = -1.0
        now = 0.0
        while now < duration_us:
            now = min(now + chunk_us, duration_us)
            queue.run_until(now)
            if medium.captures:
                chunk, medium.captures = medium.captures, []
                for captured in chunk:
                    if captured.timestamp_us < previous_t - 1e-6:
                        raise AssertionError(
                            f"capture order violated: "
                            f"{captured.timestamp_us} < {previous_t}"
                        )
                    previous_t = captured.timestamp_us
                    yield captured

    def _wire(self) -> tuple[EventQueue, Medium, dict[MacAddress, str]]:
        """Assemble the event queue, medium, stations and traffic."""
        master_rng = random.Random(self.seed)
        queue = EventQueue()
        medium = Medium(queue)
        duration_us = self.duration_s * 1e6
        monitor_position = Position(self.area_m / 2, self.area_m / 2)
        station_names: dict[MacAddress, str] = {}

        # --- Access points -------------------------------------------
        aps: list[AccessPoint] = []
        for index in range(self.ap_count):
            ap_profile = (
                self.ap_profile
                if isinstance(self.ap_profile, DeviceProfile)
                else profile_by_name(self.ap_profile)
            )
            ap_mac = vendor_mac("00:0f:b5", 0x0A0000 + index)
            ap_rng = random.Random(master_rng.getrandbits(64))
            angle_step = self.area_m / (self.ap_count + 1)
            ap = AccessPoint(
                mac=ap_mac,
                profile=ap_profile,
                channel_model=self.channel_model,
                network_timing=self.timing,
                rng=ap_rng,
                position=Position(angle_step * (index + 1), self.area_m / 2),
                beacon_size=self.ap_beacon_size + 20 * index,
                probe_response_size=self.ap_probe_response_size,
                encrypted=self.encrypted,
                channel_number=self.channel_number,
            )
            ap.monitor_position = monitor_position
            station_names[ap_mac] = f"ap-{index}"
            aps.append(ap)

        def hook(sender: Station, frame: Dot11Frame, end_us: float) -> None:
            for ap in aps:
                if ap.on_frame_aired(sender, frame, end_us):
                    medium.join(ap, end_us)

        if aps:
            medium.aired_hooks.append(hook)

        # --- Client stations ------------------------------------------
        serial = 1
        stations: list[tuple[Station, StationSpec]] = []
        for spec in self.specs:
            profile = spec.resolved_profile()
            mac = spec.mac if spec.mac is not None else vendor_mac(profile.oui, serial)
            serial += 1
            rng = random.Random(master_rng.getrandbits(64))
            mobility = Mobility(
                area_m=self.area_m,
                speed_mps=spec.speed_mps,
                pause_s=spec.pause_s,
                _position=Position(
                    rng.uniform(0, self.area_m), rng.uniform(0, self.area_m)
                ),
            )
            home_ap = aps[serial % len(aps)] if aps else None
            station = Station(
                mac=mac,
                profile=profile,
                channel_model=self.channel_model,
                network_timing=self.timing,
                rng=rng,
                mobility=mobility,
                bssid=home_ap.mac if home_ap else None,
                encrypted=self.encrypted,
                channel_number=self.channel_number,
            )
            station.monitor_position = monitor_position
            if home_ap is not None:
                station.peer_position = home_ap.position_at(0.0)
                station.responder_sifs_offset_us = home_ap.profile.sifs_offset_us
            station_names[mac] = spec.name
            stations.append((station, spec))

        # --- Traffic wiring -------------------------------------------
        def schedule_source(
            target: Station, source: TrafficSource, arrival_us: float, departure_us: float
        ) -> None:
            source_rng = random.Random(master_rng.getrandbits(64))
            first = arrival_us + source.start_delay_us(source_rng)

            def poll() -> None:
                now = queue.now
                if now > departure_us:
                    return
                frames, next_time = source.next_burst(now, source_rng)
                must_join = False
                for app_frame in frames:
                    must_join = target.enqueue(app_frame) or must_join
                if must_join:
                    medium.join(target, now)
                if next_time <= now:
                    next_time = now + 1000.0
                if next_time <= departure_us and next_time <= duration_us:
                    queue.schedule(next_time, poll)

            if first <= departure_us and first <= duration_us:
                queue.schedule(first, poll)

        for ap in aps:
            schedule_source(ap, ap.beacons, 0.0, duration_us)

        for station, spec in stations:
            arrival_us = spec.arrival_s * 1e6
            departure_us = (
                spec.departure_s * 1e6 if spec.departure_s is not None else duration_us
            )
            if departure_us < arrival_us:
                raise ValueError(
                    f"station {spec.name}: departure before arrival"
                )
            all_sources = list(spec.sources)
            if spec.auto_services:
                all_sources.extend(self._profile_services(station.profile))
            for source in all_sources:
                schedule_source(station, copy.deepcopy(source), arrival_us, departure_us)
            home_ap = aps[0] if aps else None
            if home_ap is not None:
                for source in spec.downlink:
                    # Downlink traffic: the AP transmits to this client.
                    downlink = copy.deepcopy(source)
                    peer_source = _PeerWrapper(downlink, station.mac)
                    schedule_source(home_ap, peer_source, arrival_us, departure_us)

        return queue, medium, station_names


class _PeerWrapper:
    """Redirect a traffic source's AP-bound frames to a specific peer."""

    def __init__(self, inner: TrafficSource, peer: MacAddress) -> None:
        self._inner = inner
        self._peer = peer

    def start_delay_us(self, rng: random.Random) -> float:
        return self._inner.start_delay_us(rng)

    def next_burst(self, now_us: float, rng: random.Random):
        frames, next_time = self._inner.next_burst(now_us, rng)
        for app_frame in frames:
            if app_frame.destination == "ap":
                app_frame.destination = "peer"
                app_frame.peer = self._peer
        return frames, next_time
