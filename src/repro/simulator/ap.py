"""Simulated access points.

An AP is a station with infrastructure duties: periodic beacons,
probe responses to active scans, and downlink forwarding traffic.  APs
are first-class fingerprintees too — the paper applies its method to
APs for rogue-AP detection (Section VII-B2), noting that forwarded
data frames must be ignored when fingerprinting an AP because they
carry other devices' applicative behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress
from repro.dot11.timing import MacTiming
from repro.simulator.channel import ChannelModel, Mobility, Position
from repro.simulator.device import Station
from repro.simulator.profiles import DeviceProfile
from repro.simulator.traffic import DST_BROADCAST, DST_PEER, AppFrame


@dataclass(slots=True)
class BeaconSource:
    """Beacon generator: one broadcast management frame per interval.

    The 102.4 ms beacon interval is near-universal; the frame size
    varies with SSID/IE content, i.e. per AP.
    """

    interval_us: float = 102_400.0
    beacon_size: int = 180

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.uniform(0, self.interval_us)

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frame = AppFrame(
            subtype=FrameSubtype.BEACON,
            size=self.beacon_size,
            destination=DST_BROADCAST,
        )
        return [frame], now_us + self.interval_us


class AccessPoint(Station):
    """A station with AP behaviour (beacons and probe responses)."""

    def __init__(
        self,
        mac: MacAddress,
        profile: DeviceProfile,
        channel_model: ChannelModel,
        network_timing: MacTiming,
        rng: random.Random,
        position: Position,
        beacon_size: int = 180,
        probe_response_size: int = 260,
        encrypted: bool = False,
        channel_number: int = 6,
    ) -> None:
        super().__init__(
            mac=mac,
            profile=profile,
            channel_model=channel_model,
            network_timing=network_timing,
            rng=rng,
            mobility=Mobility(speed_mps=0.0, _position=position),
            bssid=mac,
            encrypted=encrypted,
            channel_number=channel_number,
        )
        self.beacons = BeaconSource(beacon_size=beacon_size)
        self.probe_response_size = probe_response_size
        # Nominal peer distance for downlink ACK success draws: clients
        # are spread around the AP, so use a representative midpoint.
        self.peer_position = Position(position.x + 8.0, position.y + 8.0)

    def on_frame_aired(self, sender: Station, frame: Dot11Frame, end_us: float) -> bool:
        """Reactive hook: answer probe requests with a probe response.

        Returns True when a response was queued (the caller must then
        register the AP with the medium if it was idle).
        """
        if frame.subtype is not FrameSubtype.PROBE_REQUEST or sender is self:
            return False
        response = AppFrame(
            subtype=FrameSubtype.PROBE_RESPONSE,
            size=self.probe_response_size,
            destination=DST_PEER,
            peer=sender.mac,
        )
        return self.enqueue(response)
