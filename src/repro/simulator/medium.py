"""Shared-channel arbitration: the DCF contention engine.

The medium serialises transmissions on one channel.  Contention follows
802.11 DCF semantics with the freeze/resume backoff model:

* when the medium goes idle, every contender's earliest transmit time
  is ``idle_start + DIFS_i + counter_i × slot`` (``DIFS_i`` carries the
  device's timing personality, ``counter_i`` its quirky backoff draw);
* the earliest contender wins and runs its exchange atomically (the
  NAV protects RTS/CTS/DATA/ACK sequences from interleaving);
* contenders whose transmit times fall within half a slot of the
  winner's collide — all their frames air and are lost;
* losers deduct the slots that elapsed before the medium went busy
  (freeze semantics) and resume in the next idle period.

Event-queue staleness is handled with generation tokens so arbitration
can be recomputed whenever membership changes.
"""

from __future__ import annotations

from typing import Callable

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame
from repro.simulator.device import Station
from repro.simulator.events import EventQueue

#: Signature of reactive hooks: (sender, frame, air-end time in µs).
AiredHook = Callable[[Station, Dot11Frame, float], None]


class Medium:
    """Single-channel DCF arbitration and capture collection."""

    def __init__(self, queue: EventQueue) -> None:
        self.queue = queue
        self.busy_until = 0.0
        self.contention_start = 0.0
        self.contenders: dict[Station, float] = {}  # station -> join time
        self.captures: list[CapturedFrame] = []
        #: Reactive listeners (e.g. an AP answering probe requests).
        self.aired_hooks: list[AiredHook] = []
        self._generation = 0
        self._exchanges = 0
        self._collision_rounds = 0

    @property
    def exchange_count(self) -> int:
        """Number of completed medium accesses (incl. collisions)."""
        return self._exchanges

    @property
    def collision_rounds(self) -> int:
        """Number of arbitration rounds that ended in a collision."""
        return self._collision_rounds

    # ------------------------------------------------------------------
    def join(self, station: Station, now_us: float) -> None:
        """Register a station that has (newly) pending traffic."""
        if station in self.contenders:
            return
        self.contenders[station] = now_us
        if now_us >= self.busy_until and not self._busy_event_pending(now_us):
            # Medium is idle: this join opens (or extends) a contention
            # round anchored at the later of idle start and join time.
            self.contention_start = max(self.contention_start, self.busy_until)
        self._reschedule(now_us)

    def _busy_event_pending(self, now_us: float) -> bool:
        return now_us < self.busy_until

    # ------------------------------------------------------------------
    def _reschedule(self, now_us: float) -> None:
        """Recompute the next winner and schedule its transmission."""
        self._generation += 1
        generation = self._generation
        if not self.contenders:
            return
        anchor = max(self.contention_start, self.busy_until)
        earliest = None
        for station, join_us in self.contenders.items():
            start = max(anchor, join_us)
            tx_time = station.access_time(start)
            if earliest is None or tx_time < earliest:
                earliest = tx_time
        assert earliest is not None
        fire_at = max(earliest, now_us)
        self.queue.schedule(fire_at, lambda: self._fire(generation))

    def _fire(self, generation: int) -> None:
        """Execute the arbitration winner (or the collision set)."""
        if generation != self._generation:
            return  # superseded by a membership change
        now = self.queue.now
        anchor = max(self.contention_start, self.busy_until)
        timed: list[tuple[float, Station]] = []
        for station, join_us in self.contenders.items():
            start = max(anchor, join_us)
            timed.append((station.access_time(start), station))
        timed.sort(key=lambda pair: pair[0])
        win_time, winner = timed[0]
        slot = winner.timing.slot_us
        colliders = [
            station for tx, station in timed[1:] if tx - win_time < slot / 2
        ]

        self._exchanges += 1
        aired_frames = []
        if colliders:
            self._collision_rounds += 1
            end = winner.execute_collision_leg(win_time)
            for station in colliders:
                end = max(end, station.execute_collision_leg(win_time))
            participants = [winner, *colliders]
        else:
            outcome = winner.execute_exchange(win_time)
            self.captures.extend(outcome.captures)
            end = outcome.busy_until_us
            participants = [winner]
            aired_frames = outcome.aired

        # Freeze semantics for everyone who lost this round.
        for tx_time, station in timed:
            if station in participants:
                continue
            start = max(anchor, self.contenders[station])
            station.consume_elapsed_slots(win_time, start)

        for station in participants:
            if not station.wants_medium:
                del self.contenders[station]
            else:
                # Re-anchor the retry/post-tx contention at round end.
                self.contenders[station] = end
        self.busy_until = max(self.busy_until, end)
        self.contention_start = self.busy_until

        # Reactive hooks run after bookkeeping so joins they trigger see
        # a consistent medium state; they reschedule internally.
        if self.aired_hooks and aired_frames:
            for frame in aired_frames:
                for hook in self.aired_hooks:
                    hook(winner, frame, end)
        self._reschedule(now)

    # ------------------------------------------------------------------
    def verify_capture_order(self) -> None:
        """Invariant check: monitor timestamps are non-decreasing."""
        previous = -1.0
        for captured in self.captures:
            if captured.timestamp_us < previous - 1e-6:
                raise AssertionError(
                    f"capture order violated: {captured.timestamp_us} < {previous}"
                )
            previous = captured.timestamp_us
