"""Discrete-event 802.11 MAC simulator.

This subpackage replaces the paper's physical testbeds (office/
conference monitor captures, Faraday-cage experiments): a single-channel
event-driven simulation of DCF contention (DIFS + random backoff with
per-chipset quirks), virtual carrier sensing (RTS/CTS), rate
adaptation, power-save signalling, driver probe scanning, application
traffic and a monitor-mode capture device.

The public entry point is :class:`repro.simulator.scenario.Scenario`:
declare stations (profile + traffic mix + mobility), run, and collect
the monitor's captured frames — the same artefact a real monitoring
card would deliver.
"""

from repro.simulator.channel import ChannelModel, Position
from repro.simulator.profiles import DeviceProfile, PROFILE_LIBRARY, profile_by_name
from repro.simulator.ratecontrol import (
    AarfRateControl,
    ArfRateControl,
    FixedRateControl,
    SnrRateControl,
)
from repro.simulator.scenario import Scenario, StationSpec
from repro.simulator.traffic import (
    ArpProbeService,
    CbrTraffic,
    IgmpService,
    KeepAliveService,
    LlmnrService,
    MdnsService,
    PowerSaveService,
    ProbeScanService,
    SsdpService,
    WebTraffic,
)

__all__ = [
    "AarfRateControl",
    "ArfRateControl",
    "ArpProbeService",
    "CbrTraffic",
    "ChannelModel",
    "DeviceProfile",
    "FixedRateControl",
    "IgmpService",
    "KeepAliveService",
    "LlmnrService",
    "MdnsService",
    "PROFILE_LIBRARY",
    "Position",
    "PowerSaveService",
    "ProbeScanService",
    "Scenario",
    "SnrRateControl",
    "SsdpService",
    "StationSpec",
    "WebTraffic",
    "profile_by_name",
]
