"""Application and OS-service traffic generators.

Section VI-C of the paper demonstrates that *network services* running
on a device (SSDP, LLMNR, IGMPv3, ...) leave distinctive periodic
peaks in its histograms — two identical netbooks were separable purely
through their service mix (Figure 7).  The generators here reproduce
those traffic sources, plus the foreground applications the evaluation
traces contain (iperf-style CBR used in the paper's own experiments,
and bursty web traffic typical of conference/office users).

Each generator implements :class:`TrafficSource`: the simulator polls
``next_burst`` and receives application frames plus the time of the
following poll, keeping generation lazy and allocation-light.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.dot11.frames import FrameSubtype

#: Destination classes an application frame can have.
DST_AP = "ap"
DST_BROADCAST = "broadcast"
DST_MULTICAST = "multicast"
#: Unicast to an explicit peer (AP downlink, probe responses).
DST_PEER = "peer"


@dataclass(slots=True)
class AppFrame:
    """One frame a traffic source hands to the MAC queue.

    ``peer`` must be set (to a :class:`~repro.dot11.mac.MacAddress`)
    when ``destination`` is :data:`DST_PEER`.
    """

    subtype: FrameSubtype
    size: int
    destination: str = DST_AP
    power_mgmt: bool = False
    peer: object | None = None

    def __post_init__(self) -> None:
        if self.destination not in (DST_AP, DST_BROADCAST, DST_MULTICAST, DST_PEER):
            raise ValueError(f"unknown destination class: {self.destination}")
        if self.destination == DST_PEER and self.peer is None:
            raise ValueError("DST_PEER frames need an explicit peer address")
        if self.size < 10:
            raise ValueError(f"application frame too small: {self.size}")


class TrafficSource(Protocol):
    """Interface of all traffic generators."""

    def start_delay_us(self, rng: random.Random) -> float:
        """Delay before the first burst (decorrelates periodic sources)."""
        ...

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        """Frames to enqueue now, and the absolute time of the next poll."""
        ...


def _data_subtype(qos: bool) -> FrameSubtype:
    return FrameSubtype.QOS_DATA if qos else FrameSubtype.DATA


@dataclass(slots=True)
class CbrTraffic:
    """Constant-bit-rate stream (the paper's iperf UDP workload).

    ``payload`` is the MSDU size; MAC overhead is added by the station.
    A small interval jitter models application-layer scheduling noise.
    """

    payload: int = 1470
    interval_ms: float = 2.0
    jitter_ms: float = 0.1
    qos: bool = True

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.uniform(0, self.interval_ms * 1000)

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frame = AppFrame(subtype=_data_subtype(self.qos), size=self.payload + 34)
        gap_us = max(100.0, rng.gauss(self.interval_ms, self.jitter_ms) * 1000)
        return [frame], now_us + gap_us


@dataclass(slots=True)
class WebTraffic:
    """Bursty request/response traffic (web browsing, mail polling).

    An ON/OFF process: exponential think times separate bursts whose
    frame count is Pareto-ish; bursts mix full-size downloads-ACKs and
    small uplink requests, giving realistic frame-size diversity.
    """

    mean_think_s: float = 8.0
    mean_burst_frames: float = 14.0
    intra_gap_ms: float = 6.0
    big_size: int = 1500
    small_size: int = 92
    qos: bool = True

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / (self.mean_think_s * 1e6 / 2))

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        count = max(1, int(rng.expovariate(1.0 / self.mean_burst_frames)))
        frames: list[AppFrame] = []
        for _ in range(count):
            if rng.random() < 0.35:
                size = self.big_size
            else:
                size = self.small_size + rng.randint(0, 60)
            frames.append(AppFrame(subtype=_data_subtype(self.qos), size=size))
        think_us = rng.expovariate(1.0 / (self.mean_think_s * 1e6))
        return frames, now_us + max(think_us, self.intra_gap_ms * 1000 * count)


@dataclass(slots=True)
class SsdpService:
    """UPnP Simple Service Discovery Protocol NOTIFY bursts.

    SSDP sends clusters of multicast NOTIFY datagrams on a fixed
    advertisement period — one of the service peaks in Figure 7b.
    """

    period_s: float = 30.0
    burst_size: int = 3
    notify_size: int = 380
    size_spread: int = 25
    qos: bool = False

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.uniform(0, self.period_s * 1e6)

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frames = [
            AppFrame(
                subtype=_data_subtype(self.qos),
                size=self.notify_size + rng.randint(-self.size_spread, self.size_spread),
                destination=DST_MULTICAST,
            )
            for _ in range(self.burst_size)
        ]
        return frames, now_us + rng.gauss(self.period_s, self.period_s * 0.05) * 1e6


@dataclass(slots=True)
class LlmnrService:
    """Link-Local Multicast Name Resolution queries (Windows hosts).

    Sporadic two-frame multicast queries; the ~1200 µs inter-arrival
    peak called out for Figure 7b comes from this service.
    """

    mean_period_s: float = 45.0
    query_size: int = 94
    repeat: int = 2
    repeat_gap_ms: float = 1.2

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / (self.mean_period_s * 1e6))

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frames = [
            AppFrame(subtype=FrameSubtype.DATA, size=self.query_size, destination=DST_MULTICAST)
            for _ in range(self.repeat)
        ]
        return frames, now_us + rng.expovariate(1.0 / (self.mean_period_s * 1e6))


@dataclass(slots=True)
class MdnsService:
    """Multicast DNS announcements (Apple/Linux hosts)."""

    period_s: float = 60.0
    announce_size: int = 280
    size_spread: int = 80

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.uniform(0, self.period_s * 1e6)

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frame = AppFrame(
            subtype=FrameSubtype.DATA,
            size=self.announce_size + rng.randint(0, self.size_spread),
            destination=DST_MULTICAST,
        )
        return [frame], now_us + rng.gauss(self.period_s, self.period_s * 0.08) * 1e6


@dataclass(slots=True)
class IgmpService:
    """IGMPv3 membership reports — small, strongly periodic multicast."""

    period_s: float = 125.0
    report_size: int = 64

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.uniform(0, self.period_s * 1e6)

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frame = AppFrame(
            subtype=FrameSubtype.DATA, size=self.report_size, destination=DST_MULTICAST
        )
        return [frame], now_us + rng.gauss(self.period_s, 2.0) * 1e6


@dataclass(slots=True)
class ArpProbeService:
    """Gratuitous/probing ARP broadcasts."""

    mean_period_s: float = 40.0
    arp_size: int = 60

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / (self.mean_period_s * 1e6))

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frame = AppFrame(
            subtype=FrameSubtype.DATA, size=self.arp_size, destination=DST_BROADCAST
        )
        return [frame], now_us + rng.expovariate(1.0 / (self.mean_period_s * 1e6))


@dataclass(slots=True)
class KeepAliveService:
    """Application keep-alives (VPN/IM heartbeats): tiny periodic data."""

    period_s: float = 20.0
    size: int = 70
    qos: bool = True

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.uniform(0, self.period_s * 1e6)

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frame = AppFrame(subtype=_data_subtype(self.qos), size=self.size)
        return [frame], now_us + rng.gauss(self.period_s, 0.4) * 1e6


@dataclass(slots=True)
class PowerSaveService:
    """Null-function power-management signalling (Figure 8).

    Emits PM=1 (entering doze) followed after ``wake_gap_ms`` by PM=0
    (awake) null frames at the card's characteristic period.
    """

    period_ms: float = 300.0
    period_jitter_ms: float = 40.0
    wake_gap_ms: float = 12.0
    qos_null: bool = False
    _phase_sleep: bool = True

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.uniform(0, self.period_ms * 1000)

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        subtype = FrameSubtype.QOS_NULL if self.qos_null else FrameSubtype.NULL_FUNCTION
        if self._phase_sleep:
            self._phase_sleep = False
            frame = AppFrame(subtype=subtype, size=28 if not self.qos_null else 30,
                             power_mgmt=True)
            return [frame], now_us + max(500.0, self.wake_gap_ms * 1000)
        self._phase_sleep = True
        frame = AppFrame(subtype=subtype, size=28 if not self.qos_null else 30,
                         power_mgmt=False)
        gap_us = max(
            2000.0, rng.gauss(self.period_ms, self.period_jitter_ms) * 1000
        )
        return [frame], now_us + gap_us


@dataclass(slots=True)
class ProbeScanService:
    """Active-scan probe-request bursts with driver-specific shape.

    Franklin et al. [9] fingerprint drivers purely from this process;
    here it contributes the Probe Request histogram of a signature.
    """

    period_s: float = 60.0
    period_jitter_s: float = 8.0
    burst_size: int = 3
    intra_burst_gap_ms: float = 20.0
    probe_size: int = 120
    _remaining_in_burst: int = 0

    def start_delay_us(self, rng: random.Random) -> float:
        return rng.uniform(0, self.period_s * 1e6)

    def next_burst(self, now_us: float, rng: random.Random) -> tuple[list[AppFrame], float]:
        frame = AppFrame(
            subtype=FrameSubtype.PROBE_REQUEST,
            size=self.probe_size + rng.randint(-4, 4),
            destination=DST_BROADCAST,
        )
        if self._remaining_in_burst > 1:
            self._remaining_in_burst -= 1
            gap = max(500.0, rng.gauss(self.intra_burst_gap_ms, 1.0) * 1000)
            return [frame], now_us + gap
        self._remaining_in_burst = self.burst_size
        period = max(1.0, rng.gauss(self.period_s, self.period_jitter_s)) * 1e6
        return [frame], now_us + period
