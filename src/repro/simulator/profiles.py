"""Chipset/driver behaviour profiles.

Everything the paper attributes device distinctiveness to lives here,
as explicit parameters instead of silicon:

* **random-backoff quirks** (Section VI-A1, Figure 4) — loose
  implementations: an extra early slot, first-slot bias, truncated or
  low-biased slot distributions, non-standard CWmin ([11], [5]);
* **timing personality** — small fixed DIFS/turnaround offsets and
  clock jitter, the µs-level texture that makes inter-arrival
  histograms device-specific;
* **virtual carrier sensing** (Section VI-A2, Figure 5) — RTS
  threshold: disabled, hard-coded, or user-set;
* **rate control** (Section VI-B, Figure 6) — which adaptation
  algorithm the driver runs;
* **power save** (Section VI-D, Figure 8) — null-function signalling
  cadence, or disabled ("several cards deactivate the power management
  feature under Linux");
* **probe scanning** ([9]) — period and burst shape of active scans.

A profile describes a *card+driver combination*; several simulated
devices may share one profile (they are then only separable through
their traffic/services mix — exactly the paper's netbook experiment,
Figure 7).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.dot11.phy import DSSS_RATES, OFDM_RATES, Phy


class BackoffStyle(enum.Enum):
    """Shape of the random-backoff slot distribution."""

    #: Standard-conformant: uniform over [0, CW].
    UNIFORM = "uniform"
    #: Adds one extra slot *before* slot 0 (Figure 4, first device).
    EXTRA_EARLY_SLOT = "extra_early_slot"
    #: Sends in the first slot with elevated probability ([5]).
    FIRST_SLOT_BIAS = "first_slot_bias"
    #: Only ever uses the lower half of the contention window.
    TRUNCATED = "truncated"
    #: Quadratically biased towards low slots.
    LOW_BIASED = "low_biased"


def draw_backoff(style: BackoffStyle, cw: int, rng: random.Random) -> int:
    """Draw a backoff slot count under ``style`` for window ``cw``.

    A return of ``-1`` encodes the non-standard early slot (the station
    fires one slot *before* the standard's first slot).
    """
    if cw < 1:
        raise ValueError(f"contention window must be >= 1: {cw}")
    if style is BackoffStyle.UNIFORM:
        return rng.randint(0, cw)
    if style is BackoffStyle.EXTRA_EARLY_SLOT:
        return rng.randint(-1, cw)
    if style is BackoffStyle.FIRST_SLOT_BIAS:
        if rng.random() < 0.30:
            return 0
        return rng.randint(0, cw)
    if style is BackoffStyle.TRUNCATED:
        return rng.randint(0, max(cw // 2, 1))
    if style is BackoffStyle.LOW_BIASED:
        return int((cw + 1) * rng.random() ** 2) % (cw + 1)
    raise AssertionError(f"unhandled backoff style: {style}")


class RateAlgorithm(enum.Enum):
    """Which rate-adaptation algorithm the driver runs."""

    FIXED_54 = "fixed_54"
    FIXED_11 = "fixed_11"
    ARF = "arf"
    AARF = "aarf"
    SNR = "snr"
    SNR_JITTERY = "snr_jittery"


@dataclass(frozen=True, slots=True)
class PowerSaveBehaviour:
    """Null-function power-save signalling cadence.

    When enabled, the station emits PM=1/PM=0 null-frame pairs with a
    driver-characteristic period and wake gap — the signal isolated in
    the paper's Figure 8.
    """

    enabled: bool = False
    period_ms: float = 300.0
    period_jitter_ms: float = 40.0
    wake_gap_ms: float = 12.0


@dataclass(frozen=True, slots=True)
class ProbeBehaviour:
    """Active-scan behaviour (probe-request bursts, per [9])."""

    period_s: float = 60.0
    period_jitter_s: float = 8.0
    burst_size: int = 3
    intra_burst_gap_ms: float = 20.0
    probe_size: int = 120


@dataclass(frozen=True, slots=True)
class DeviceProfile:
    """One card+driver combination's complete MAC behaviour."""

    name: str
    oui: str
    backoff_style: BackoffStyle = BackoffStyle.UNIFORM
    cw_min: int = 15
    #: Constant implementation offset added to every DIFS wait (µs).
    difs_offset_us: float = 0.0
    #: Gaussian jitter applied to each access wait (µs, sigma).
    timing_jitter_us: float = 1.0
    #: SIFS turnaround slack of the card's state machine (µs).
    sifs_offset_us: float = 0.0
    rts_threshold: int | None = None
    rate_algorithm: RateAlgorithm = RateAlgorithm.SNR
    qos_capable: bool = True
    short_preamble: bool = True
    b_only: bool = False
    power_save: PowerSaveBehaviour = field(default_factory=PowerSaveBehaviour)
    probes: ProbeBehaviour = field(default_factory=ProbeBehaviour)
    retry_limit: int = 7

    def phy(self) -> Phy:
        """The PHY this profile drives."""
        rates = DSSS_RATES if self.b_only else tuple(sorted(DSSS_RATES + OFDM_RATES))
        return Phy(supported_rates=rates, short_preamble=self.short_preamble)


#: Library of distinct card+driver personalities.  Parameter spreads
#: are drawn from the heterogeneity reported by Gopinath et al. [11],
#: Berger-Sabbatel et al. [5] and Franklin et al. [9].
PROFILE_LIBRARY: tuple[DeviceProfile, ...] = (
    DeviceProfile(
        name="intel-2200bg-linux",
        oui="00:13:e8",
        backoff_style=BackoffStyle.UNIFORM,
        cw_min=15,
        difs_offset_us=1.0,
        timing_jitter_us=0.8,
        rts_threshold=None,
        rate_algorithm=RateAlgorithm.AARF,
        power_save=PowerSaveBehaviour(enabled=True, period_ms=280, period_jitter_ms=30),
        probes=ProbeBehaviour(period_s=55, burst_size=3, intra_burst_gap_ms=18),
    ),
    DeviceProfile(
        name="intel-3945abg-win",
        oui="00:21:6a",
        backoff_style=BackoffStyle.FIRST_SLOT_BIAS,
        cw_min=15,
        difs_offset_us=2.5,
        timing_jitter_us=1.2,
        rts_threshold=2347,
        rate_algorithm=RateAlgorithm.ARF,
        power_save=PowerSaveBehaviour(enabled=True, period_ms=210, period_jitter_ms=15),
        probes=ProbeBehaviour(period_s=42, burst_size=4, intra_burst_gap_ms=12),
    ),
    DeviceProfile(
        name="atheros-ar5212-madwifi",
        oui="00:14:a4",
        backoff_style=BackoffStyle.EXTRA_EARLY_SLOT,
        cw_min=15,
        difs_offset_us=-1.5,
        timing_jitter_us=0.6,
        rts_threshold=None,
        rate_algorithm=RateAlgorithm.SNR,
        power_save=PowerSaveBehaviour(enabled=False),
        probes=ProbeBehaviour(period_s=75, burst_size=2, intra_burst_gap_ms=35),
    ),
    DeviceProfile(
        name="atheros-ar9285-ath9k",
        oui="00:1d:6a",
        backoff_style=BackoffStyle.UNIFORM,
        cw_min=15,
        difs_offset_us=0.0,
        timing_jitter_us=0.4,
        rts_threshold=2000,
        rate_algorithm=RateAlgorithm.SNR,
        power_save=PowerSaveBehaviour(enabled=False),
        probes=ProbeBehaviour(period_s=63, burst_size=3, intra_burst_gap_ms=22),
    ),
    DeviceProfile(
        name="broadcom-4318-win",
        oui="00:18:f8",
        backoff_style=BackoffStyle.TRUNCATED,
        cw_min=31,
        difs_offset_us=3.0,
        timing_jitter_us=1.8,
        rts_threshold=None,
        rate_algorithm=RateAlgorithm.ARF,
        qos_capable=False,
        power_save=PowerSaveBehaviour(enabled=True, period_ms=350, period_jitter_ms=60),
        probes=ProbeBehaviour(period_s=30, burst_size=5, intra_burst_gap_ms=8),
    ),
    DeviceProfile(
        name="broadcom-43224-osx",
        oui="00:26:82",
        backoff_style=BackoffStyle.LOW_BIASED,
        cw_min=15,
        difs_offset_us=1.8,
        timing_jitter_us=0.9,
        rts_threshold=None,
        rate_algorithm=RateAlgorithm.SNR_JITTERY,
        power_save=PowerSaveBehaviour(enabled=True, period_ms=180, period_jitter_ms=10, wake_gap_ms=6),
        probes=ProbeBehaviour(period_s=48, burst_size=3, intra_burst_gap_ms=15),
    ),
    DeviceProfile(
        name="ralink-rt2500-linux",
        oui="00:09:2d",
        backoff_style=BackoffStyle.EXTRA_EARLY_SLOT,
        cw_min=31,
        difs_offset_us=-2.0,
        timing_jitter_us=2.2,
        rts_threshold=1500,
        rate_algorithm=RateAlgorithm.ARF,
        qos_capable=False,
        power_save=PowerSaveBehaviour(enabled=False),
        probes=ProbeBehaviour(period_s=90, burst_size=2, intra_burst_gap_ms=40),
    ),
    DeviceProfile(
        name="ralink-rt73-win",
        oui="00:1f:3b",
        backoff_style=BackoffStyle.FIRST_SLOT_BIAS,
        cw_min=15,
        difs_offset_us=4.0,
        timing_jitter_us=1.5,
        rts_threshold=2347,
        rate_algorithm=RateAlgorithm.AARF,
        power_save=PowerSaveBehaviour(enabled=True, period_ms=420, period_jitter_ms=80),
        probes=ProbeBehaviour(period_s=38, burst_size=4, intra_burst_gap_ms=10),
    ),
    DeviceProfile(
        name="realtek-rtl8187-linux",
        oui="00:0e:8e",
        backoff_style=BackoffStyle.TRUNCATED,
        cw_min=15,
        difs_offset_us=-0.8,
        timing_jitter_us=2.8,
        rts_threshold=None,
        rate_algorithm=RateAlgorithm.FIXED_54,
        qos_capable=False,
        power_save=PowerSaveBehaviour(enabled=False),
        probes=ProbeBehaviour(period_s=110, burst_size=1, intra_burst_gap_ms=0),
    ),
    DeviceProfile(
        name="realtek-rtl8180-b-only",
        oui="00:e0:4c",
        backoff_style=BackoffStyle.UNIFORM,
        cw_min=31,
        difs_offset_us=2.0,
        timing_jitter_us=3.0,
        rts_threshold=None,
        rate_algorithm=RateAlgorithm.FIXED_11,
        qos_capable=False,
        short_preamble=False,
        b_only=True,
        power_save=PowerSaveBehaviour(enabled=False),
        probes=ProbeBehaviour(period_s=130, burst_size=1, intra_burst_gap_ms=0, probe_size=90),
    ),
    DeviceProfile(
        name="apple-bcm4321-osx",
        oui="00:17:ab",
        backoff_style=BackoffStyle.LOW_BIASED,
        cw_min=15,
        difs_offset_us=0.5,
        timing_jitter_us=0.5,
        rts_threshold=None,
        rate_algorithm=RateAlgorithm.SNR,
        power_save=PowerSaveBehaviour(enabled=True, period_ms=150, period_jitter_ms=8, wake_gap_ms=4),
        probes=ProbeBehaviour(period_s=35, burst_size=6, intra_burst_gap_ms=6, probe_size=150),
    ),
    DeviceProfile(
        name="samsung-mobile",
        oui="00:12:47",
        backoff_style=BackoffStyle.FIRST_SLOT_BIAS,
        cw_min=15,
        difs_offset_us=3.5,
        timing_jitter_us=1.1,
        rts_threshold=2347,
        rate_algorithm=RateAlgorithm.SNR_JITTERY,
        power_save=PowerSaveBehaviour(enabled=True, period_ms=520, period_jitter_ms=120, wake_gap_ms=20),
        probes=ProbeBehaviour(period_s=25, burst_size=4, intra_burst_gap_ms=9, probe_size=135),
    ),
)


def profile_by_name(name: str) -> DeviceProfile:
    """Look up a profile in the library by its name."""
    for profile in PROFILE_LIBRARY:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown device profile: {name!r}")
