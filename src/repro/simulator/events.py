"""Event queue for the discrete-event simulator.

A thin, fast wrapper around :mod:`heapq`.  Events are callbacks keyed
by simulation time (µs); insertion order breaks ties so behaviour is
deterministic.  Cancellation uses generation tokens — callers bump a
generation counter and stale events are dropped on pop, which is much
cheaper than removing heap entries.
"""

from __future__ import annotations

import heapq
from typing import Callable


class EventQueue:
    """Time-ordered callback queue with deterministic tie-breaking."""

    __slots__ = ("_heap", "_counter", "now")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = 0
        #: Current simulation time in µs; advanced by :meth:`run_until`.
        self.now = 0.0

    def schedule(self, time_us: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at ``time_us`` (must not be in the past)."""
        if time_us < self.now - 1e-6:
            raise ValueError(f"cannot schedule into the past: {time_us} < {self.now}")
        self._counter += 1
        heapq.heappush(self._heap, (time_us, self._counter, callback))

    def schedule_in(self, delay_us: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay_us`` after the current time."""
        self.schedule(self.now + delay_us, callback)

    def __len__(self) -> int:
        return len(self._heap)

    def run_until(self, end_us: float) -> None:
        """Run events in time order until the queue drains or ``end_us``.

        Events scheduled exactly at ``end_us`` still run; later ones
        stay queued (the simulation can be resumed).
        """
        heap = self._heap
        while heap and heap[0][0] <= end_us:
            time_us, _seq, callback = heapq.heappop(heap)
            self.now = time_us
            callback()
        if self.now < end_us:
            self.now = end_us

    def run_all(self, safety_limit: int = 50_000_000) -> None:
        """Run until the queue is empty (with a runaway guard)."""
        heap = self._heap
        steps = 0
        while heap:
            time_us, _seq, callback = heapq.heappop(heap)
            self.now = time_us
            callback()
            steps += 1
            if steps > safety_limit:
                raise RuntimeError("event queue did not drain (runaway simulation?)")
