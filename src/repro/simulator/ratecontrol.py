"""Rate-adaptation algorithms.

Section VI-B of the paper shows that the *rate-switching behaviour* of
a card is itself a fingerprintable trait (Figure 6: one device holds
54 Mbps, the other switches constantly) and that rate variation feeds
straight into inter-arrival histograms.  Real chipsets ship different
algorithms, so the profile library assigns different controllers:

* :class:`FixedRateControl` — pinned rate (common for old drivers);
* :class:`ArfRateControl` — Auto Rate Fallback: N successes → step up,
  2 consecutive failures → step down;
* :class:`AarfRateControl` — Adaptive ARF: the success threshold
  doubles after a failed probe, making upward moves rarer;
* :class:`SnrRateControl` — driver picks the best rate for the current
  SNR estimate (models firmware with fast channel feedback).
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.dot11.phy import Phy
from repro.simulator.channel import ChannelModel


class RateControl(Protocol):
    """Interface every rate controller implements."""

    def current_rate(self) -> float:
        """Rate (Mbps) to use for the next data transmission."""
        ...

    def on_result(self, success: bool) -> None:
        """Feed back the outcome of a (possibly retried) transmission."""
        ...

    def on_snr_hint(self, snr_db: float) -> None:
        """Optional channel-state hint (used by SNR-driven control)."""
        ...


class FixedRateControl:
    """Always transmit at one configured rate."""

    __slots__ = ("_rate",)

    def __init__(self, rate_mbps: float) -> None:
        self._rate = rate_mbps

    def current_rate(self) -> float:
        return self._rate

    def on_result(self, success: bool) -> None:  # noqa: ARG002 - fixed by design
        return None

    def on_snr_hint(self, snr_db: float) -> None:  # noqa: ARG002
        return None


class ArfRateControl:
    """Classic Auto Rate Fallback.

    ``success_threshold`` consecutive successes (or a timeout, omitted
    here) step the rate up; ``failure_threshold`` consecutive failures
    step it down.
    """

    __slots__ = ("_phy", "_rate", "_successes", "_failures", "success_threshold", "failure_threshold")

    def __init__(
        self,
        phy: Phy,
        initial_rate: float | None = None,
        success_threshold: int = 10,
        failure_threshold: int = 2,
    ) -> None:
        self._phy = phy
        self._rate = initial_rate if initial_rate is not None else phy.supported_rates[0]
        self._successes = 0
        self._failures = 0
        self.success_threshold = success_threshold
        self.failure_threshold = failure_threshold

    def current_rate(self) -> float:
        return self._rate

    def on_result(self, success: bool) -> None:
        if success:
            self._failures = 0
            self._successes += 1
            if self._successes >= self.success_threshold:
                self._successes = 0
                self._rate = self._phy.next_rate_up(self._rate)
        else:
            self._successes = 0
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._failures = 0
                self._rate = self._phy.next_rate_down(self._rate)

    def on_snr_hint(self, snr_db: float) -> None:  # noqa: ARG002
        return None


class AarfRateControl(ArfRateControl):
    """Adaptive ARF: failed upward probes double the success threshold."""

    __slots__ = ("_base_threshold", "_just_stepped_up", "_max_threshold")

    def __init__(
        self,
        phy: Phy,
        initial_rate: float | None = None,
        success_threshold: int = 10,
        failure_threshold: int = 2,
        max_threshold: int = 160,
    ) -> None:
        super().__init__(phy, initial_rate, success_threshold, failure_threshold)
        self._base_threshold = success_threshold
        self._just_stepped_up = False
        self._max_threshold = max_threshold

    def on_result(self, success: bool) -> None:
        previous_rate = self._rate
        super().on_result(success)
        if self._rate > previous_rate:
            self._just_stepped_up = True
        elif self._rate < previous_rate:
            if self._just_stepped_up:
                self.success_threshold = min(
                    self.success_threshold * 2, self._max_threshold
                )
            self._just_stepped_up = False
        elif success and self._successes == 0 and previous_rate == self._rate:
            # A full success run at the top rate resets adaptivity.
            self.success_threshold = self._base_threshold


class SnrRateControl:
    """Pick the best rate for the most recent SNR estimate.

    A small hysteresis (only move when the ideal rate differs for
    ``hold`` consecutive hints) avoids oscillation on shadowing noise.
    """

    __slots__ = ("_phy", "_channel", "_rate", "_pending_rate", "_pending_count", "hold")

    def __init__(
        self, phy: Phy, channel: ChannelModel, initial_rate: float | None = None, hold: int = 3
    ) -> None:
        self._phy = phy
        self._channel = channel
        self._rate = initial_rate if initial_rate is not None else phy.supported_rates[-1]
        self._pending_rate = self._rate
        self._pending_count = 0
        self.hold = hold

    def current_rate(self) -> float:
        return self._rate

    def on_result(self, success: bool) -> None:
        if not success:
            self._rate = self._phy.next_rate_down(self._rate)

    def on_snr_hint(self, snr_db: float) -> None:
        ideal = self._channel.best_rate_for_snr(snr_db, self._phy.supported_rates)
        if ideal == self._pending_rate:
            self._pending_count += 1
        else:
            self._pending_rate = ideal
            self._pending_count = 1
        if self._pending_count >= self.hold and ideal != self._rate:
            self._rate = ideal


class JitteryRateControl:
    """Wrap another controller, occasionally probing a random rate.

    Models chipsets that continuously sample alternative rates (the
    "changes its transmission rate more frequently" device of
    Figure 6d).
    """

    __slots__ = ("_inner", "_phy", "_rng", "probe_probability")

    def __init__(
        self,
        inner: RateControl,
        phy: Phy,
        rng: random.Random,
        probe_probability: float = 0.15,
    ) -> None:
        if not 0 <= probe_probability <= 1:
            raise ValueError(f"probe probability out of range: {probe_probability}")
        self._inner = inner
        self._phy = phy
        self._rng = rng
        self.probe_probability = probe_probability

    def current_rate(self) -> float:
        if self._rng.random() < self.probe_probability:
            return self._rng.choice(self._phy.supported_rates)
        return self._inner.current_rate()

    def on_result(self, success: bool) -> None:
        self._inner.on_result(success)

    def on_snr_hint(self, snr_db: float) -> None:
        self._inner.on_snr_hint(snr_db)
