"""Simulated 802.11 stations.

A :class:`Station` owns a transmit queue, the DCF backoff state, its
profile's timing personality, a rate controller and a mobility process.
The medium (:mod:`repro.simulator.medium`) arbitrates *when* a station
transmits; the station decides *what* goes on air — RTS/CTS usage,
rates, frame construction — and performs the channel/monitor draws for
its exchange.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field, replace

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import (
    Dot11Frame,
    FrameSubtype,
    ack_frame,
    cts_frame,
    rts_frame,
)
from repro.dot11.mac import BROADCAST, MacAddress
from repro.dot11.phy import DSSS_RATES, Phy
from repro.dot11.timing import MacTiming
from repro.simulator.channel import ChannelModel, Mobility, Position
from repro.simulator.profiles import (
    BackoffStyle,
    DeviceProfile,
    RateAlgorithm,
    draw_backoff,
)
from repro.simulator.ratecontrol import (
    AarfRateControl,
    ArfRateControl,
    FixedRateControl,
    JitteryRateControl,
    RateControl,
    SnrRateControl,
)
from repro.simulator.traffic import (
    DST_AP,
    DST_BROADCAST,
    DST_MULTICAST,
    DST_PEER,
    AppFrame,
)

#: A multicast group address (01:00:5e…) used for service frames.
MULTICAST_GROUP = MacAddress.parse("01:00:5e:00:00:fb")


def build_rate_control(
    profile: DeviceProfile, phy: Phy, channel: ChannelModel, rng: random.Random
) -> RateControl:
    """Instantiate the rate controller a profile declares."""
    algorithm = profile.rate_algorithm
    if algorithm is RateAlgorithm.FIXED_54:
        return FixedRateControl(54.0 if not profile.b_only else 11.0)
    if algorithm is RateAlgorithm.FIXED_11:
        return FixedRateControl(11.0)
    if algorithm is RateAlgorithm.ARF:
        return ArfRateControl(phy, initial_rate=phy.supported_rates[-1])
    if algorithm is RateAlgorithm.AARF:
        return AarfRateControl(phy, initial_rate=phy.supported_rates[-1])
    if algorithm is RateAlgorithm.SNR:
        return SnrRateControl(phy, channel)
    if algorithm is RateAlgorithm.SNR_JITTERY:
        return JitteryRateControl(SnrRateControl(phy, channel), phy, rng)
    raise AssertionError(f"unhandled rate algorithm: {algorithm}")


@dataclass(slots=True)
class ExchangeOutcome:
    """Result of one medium access: captures plus bookkeeping.

    ``aired`` lists the primary frames that actually went on air
    (independent of whether the monitor captured them) so reactive
    behaviours — an AP answering a probe request — can be wired up.
    """

    captures: list[CapturedFrame]
    busy_until_us: float
    dequeued: bool
    aired: list[Dot11Frame] = field(default_factory=list)


@dataclass(slots=True)
class StationStats:
    """Per-station transmission counters (useful in tests/benchmarks)."""

    enqueued: int = 0
    transmitted: int = 0
    retries: int = 0
    dropped: int = 0
    collisions: int = 0


class Station:
    """One simulated 802.11 client station (or AP, see subclass)."""

    def __init__(
        self,
        mac: MacAddress,
        profile: DeviceProfile,
        channel_model: ChannelModel,
        network_timing: MacTiming,
        rng: random.Random,
        mobility: Mobility | None = None,
        bssid: MacAddress | None = None,
        encrypted: bool = False,
        channel_number: int = 6,
    ) -> None:
        self.mac = mac
        self.profile = profile
        self.phy = profile.phy()
        self.channel_model = channel_model
        self.rng = rng
        self.mobility = mobility if mobility is not None else Mobility()
        self.bssid = bssid if bssid is not None else BROADCAST
        self.encrypted = encrypted
        self.channel_number = channel_number
        self.queue: deque[AppFrame] = deque()
        self.stats = StationStats()
        # DCF state.
        self.timing = MacTiming(
            slot_us=network_timing.slot_us,
            sifs_us=network_timing.sifs_us,
            cw_min=profile.cw_min,
            cw_max=network_timing.cw_max,
        )
        self.backoff_counter: int | None = None
        self.pending_difs_us: float = 0.0
        self.retry_count = 0
        # Per-unit manufacturing spread: two cards of the same model
        # still differ slightly in radio turnaround calibration.
        self.unit_difs_offset_us = rng.gauss(0.0, 0.7)
        self._seq = rng.randint(0, 4000)
        self.rate_control = build_rate_control(profile, self.phy, channel_model, rng)
        # Positions the exchange draws need; set by the scenario.  For
        # clients the peer is the AP; for an AP it is a nominal client.
        self.peer_position = Position(0.0, 0.0)
        self.monitor_position = Position(5.0, 5.0)
        # Responder SIFS personality of the AP answering this station is
        # configured by the scenario (affects CTS/ACK gaps we observe).
        self.responder_sifs_offset_us = 0.0

    # ------------------------------------------------------------------
    # Queue / contention state
    # ------------------------------------------------------------------
    @property
    def wants_medium(self) -> bool:
        """Whether the station is contending for the channel."""
        return bool(self.queue)

    def enqueue(self, app_frame: AppFrame) -> bool:
        """Queue an application frame; returns True if contention must
        (re)start — i.e. the queue was previously empty."""
        self.queue.append(app_frame)
        self.stats.enqueued += 1
        if self.backoff_counter is None:
            self.draw_backoff()
            return True
        return False

    def draw_backoff(self) -> None:
        """Draw a fresh backoff and per-attempt DIFS timing."""
        cw = self.timing.backoff_window(self.retry_count)
        self.backoff_counter = draw_backoff(self.profile.backoff_style, cw, self.rng)
        self.pending_difs_us = (
            self.timing.difs_us
            + self.profile.difs_offset_us
            + self.unit_difs_offset_us
            + self.rng.gauss(0.0, self.profile.timing_jitter_us)
        )

    def access_time(self, contention_start_us: float) -> float:
        """Earliest transmit time in the current contention round."""
        if self.backoff_counter is None:
            raise RuntimeError(f"{self.mac} has no backoff drawn")
        offset = self.pending_difs_us + self.backoff_counter * self.timing.slot_us
        return contention_start_us + max(offset, 1.0)

    def consume_elapsed_slots(self, idle_until_us: float, contention_start_us: float) -> None:
        """Freeze semantics: deduct slots that elapsed before the medium
        went busy again at ``idle_until_us``."""
        if self.backoff_counter is None or self.backoff_counter <= 0:
            return
        waited = idle_until_us - (contention_start_us + self.pending_difs_us)
        if waited <= 0:
            return
        elapsed = int(waited // self.timing.slot_us)
        self.backoff_counter = max(0, self.backoff_counter - elapsed)

    # ------------------------------------------------------------------
    # Frame construction
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) % 4096
        return self._seq

    def _destination(self, app_frame: AppFrame) -> MacAddress:
        if app_frame.destination == DST_AP:
            return self.bssid
        if app_frame.destination == DST_PEER:
            peer = app_frame.peer
            if not isinstance(peer, MacAddress):
                raise TypeError(f"peer must be a MacAddress, got {type(peer)!r}")
            return peer
        if app_frame.destination == DST_BROADCAST:
            return BROADCAST
        return MULTICAST_GROUP

    _QOS_DOWNGRADE = {
        FrameSubtype.QOS_DATA: FrameSubtype.DATA,
        FrameSubtype.QOS_NULL: FrameSubtype.NULL_FUNCTION,
    }

    def materialize(self, app_frame: AppFrame, retry: bool) -> Dot11Frame:
        """Build the on-air frame for a queued application frame.

        Non-QoS cards transmit plain Data/Null frames regardless of
        what the application asked for — the QoS-vs-legacy frame-type
        mix is itself part of a card's fingerprint.
        """
        if not self.profile.qos_capable:
            downgraded = self._QOS_DOWNGRADE.get(app_frame.subtype)
            if downgraded is not None:
                app_frame = replace(app_frame, subtype=downgraded)
        destination = self._destination(app_frame)
        protect = (
            self.encrypted
            and app_frame.subtype
            in (FrameSubtype.DATA, FrameSubtype.QOS_DATA)
        )
        size = app_frame.size + (8 if protect else 0)
        if app_frame.subtype in (FrameSubtype.NULL_FUNCTION, FrameSubtype.QOS_NULL):
            size = app_frame.size  # null frames carry no payload to protect
        is_data = app_frame.subtype.ftype.value == 2
        return Dot11Frame(
            subtype=app_frame.subtype,
            size=max(size, 28),
            addr1=destination,
            addr2=self.mac,
            addr3=self.bssid,
            retry=retry,
            to_ds=is_data and app_frame.destination == DST_AP,
            from_ds=is_data and app_frame.destination == DST_PEER,
            protected=protect,
            power_mgmt=app_frame.power_mgmt,
            seq=self._next_seq(),
        )

    def data_rate_for(self, app_frame: AppFrame) -> float:
        """Rate selection: management/group frames go at a basic rate,
        unicast data at the rate controller's choice."""
        if app_frame.subtype.ftype.value == 0:  # management
            return 1.0 if 1.0 in self.phy.supported_rates else 6.0
        if app_frame.destination in (DST_BROADCAST, DST_MULTICAST):
            # Group-addressed data goes at a low basic rate.
            return 1.0 if 1.0 in self.phy.supported_rates else 6.0
        return self.phy.clamp_rate(self.rate_control.current_rate())

    def control_response_rate(self, data_rate: float) -> float:
        """Rate of CTS/ACK answering a frame sent at ``data_rate``."""
        if data_rate in DSSS_RATES:
            return min(data_rate, 2.0)
        return 24.0 if data_rate >= 24.0 else (12.0 if data_rate >= 12.0 else 6.0)

    # ------------------------------------------------------------------
    # Exchange execution
    # ------------------------------------------------------------------
    def position_at(self, time_us: float) -> Position:
        """Current position (advances the mobility process)."""
        return self.mobility.position_at(time_us, self.rng)

    def _capture(
        self,
        captures: list[CapturedFrame],
        end_time_us: float,
        frame: Dot11Frame,
        rate: float,
        sender_position: Position,
    ) -> None:
        """Append a monitor capture draw for one on-air frame."""
        distance = sender_position.distance_to(self.monitor_position)
        if self.channel_model.monitor_captures(distance, rate, frame.size, self.rng):
            signal = self.channel_model.tx_power_dbm - (
                self.channel_model.reference_loss_db
                + 10
                * self.channel_model.path_loss_exponent
                * math.log10(max(distance, 0.5))
            )
            captures.append(
                CapturedFrame(
                    timestamp_us=end_time_us,
                    frame=frame,
                    rate_mbps=rate,
                    signal_dbm=max(-95.0, signal),
                    channel=self.channel_number,
                )
            )

    def execute_exchange(self, tx_start_us: float) -> ExchangeOutcome:
        """Run a full medium access starting at ``tx_start_us``.

        Handles RTS/CTS when the profile's threshold demands it, the
        data frame, the responder's ACK, channel error draws, retry
        bookkeeping, rate-control feedback and monitor capture draws.
        """
        if not self.queue:
            raise RuntimeError(f"{self.mac} won arbitration with an empty queue")
        app_frame = self.queue[0]
        retry = self.retry_count > 0
        frame = self.materialize(app_frame, retry)
        rate = self.data_rate_for(app_frame)
        my_position = self.position_at(tx_start_us)
        distance_peer = my_position.distance_to(self.peer_position)
        # Any unicast frame is acknowledged; group-addressed frames
        # (broadcast data, probe requests, beacons) are fire-and-forget.
        needs_ack = not frame.addr1.is_multicast
        captures: list[CapturedFrame] = []
        aired: list[Dot11Frame] = [frame]
        sifs = self.timing.sifs_us
        responder_sifs = sifs + self.responder_sifs_offset_us
        now = tx_start_us

        # SNR hint for rate control (driver channel estimation).
        snr_hint = self.channel_model.snr_db(distance_peer, self.rng)
        self.rate_control.on_snr_hint(snr_hint)

        use_rts = (
            needs_ack
            and self.profile.rts_threshold is not None
            and frame.size > self.profile.rts_threshold
        )
        if use_rts:
            data_air = self.phy.airtime_us(frame.size, rate)
            ctl_rate = self.control_response_rate(rate)
            cts_air = self.phy.airtime_us(14, ctl_rate)
            ack_air = self.phy.airtime_us(14, ctl_rate)
            nav = round(3 * sifs + cts_air + data_air + ack_air)
            rts = rts_frame(self.mac, frame.addr1, nav)
            rts_air = self.phy.airtime_us(rts.size, ctl_rate)
            rts_end = now + rts_air
            self._capture(captures, rts_end, rts, ctl_rate, my_position)
            rts_ok = self.channel_model.frame_succeeds(
                distance_peer, ctl_rate, rts.size, self.rng
            )
            if not rts_ok:
                # No CTS: the sender times out and recontends.
                self._on_failure()
                return ExchangeOutcome(
                    captures=captures,
                    busy_until_us=rts_end + sifs + cts_air,
                    dequeued=False,
                    aired=[rts],
                )
            cts = cts_frame(self.mac, max(0, nav - round(sifs + cts_air)))
            cts_end = rts_end + responder_sifs + cts_air
            self._capture(captures, cts_end, cts, ctl_rate, self.peer_position)
            now = cts_end + sifs
        # Data (or management/null) frame itself.
        data_air = self.phy.airtime_us(frame.size, rate)
        data_end = now + data_air
        self._capture(captures, data_end, frame, rate, my_position)

        if not needs_ack:
            # Group-addressed / management-broadcast: fire and forget.
            self._on_success()
            return ExchangeOutcome(
                captures=captures, busy_until_us=data_end, dequeued=True, aired=aired
            )

        data_ok = self.channel_model.frame_succeeds(
            distance_peer, rate, frame.size, self.rng
        )
        if not data_ok:
            self._on_failure()
            ack_air = self.phy.airtime_us(14, self.control_response_rate(rate))
            return ExchangeOutcome(
                captures=captures,
                busy_until_us=data_end + sifs + ack_air,
                dequeued=False,
                aired=aired,
            )
        ctl_rate = self.control_response_rate(rate)
        ack = ack_frame(self.mac)
        ack_end = data_end + responder_sifs + self.phy.airtime_us(ack.size, ctl_rate)
        self._capture(captures, ack_end, ack, ctl_rate, self.peer_position)
        self._on_success()
        return ExchangeOutcome(
            captures=captures, busy_until_us=ack_end, dequeued=True, aired=aired
        )

    def execute_collision_leg(self, tx_start_us: float) -> float:
        """This station's part of a collision: its frame airs but is
        unreceivable.  Returns the air end time."""
        if not self.queue:
            raise RuntimeError(f"{self.mac} collided with an empty queue")
        app_frame = self.queue[0]
        frame = self.materialize(app_frame, self.retry_count > 0)
        rate = self.data_rate_for(app_frame)
        unicast = not frame.addr1.is_multicast
        use_rts = (
            unicast
            and self.profile.rts_threshold is not None
            and frame.size > self.profile.rts_threshold
        )
        size = 20 if use_rts else frame.size
        ctl_rate = self.control_response_rate(rate)
        air = self.phy.airtime_us(size, ctl_rate if use_rts else rate)
        self.stats.collisions += 1
        if unicast:
            self._on_failure()
        else:
            # Group frames are never retried: the loss is silent.
            self._on_success()
        return tx_start_us + air

    # ------------------------------------------------------------------
    # Outcome bookkeeping
    # ------------------------------------------------------------------
    def _on_success(self) -> None:
        self.queue.popleft()
        self.retry_count = 0
        self.stats.transmitted += 1
        self.rate_control.on_result(True)
        self.backoff_counter = None
        if self.queue:
            self.draw_backoff()

    def _on_failure(self) -> None:
        self.retry_count += 1
        self.stats.retries += 1
        self.rate_control.on_result(False)
        if self.retry_count > self.profile.retry_limit:
            self.queue.popleft()
            self.retry_count = 0
            self.stats.dropped += 1
        self.backoff_counter = None
        if self.queue:
            self.draw_backoff()
