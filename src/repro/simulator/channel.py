"""Radio channel model: path loss, SNR, frame error and mobility.

The paper's two environments differ mainly in channel dynamics:

* **office** — stations are static, links are strong and stable, so
  rate control converges and per-device behaviour dominates;
* **conference** — "devices often change location which impacts the
  quality of the wireless signal" (Section V-B1), degrading the
  transmission-rate and transmission-time fingerprints.

The model is a log-distance path loss with shadowing, per-rate SNR
thresholds mapped through a sigmoid to a frame-success probability,
and an optional random-waypoint mobility process.  A ``noiseless``
channel (every frame succeeds, monitor captures everything) stands in
for the paper's Faraday cage in the Section VI micro-experiments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

#: Minimum SNR (dB) at which each rate decodes reliably; values follow
#: common 802.11b/g receiver sensitivity tables.
RATE_SNR_THRESHOLD_DB: dict[float, float] = {
    1.0: 1.0,
    2.0: 3.0,
    5.5: 5.0,
    11.0: 8.0,
    6.0: 5.0,
    9.0: 7.0,
    12.0: 9.0,
    18.0: 11.0,
    24.0: 14.0,
    36.0: 18.0,
    48.0: 22.0,
    54.0: 24.0,
}


@dataclass(slots=True)
class Position:
    """A 2-D position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance, floored at 0.5 m to avoid singularities."""
        return max(0.5, math.hypot(self.x - other.x, self.y - other.y))


@dataclass(slots=True)
class Mobility:
    """Random-waypoint mobility inside a rectangular area.

    ``speed_mps`` of 0 disables movement.  Positions are updated lazily:
    callers ask for the position *at a time* and the walk is advanced
    deterministically from its RNG.
    """

    area_m: float = 40.0
    speed_mps: float = 0.0
    pause_s: float = 30.0
    _position: Position = field(default_factory=lambda: Position(10.0, 10.0))
    _target: Position | None = None
    _last_update_us: float = 0.0
    _pause_until_us: float = 0.0

    def position_at(self, time_us: float, rng: random.Random) -> Position:
        """Advance the walk to ``time_us`` and return the position."""
        if self.speed_mps <= 0 or time_us <= self._last_update_us:
            self._last_update_us = max(self._last_update_us, time_us)
            return self._position
        elapsed_s = (time_us - self._last_update_us) / 1e6
        self._last_update_us = time_us
        while elapsed_s > 0:
            if time_us < self._pause_until_us:
                return self._position
            if self._target is None:
                self._target = Position(
                    rng.uniform(0, self.area_m), rng.uniform(0, self.area_m)
                )
            dist = self._position.distance_to(self._target)
            step = self.speed_mps * elapsed_s
            if step >= dist:
                self._position = self._target
                self._target = None
                travel_s = dist / self.speed_mps
                elapsed_s -= travel_s
                self._pause_until_us = time_us + self.pause_s * 1e6
                return self._position
            frac = step / dist
            self._position = Position(
                self._position.x + (self._target.x - self._position.x) * frac,
                self._position.y + (self._target.y - self._position.y) * frac,
            )
            elapsed_s = 0.0
        return self._position


@dataclass(slots=True)
class ChannelModel:
    """Log-distance path loss + shadowing + sigmoid frame errors.

    ``noiseless=True`` turns the channel into a Faraday-cage analogue:
    every frame decodes at any receiver and the monitor misses nothing.
    """

    tx_power_dbm: float = 15.0
    noise_floor_dbm: float = -92.0
    path_loss_exponent: float = 2.7
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 2.0
    sigmoid_width_db: float = 1.8
    monitor_capture_bonus_db: float = 3.0
    noiseless: bool = False

    def snr_db(self, distance_m: float, rng: random.Random) -> float:
        """Instantaneous SNR over a link of ``distance_m`` metres."""
        path_loss = self.reference_loss_db + 10 * self.path_loss_exponent * math.log10(
            max(distance_m, 0.5)
        )
        shadowing = rng.gauss(0.0, self.shadowing_sigma_db)
        rx_power = self.tx_power_dbm - path_loss + shadowing
        return rx_power - self.noise_floor_dbm

    def success_probability(self, snr_db: float, rate_mbps: float, size: int) -> float:
        """Probability one frame decodes at this SNR and rate.

        The sigmoid centres on the rate's sensitivity threshold; longer
        frames accumulate more error chances, modelled by compounding
        the per-1500-byte probability.
        """
        threshold = RATE_SNR_THRESHOLD_DB[rate_mbps]
        base = 1.0 / (1.0 + math.exp(-(snr_db - threshold) / self.sigmoid_width_db))
        exponent = max(0.25, size / 1500.0)
        return base**exponent

    def frame_succeeds(
        self, distance_m: float, rate_mbps: float, size: int, rng: random.Random
    ) -> bool:
        """Draw whether a frame crosses this link intact."""
        if self.noiseless:
            return True
        snr = self.snr_db(distance_m, rng)
        return rng.random() < self.success_probability(snr, rate_mbps, size)

    def monitor_captures(
        self, distance_m: float, rate_mbps: float, size: int, rng: random.Random
    ) -> bool:
        """Draw whether the monitor's card decodes a frame.

        Monitoring setups favour antenna placement, modelled as an SNR
        bonus — but captures are still lossy, as real monitor traces
        (and the paper's) are.
        """
        if self.noiseless:
            return True
        snr = self.snr_db(distance_m, rng) + self.monitor_capture_bonus_db
        return rng.random() < self.success_probability(snr, rate_mbps, size)

    def best_rate_for_snr(self, snr_db: float, rates: tuple[float, ...]) -> float:
        """Highest rate whose threshold is comfortably below ``snr_db``."""
        best = rates[0]
        for rate in rates:
            if RATE_SNR_THRESHOLD_DB[rate] + 2.0 <= snr_db:
                best = rate
        return best
