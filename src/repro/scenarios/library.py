"""Declarative scenario registry.

The paper validates on one simulated office analogue; the library
turns "as many scenarios as you can imagine" into named, parameterized
presets.  A preset is a factory producing a fully seeded
:class:`~repro.simulator.scenario.Scenario` plus the metadata the
evaluation harness needs (station count, duration, traffic mix, and
the split/window/min-observation settings its cells are pinned
under).  Every build is validated eagerly — duplicate MACs, zero
stations and non-positive durations raise :class:`ValueError` at
construction instead of failing deep inside the event loop.

Presets register themselves via the :func:`scenario_preset` decorator
(see :mod:`repro.scenarios.presets`); look them up with
:func:`scenario_by_name` / :func:`scenario_names` and materialise one
with :func:`build_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.simulator.scenario import Scenario
from repro.traces.trace import Trace

#: A preset body: receives (duration_s, seed, scale) and returns the
#: assembled (but not yet run) scenario.
ScenarioBuilder = Callable[[float, int, float], Scenario]


@dataclass(frozen=True)
class ScenarioMetadata:
    """Everything the evaluation harness records about one build."""

    name: str
    description: str
    duration_s: float
    seed: int
    scale: float
    station_count: int
    ap_count: int
    encrypted: bool
    training_s: float
    window_s: float
    min_observations: int
    #: Sorted unique traffic-source class names across all stations
    #: (driver-level services derived from profiles not included).
    traffic_mix: tuple[str, ...]


@dataclass
class BuiltScenario:
    """One materialised preset: the scenario plus its metadata.

    ``simulate()`` runs the event loop once and memoises the resulting
    :class:`~repro.traces.trace.Trace`; repeated calls (e.g. several
    matrix cells sharing a scenario) reuse the capture.
    """

    scenario: Scenario
    metadata: ScenarioMetadata
    _trace: Trace | None = field(default=None, repr=False)

    def simulate(self) -> Trace:
        """Run (or recall) the simulation as a ground-truth trace."""
        if self._trace is None:
            result = self.scenario.run()
            self._trace = Trace(
                frames=result.captures,
                name=self.metadata.name,
                encrypted=self.metadata.encrypted,
                device_names=result.station_names,
            )
        return self._trace


@dataclass(frozen=True)
class ScenarioPreset:
    """A named, parameterized scenario factory."""

    name: str
    description: str
    duration_s: float
    seed: int
    builder: ScenarioBuilder
    #: Fraction of the trace used as the training split by the
    #: evaluation harness (the paper trains on a leading prefix).
    training_fraction: float = 0.5
    window_s: float = 15.0
    min_observations: int = 30

    def build(
        self,
        duration_s: float | None = None,
        seed: int | None = None,
        scale: float = 1.0,
    ) -> BuiltScenario:
        """Materialise the preset (validated, not yet simulated)."""
        chosen_duration = self.duration_s if duration_s is None else duration_s
        chosen_seed = self.seed if seed is None else seed
        if chosen_duration <= 0:
            raise ValueError(
                f"scenario {self.name!r}: duration must be positive: "
                f"{chosen_duration}"
            )
        if scale <= 0:
            raise ValueError(
                f"scenario {self.name!r}: scale must be positive: {scale}"
            )
        scenario = self.builder(chosen_duration, chosen_seed, scale)
        scenario.validate()
        sources = {
            type(source).__name__
            for spec in scenario.specs
            for source in (*spec.sources, *spec.downlink)
        }
        metadata = ScenarioMetadata(
            name=self.name,
            description=self.description,
            duration_s=chosen_duration,
            seed=chosen_seed,
            scale=scale,
            station_count=len(scenario.specs),
            ap_count=scenario.ap_count,
            encrypted=scenario.encrypted,
            training_s=chosen_duration * self.training_fraction,
            window_s=self.window_s,
            min_observations=self.min_observations,
            traffic_mix=tuple(sorted(sources)),
        )
        return BuiltScenario(scenario=scenario, metadata=metadata)


_REGISTRY: dict[str, ScenarioPreset] = {}


def scenario_preset(
    name: str,
    description: str,
    duration_s: float,
    seed: int,
    training_fraction: float = 0.5,
    window_s: float = 15.0,
    min_observations: int = 30,
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Register a builder function as a named preset (decorator)."""

    def register(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _REGISTRY:
            raise ValueError(f"scenario preset {name!r} already registered")
        _REGISTRY[name] = ScenarioPreset(
            name=name,
            description=description,
            duration_s=duration_s,
            seed=seed,
            builder=builder,
            training_fraction=training_fraction,
            window_s=window_s,
            min_observations=min_observations,
        )
        return builder

    return register


def scenario_names() -> tuple[str, ...]:
    """All registered preset names, in registration order."""
    _ensure_presets()
    return tuple(_REGISTRY)


def scenario_by_name(name: str) -> ScenarioPreset:
    """Look up a preset; raises ``KeyError`` with the available names."""
    _ensure_presets()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def build_scenario(
    name: str,
    duration_s: float | None = None,
    seed: int | None = None,
    scale: float = 1.0,
) -> BuiltScenario:
    """Materialise a registered preset by name."""
    return scenario_by_name(name).build(
        duration_s=duration_s, seed=seed, scale=scale
    )


def _ensure_presets() -> None:
    """Import the bundled preset module exactly once."""
    import repro.scenarios.presets  # noqa: F401  (registers on import)
