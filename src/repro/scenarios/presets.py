"""The bundled scenario presets.

Eight named environments spanning the workload axes the paper never
reached: density (lecture hall), sparse machine traffic (IoT swarm),
co-channel interference (overlapping BSSs), the MAC-randomisation
countermeasure (crowd), mobility with churn (commuters), power-save
signalling diversity (fleet), and sustained media load (video floor).
``office-baseline`` reproduces the repo's original fixed-seed office
fixture bit-for-bit, so the golden numbers pinned since PR 3 anchor
the whole matrix.

Every preset is deterministic per (duration, seed, scale): station
composition, traffic mixes and explicit MACs are all drawn from one
``random.Random(seed)``.  ``scale`` grows/shrinks the station count
(never below two stations) so the same scenario shape serves both the
CI smoke matrix and large sweeps.
"""

from __future__ import annotations

import dataclasses
import random

from repro.dot11.mac import vendor_mac
from repro.simulator.channel import ChannelModel
from repro.simulator.profiles import (
    PROFILE_LIBRARY,
    PowerSaveBehaviour,
    profile_by_name,
)
from repro.simulator.scenario import Scenario, StationSpec
from repro.simulator.traffic import (
    ArpProbeService,
    CbrTraffic,
    KeepAliveService,
    MdnsService,
    SsdpService,
    WebTraffic,
)
from repro.scenarios.library import scenario_preset


def _count(base: int, scale: float) -> int:
    """Scaled station count, floored at two devices."""
    return max(2, int(round(base * scale)))


@scenario_preset(
    name="office-baseline",
    description="The original 3-station encrypted office fixture "
    "(fixed seed 5) whose evaluation numbers are golden-pinned.",
    duration_s=90.0,
    seed=5,
)
def _office_baseline(duration_s: float, seed: int, scale: float) -> Scenario:
    # Deliberately ignores ``scale``: this preset exists to reproduce
    # the historical golden scenario exactly (tests/conftest.py).
    scenario = Scenario(duration_s=duration_s, seed=seed, encrypted=True)
    scenario.add_station(
        StationSpec(
            name="alice",
            profile="intel-2200bg-linux",
            sources=[CbrTraffic(interval_ms=30)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="bob",
            profile="broadcom-4318-win",
            sources=[WebTraffic(mean_think_s=3.0)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="carol",
            profile="atheros-ar5212-madwifi",
            sources=[CbrTraffic(interval_ms=60)],
        )
    )
    return scenario


@scenario_preset(
    name="lecture-hall",
    description="Dense static audience on one AP; many devices share "
    "a chipset, separable only through their traffic mix.",
    duration_s=120.0,
    seed=1102,
    window_s=20.0,
)
def _lecture_hall(duration_s: float, seed: int, scale: float) -> Scenario:
    rng = random.Random(seed)
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        encrypted=False,
        area_m=35.0,
        ap_count=1,
        channel_model=ChannelModel(
            path_loss_exponent=3.0, shadowing_sigma_db=2.0, tx_power_dbm=15.0
        ),
    )
    for index in range(_count(16, scale)):
        # A handful of laptop models dominate a lecture hall.
        profile = PROFILE_LIBRARY[index % 5]
        sources: list = [
            WebTraffic(
                mean_think_s=rng.uniform(3, 12),
                mean_burst_frames=rng.uniform(8, 26),
                small_size=rng.choice([80, 88, 96, 104]),
            )
        ]
        if rng.random() < 0.4:
            sources.append(
                KeepAliveService(
                    period_s=rng.uniform(10, 25), size=rng.choice([64, 70, 78])
                )
            )
        if rng.random() < 0.3:
            sources.append(MdnsService(period_s=rng.uniform(40, 80)))
        scenario.add_station(
            StationSpec(
                name=f"seat-{index:03d}", profile=profile, sources=sources
            )
        )
    return scenario


@scenario_preset(
    name="iot-swarm",
    description="Sparse periodic telemetry from cheap fixed-rate "
    "sensor chipsets; long inter-burst gaps, tiny payloads.",
    duration_s=150.0,
    seed=2203,
    window_s=30.0,
)
def _iot_swarm(duration_s: float, seed: int, scale: float) -> Scenario:
    rng = random.Random(seed)
    sensor_profiles = (
        "ralink-rt2500-linux",
        "realtek-rtl8187-linux",
        "realtek-rtl8180-b-only",
        "ralink-rt73-win",
        "samsung-mobile",
    )
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        encrypted=True,
        area_m=50.0,
        ap_count=1,
    )
    for index in range(_count(14, scale)):
        profile = profile_by_name(sensor_profiles[index % len(sensor_profiles)])
        sources: list = [
            CbrTraffic(
                payload=rng.choice([96, 128, 160, 220]),
                interval_ms=rng.uniform(200, 500),
                jitter_ms=rng.uniform(2, 15),
            ),
            KeepAliveService(
                period_s=rng.uniform(5, 15), size=rng.choice([60, 64, 72])
            ),
        ]
        if rng.random() < 0.35:
            sources.append(ArpProbeService(mean_period_s=rng.uniform(20, 50)))
        scenario.add_station(
            StationSpec(
                name=f"sensor-{index:03d}", profile=profile, sources=sources
            )
        )
    return scenario


@scenario_preset(
    name="overlapping-bss",
    description="Three co-channel BSSs contending for one medium; "
    "stations are homed across APs and hear each other's traffic.",
    duration_s=120.0,
    seed=3304,
    window_s=20.0,
)
def _overlapping_bss(duration_s: float, seed: int, scale: float) -> Scenario:
    rng = random.Random(seed)
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        encrypted=False,
        area_m=90.0,
        ap_count=3,
        channel_model=ChannelModel(
            path_loss_exponent=3.2, shadowing_sigma_db=2.5, tx_power_dbm=16.0
        ),
    )
    for index in range(_count(12, scale)):
        profile = PROFILE_LIBRARY[index % len(PROFILE_LIBRARY)]
        sources: list = [
            WebTraffic(
                mean_think_s=rng.uniform(4, 15),
                mean_burst_frames=rng.uniform(8, 22),
            )
        ]
        if rng.random() < 0.5:
            sources.append(
                CbrTraffic(
                    payload=rng.choice([512, 768, 1024]),
                    interval_ms=rng.uniform(40, 120),
                )
            )
        scenario.add_station(
            StationSpec(
                name=f"bss-dev-{index:03d}", profile=profile, sources=sources
            )
        )
    return scenario


@scenario_preset(
    name="mac-randomizing-crowd",
    description="Roaming devices presenting locally-administered "
    "random MACs; identity only recoverable from MAC-layer behaviour.",
    duration_s=120.0,
    seed=4405,
    window_s=20.0,
)
def _mac_randomizing_crowd(duration_s: float, seed: int, scale: float) -> Scenario:
    rng = random.Random(seed)
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        encrypted=False,
        area_m=70.0,
        ap_count=2,
        channel_model=ChannelModel(
            path_loss_exponent=3.3, shadowing_sigma_db=2.5, tx_power_dbm=15.0
        ),
    )
    for index in range(_count(14, scale)):
        profile = PROFILE_LIBRARY[index % len(PROFILE_LIBRARY)]
        # The hardware identity stays per-profile; the *presented*
        # address is a fresh locally-administered one (countermeasure
        # the tracker application links back, DESIGN.md §4).
        hardware = vendor_mac(profile.oui, 0x100 + index)
        scenario.add_station(
            StationSpec(
                name=f"walker-{index:03d}",
                profile=profile,
                mac=hardware.randomized(rng),
                sources=[
                    WebTraffic(
                        mean_think_s=rng.uniform(5, 18),
                        mean_burst_frames=rng.uniform(6, 18),
                    )
                ],
                speed_mps=rng.uniform(0.6, 1.6),
                pause_s=rng.uniform(15, 60),
            )
        )
    return scenario


@scenario_preset(
    name="mobile-commuters",
    description="Devices arriving, roaming across a large area and "
    "leaving early — churn plus link-quality drift.",
    duration_s=150.0,
    seed=5506,
    window_s=25.0,
)
def _mobile_commuters(duration_s: float, seed: int, scale: float) -> Scenario:
    rng = random.Random(seed)
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        encrypted=False,
        area_m=100.0,
        ap_count=2,
        channel_model=ChannelModel(
            path_loss_exponent=3.4, shadowing_sigma_db=3.0, tx_power_dbm=15.0
        ),
    )
    for index in range(_count(12, scale)):
        profile = PROFILE_LIBRARY[index % len(PROFILE_LIBRARY)]
        arrival_s = rng.uniform(0.0, duration_s * 0.3) if rng.random() < 0.5 else 0.0
        departure_s = (
            rng.uniform(duration_s * 0.6, duration_s)
            if rng.random() < 0.4
            else None
        )
        scenario.add_station(
            StationSpec(
                name=f"commuter-{index:03d}",
                profile=profile,
                sources=[
                    WebTraffic(
                        mean_think_s=rng.uniform(4, 14),
                        mean_burst_frames=rng.uniform(8, 20),
                    ),
                    KeepAliveService(
                        period_s=rng.uniform(10, 25),
                        size=rng.choice([64, 70, 78]),
                    ),
                ],
                arrival_s=arrival_s,
                departure_s=departure_s,
                speed_mps=rng.uniform(0.9, 2.4),
                pause_s=rng.uniform(10, 40),
            )
        )
    return scenario


@scenario_preset(
    name="power-save-fleet",
    description="A fleet of sleepy clients with mixed power-save "
    "cadences; null-frame signalling dominates the air.",
    duration_s=150.0,
    seed=6607,
    window_s=30.0,
)
def _power_save_fleet(duration_s: float, seed: int, scale: float) -> Scenario:
    rng = random.Random(seed)
    ps_profiles = (
        "intel-2200bg-linux",
        "intel-3945abg-win",
        "broadcom-4318-win",
        "broadcom-43224-osx",
        "ralink-rt73-win",
        "apple-bcm4321-osx",
        "samsung-mobile",
    )
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        encrypted=True,
        area_m=40.0,
        ap_count=1,
    )
    for index in range(_count(12, scale)):
        base = profile_by_name(ps_profiles[index % len(ps_profiles)])
        # Same chipset, different configured sleep cadence — the
        # per-device texture Figure 8 isolates.
        profile = dataclasses.replace(
            base,
            power_save=PowerSaveBehaviour(
                enabled=True,
                period_ms=rng.uniform(140, 520),
                period_jitter_ms=rng.uniform(8, 80),
                wake_gap_ms=rng.uniform(4, 18),
            ),
        )
        sources: list = [
            WebTraffic(
                mean_think_s=rng.uniform(8, 25),
                mean_burst_frames=rng.uniform(4, 12),
            )
        ]
        if rng.random() < 0.4:
            sources.append(SsdpService(period_s=rng.uniform(25, 40)))
        scenario.add_station(
            StationSpec(
                name=f"sleeper-{index:03d}", profile=profile, sources=sources
            )
        )
    return scenario


@scenario_preset(
    name="video-floor",
    description="Few stations streaming sustained video downlink with "
    "small uplink feedback — a heavy, steady medium load.",
    duration_s=90.0,
    seed=7708,
)
def _video_floor(duration_s: float, seed: int, scale: float) -> Scenario:
    rng = random.Random(seed)
    scenario = Scenario(
        duration_s=duration_s,
        seed=seed,
        encrypted=True,
        area_m=30.0,
        ap_count=1,
    )
    for index in range(_count(6, scale)):
        profile = PROFILE_LIBRARY[(index * 3) % len(PROFILE_LIBRARY)]
        scenario.add_station(
            StationSpec(
                name=f"screen-{index:03d}",
                profile=profile,
                sources=[
                    # Uplink: player feedback / TCP acks.
                    CbrTraffic(
                        payload=rng.choice([92, 108, 124]),
                        interval_ms=rng.uniform(25, 45),
                    )
                ],
                downlink=[
                    # Downlink: the stream itself.
                    CbrTraffic(
                        payload=rng.choice([1400, 1460, 1470]),
                        interval_ms=rng.uniform(16, 28),
                        jitter_ms=rng.uniform(0.5, 3.0),
                    )
                ],
            )
        )
    return scenario
