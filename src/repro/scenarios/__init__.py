"""Declarative scenario library (DESIGN.md §7).

Named, parameterized scenario presets on top of
:class:`~repro.simulator.scenario.Scenario` — the workload axis of the
evaluation matrix.  ``scenario_names()`` lists the bundled presets;
``build_scenario(name)`` materialises one, validated and fully seeded.
"""

from repro.scenarios.library import (
    BuiltScenario,
    ScenarioMetadata,
    ScenarioPreset,
    build_scenario,
    scenario_by_name,
    scenario_names,
    scenario_preset,
)

__all__ = [
    "BuiltScenario",
    "ScenarioMetadata",
    "ScenarioPreset",
    "build_scenario",
    "scenario_by_name",
    "scenario_names",
    "scenario_preset",
]
