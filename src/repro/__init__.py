"""repro — passive 802.11 device fingerprinting.

A full reproduction of Neumann, Heen & Onno, *An Empirical Study of
Passive 802.11 Device Fingerprinting* (ICDCS 2012): the five-parameter
histogram fingerprinting method, its evaluation harness, a
discrete-event 802.11 MAC simulator standing in for the paper's
testbeds, a pure-Python Radiotap/pcap codec, and the applications the
paper sketches (MAC-spoof detection, rogue-AP detection, tracking).

Quickstart::

    from repro import quick_fingerprint_demo
    report = quick_fingerprint_demo()

or assemble the pieces (see README.md / examples/)::

    from repro.core import SignatureBuilder, InterArrivalTime, ReferenceDatabase
    from repro.traces import office_trace

    trace = office_trace(1)
    split = trace.split(training_s=600)
    builder = SignatureBuilder(InterArrivalTime())
    database = ReferenceDatabase.from_training(builder, split.training.frames)
"""

from repro.core import (
    ALL_PARAMETERS,
    DetectionConfig,
    FrameSize,
    InterArrivalTime,
    MediumAccessTime,
    ReferenceDatabase,
    Signature,
    SignatureBuilder,
    TransmissionRate,
    TransmissionTime,
    evaluate_trace,
    match_signature,
)
from repro.traces import FrameTable, Trace, conference_trace, office_trace

__version__ = "1.0.0"

__all__ = [
    "ALL_PARAMETERS",
    "DetectionConfig",
    "FrameSize",
    "FrameTable",
    "InterArrivalTime",
    "MediumAccessTime",
    "ReferenceDatabase",
    "Signature",
    "SignatureBuilder",
    "Trace",
    "TransmissionRate",
    "TransmissionTime",
    "conference_trace",
    "evaluate_trace",
    "match_signature",
    "office_trace",
    "quick_fingerprint_demo",
]


def quick_fingerprint_demo() -> str:
    """One-call demo: simulate a small office, fingerprint it, report.

    Returns a human-readable report string (also used by the README
    quickstart and ``examples/quickstart.py``).
    """
    from repro.simulator import CbrTraffic, Scenario, StationSpec, WebTraffic

    scenario = Scenario(duration_s=120.0, seed=11, encrypted=True)
    scenario.add_station(
        StationSpec(
            name="laptop-a",
            profile="intel-2200bg-linux",
            sources=[CbrTraffic(interval_ms=25)],
        )
    )
    scenario.add_station(
        StationSpec(
            name="laptop-b",
            profile="broadcom-4318-win",
            sources=[WebTraffic(mean_think_s=4.0)],
        )
    )
    result = scenario.run()
    trace = Trace(
        frames=result.captures,
        name="quick-demo",
        encrypted=True,
        device_names=result.station_names,
    )
    outcome = evaluate_trace(
        trace,
        InterArrivalTime(),
        training_s=40.0,
        config=DetectionConfig(window_s=20.0),
    )
    lines = [
        f"trace: {trace.name} ({len(trace)} frames, {trace.duration_s:.0f}s)",
        f"reference devices: {outcome.reference_devices}",
        f"similarity AUC: {outcome.auc:.3f}",
        f"identification ratio @ FPR 0.1: {outcome.identification_at(0.1):.3f}",
    ]
    return "\n".join(lines)
