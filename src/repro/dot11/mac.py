"""MAC addresses, OUI vendor registry and address generation.

802.11 identifies stations by 48-bit MAC addresses.  The paper's
fingerprinting method groups captured frames by *source address*, so a
small but correct address model matters: broadcast/multicast detection
decides which frames count as "broadcast data" (Section VI-C of the
paper), and locally-administered addresses model the MAC-randomisation
privacy countermeasure discussed in Section VII-B3.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Iterator

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")

#: A small vendor OUI registry.  Real deployments would load the IEEE
#: registry; for simulation we only need plausible, distinct vendors.
OUI_REGISTRY: dict[str, str] = {
    "00:13:e8": "Intel",
    "00:21:6a": "Intel",
    "00:14:a4": "Atheros",
    "00:1d:6a": "Atheros",
    "00:18:f8": "Broadcom",
    "00:26:82": "Broadcom",
    "00:09:2d": "Ralink",
    "00:1f:3b": "Ralink",
    "00:0e:8e": "Realtek",
    "00:e0:4c": "Realtek",
    "00:17:ab": "Apple",
    "00:23:12": "Apple",
    "00:12:47": "Samsung",
    "00:16:6b": "Samsung",
    "00:0f:b5": "Netgear",
    "00:14:6c": "Netgear",
    "00:18:39": "Cisco-Linksys",
    "00:0c:41": "Cisco-Linksys",
    "00:15:6d": "Ubiquiti",
    "00:02:6f": "Senao",
}


@dataclass(frozen=True, slots=True)
class MacAddress:
    """An immutable 48-bit MAC address.

    The integer representation keeps hashing and comparisons cheap; the
    canonical textual form is colon-separated lowercase hex.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 48:
            raise ValueError(f"MAC address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (or ``-`` separated) notation."""
        if not _MAC_RE.match(text):
            raise ValueError(f"invalid MAC address: {text!r}")
        return cls(int(text.replace("-", ":").replace(":", ""), 16))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MacAddress":
        """Build an address from its 6-byte wire representation."""
        if len(raw) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        """Return the 6-byte big-endian wire representation."""
        return self.value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        """True for ``ff:ff:ff:ff:ff:ff``."""
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the I/G bit (LSB of the first octet) is set."""
        return bool((self.value >> 40) & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        """True when the U/L bit is set (e.g. randomised addresses)."""
        return bool((self.value >> 40) & 0x02)

    @property
    def oui(self) -> str:
        """The first three octets in ``aa:bb:cc`` form."""
        return str(self)[:8]

    @property
    def vendor(self) -> str | None:
        """Vendor name if the OUI is in the bundled registry."""
        return OUI_REGISTRY.get(self.oui)

    def randomized(self, rng: random.Random) -> "MacAddress":
        """Return a fresh locally-administered unicast address.

        Models the MAC-randomisation countermeasure: the station keeps
        its hardware identity but presents a new random address.
        """
        value = rng.getrandbits(48)
        value |= 0x02 << 40  # locally administered
        value &= ~(0x01 << 40) & ((1 << 48) - 1)  # unicast
        return MacAddress(value)

    def __str__(self) -> str:
        raw = self.value.to_bytes(6, "big")
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


#: The all-ones broadcast address.
BROADCAST = MacAddress((1 << 48) - 1)


def vendor_mac(vendor_oui: str, serial: int) -> MacAddress:
    """Build a deterministic unicast address under a vendor OUI.

    ``serial`` fills the lower 24 bits, so distinct serials under the
    same OUI never collide.
    """
    if not 0 <= serial < 1 << 24:
        raise ValueError(f"serial out of range: {serial}")
    prefix = int(vendor_oui.replace(":", ""), 16)
    return MacAddress((prefix << 24) | serial)


def mac_sequence(vendor_oui: str, start: int = 1) -> Iterator[MacAddress]:
    """Yield an endless sequence of addresses under one OUI."""
    serial = start
    while True:
        yield vendor_mac(vendor_oui, serial)
        serial += 1
