"""PHY rates and airtime computation for 802.11b/g.

The paper restricts itself to what a commodity 802.11b/g card reports:
the set of rates {1, 2, 5.5, 11} (DSSS/CCK) and {6, 9, 12, 18, 24, 36,
48, 54} (OFDM/ERP).  The Sigcomm'08 trace and the paper's office traces
are 2.4 GHz b/g captures, so the model stops there — no HT/VHT.

Two notions of "transmission time" coexist deliberately:

* :func:`frame_airtime_us` — the *physical* airtime including PLCP
  preamble/header, used by the simulator so the medium is occupied for
  realistic durations;
* the paper's fingerprint parameter ``tt_i = size_i / rate_i``
  (Section IV-A), computed by :mod:`repro.core.parameters` from the
  Radiotap-visible size and rate exactly as the paper does.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

#: Rates a b/g card may report, in Mbps (Radiotap encodes rate in
#: 500 kbps units, so 5.5 is representable).
DSSS_RATES: tuple[float, ...] = (1.0, 2.0, 5.5, 11.0)
OFDM_RATES: tuple[float, ...] = (6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0)
ALL_RATES: tuple[float, ...] = tuple(sorted(DSSS_RATES + OFDM_RATES))

#: Rates the paper's Figure 6 histograms use on the x axis.
PAPER_RATE_AXIS: tuple[float, ...] = (1, 2, 5.5, 11, 12, 18, 24, 36, 48, 54)


class PhyKind(enum.Enum):
    """Modulation family, which decides preamble format and slot time."""

    DSSS = "dsss"
    OFDM = "ofdm"


def phy_kind_for_rate(rate_mbps: float) -> PhyKind:
    """Classify a rate into its modulation family."""
    if rate_mbps in DSSS_RATES:
        return PhyKind.DSSS
    if rate_mbps in OFDM_RATES:
        return PhyKind.OFDM
    raise ValueError(f"not an 802.11b/g rate: {rate_mbps} Mbps")


# PLCP timing constants (IEEE 802.11-2007).
_DSSS_LONG_PREAMBLE_US = 192.0  # 144 µs preamble + 48 µs PLCP header
_DSSS_SHORT_PREAMBLE_US = 96.0
_OFDM_PREAMBLE_US = 16.0  # short+long training sequences
_OFDM_SIGNAL_US = 4.0  # SIGNAL field
_OFDM_SYMBOL_US = 4.0
_OFDM_SERVICE_TAIL_BITS = 16 + 6


def frame_airtime_us(
    size_bytes: int, rate_mbps: float, short_preamble: bool = True
) -> float:
    """Physical airtime of a frame: PLCP preamble/header + payload.

    For OFDM the payload duration is rounded up to whole symbols as the
    standard requires; for DSSS it is ``bits / rate`` plus the (long or
    short) preamble.
    """
    if size_bytes <= 0:
        raise ValueError(f"size must be positive: {size_bytes}")
    kind = phy_kind_for_rate(rate_mbps)
    bits = size_bytes * 8
    if kind is PhyKind.DSSS:
        preamble = _DSSS_SHORT_PREAMBLE_US if short_preamble else _DSSS_LONG_PREAMBLE_US
        # 1 Mbps frames must use the long preamble.
        if rate_mbps == 1.0:
            preamble = _DSSS_LONG_PREAMBLE_US
        return preamble + bits / rate_mbps
    bits_per_symbol = rate_mbps * _OFDM_SYMBOL_US
    symbols = math.ceil((_OFDM_SERVICE_TAIL_BITS + bits) / bits_per_symbol)
    return _OFDM_PREAMBLE_US + _OFDM_SIGNAL_US + symbols * _OFDM_SYMBOL_US


def paper_transmission_time_us(size_bytes: int, rate_mbps: float) -> float:
    """The paper's simplified transmission time ``tt = size / rate``.

    With size in bytes and rate in Mbps this comes out in microseconds
    (bytes·8 / (Mbit/s) = µs); the paper folds the ×8 into its units, so
    we keep the literal ``size/rate`` definition scaled to µs.
    """
    if rate_mbps <= 0:
        raise ValueError(f"rate must be positive: {rate_mbps}")
    return size_bytes * 8.0 / rate_mbps


@dataclass(frozen=True, slots=True)
class Phy:
    """A station's PHY capabilities.

    ``supported_rates`` is the rate ladder rate control may climb;
    ``short_preamble`` models the (driver-dependent) short-preamble
    capability that changes DSSS airtimes.
    """

    supported_rates: tuple[float, ...] = ALL_RATES
    short_preamble: bool = True

    def __post_init__(self) -> None:
        if not self.supported_rates:
            raise ValueError("a PHY must support at least one rate")
        for rate in self.supported_rates:
            phy_kind_for_rate(rate)  # validates
        if tuple(sorted(self.supported_rates)) != self.supported_rates:
            raise ValueError("supported_rates must be sorted ascending")

    def airtime_us(self, size_bytes: int, rate_mbps: float) -> float:
        """Airtime of a frame sent by this PHY."""
        return frame_airtime_us(size_bytes, rate_mbps, self.short_preamble)

    def clamp_rate(self, rate_mbps: float) -> float:
        """Closest supported rate not above ``rate_mbps`` (or lowest)."""
        eligible = [r for r in self.supported_rates if r <= rate_mbps]
        return eligible[-1] if eligible else self.supported_rates[0]

    def next_rate_up(self, rate_mbps: float) -> float:
        """The next rung above ``rate_mbps`` (or ``rate_mbps`` at top)."""
        for rate in self.supported_rates:
            if rate > rate_mbps:
                return rate
        return rate_mbps

    def next_rate_down(self, rate_mbps: float) -> float:
        """The next rung below ``rate_mbps`` (or ``rate_mbps`` at bottom)."""
        for rate in reversed(self.supported_rates):
            if rate < rate_mbps:
                return rate
        return rate_mbps


#: Convenience PHYs.
PHY_BG = Phy()
PHY_B_ONLY = Phy(supported_rates=DSSS_RATES)
PHY_G_ONLY = Phy(supported_rates=OFDM_RATES)
