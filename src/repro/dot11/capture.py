"""Monitor-mode view of a frame: what a Radiotap capture exposes.

A passive monitor sees, per frame: the end-of-reception timestamp, the
frame size, the transmission rate, signal strength, channel and the
decoded MAC header.  :class:`CapturedFrame` is that view — the *only*
input to the fingerprinting core, which enforces the paper's constraint
that fingerprints be computable from Radiotap/Prism metadata alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress


@dataclass(frozen=True, slots=True)
class CapturedFrame:
    """One captured frame with its Radiotap-level metadata.

    ``timestamp_us`` is the **end-of-reception** time in microseconds —
    the paper's ``t_i``.  ``rate_mbps`` and ``size`` come from the
    Radiotap header (the receiving card fills them in, so an emitter
    cannot spoof them without actually changing its behaviour).
    """

    timestamp_us: float
    frame: Dot11Frame
    rate_mbps: float
    signal_dbm: float = -50.0
    channel: int = 6
    airtime_us: float | None = None

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0:
            raise ValueError(f"rate must be positive: {self.rate_mbps}")
        if self.timestamp_us < 0:
            raise ValueError(f"timestamp must be >= 0: {self.timestamp_us}")

    @property
    def sender(self) -> MacAddress | None:
        """Sender attribution as per the paper (``None`` for ACK/CTS)."""
        return self.frame.transmitter

    @property
    def size(self) -> int:
        """Frame size in bytes as reported by the capture."""
        return self.frame.size

    @property
    def subtype(self) -> FrameSubtype:
        """The frame subtype."""
        return self.frame.subtype

    @property
    def ftype_key(self) -> str:
        """Histogram key (frame-type label)."""
        return self.frame.ftype_key

    @property
    def timestamp_s(self) -> float:
        """Timestamp in seconds (pcap convenience)."""
        return self.timestamp_us / 1e6

    def with_timestamp(self, timestamp_us: float) -> "CapturedFrame":
        """Copy with a shifted timestamp (used by replay attacks)."""
        return replace(self, timestamp_us=timestamp_us)

    def with_sender(self, sender: MacAddress) -> "CapturedFrame":
        """Copy with a rewritten transmitter (MAC spoofing model)."""
        if not self.frame.subtype.has_transmitter_address:
            raise ValueError("cannot rewrite the sender of an ACK/CTS frame")
        return replace(self, frame=replace(self.frame, addr2=sender))
