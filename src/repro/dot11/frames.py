"""802.11 frame types, subtypes and the in-memory frame model.

The paper's signature construction keys histograms by *frame type*
("e.g. Data frames, Probe Requests, ...").  We follow the 802.11
type/subtype taxonomy: ``FrameType`` is the 2-bit type field
(management / control / data) and ``FrameSubtype`` the 4-bit subtype.
The fingerprinting layer uses :meth:`Dot11Frame.ftype_key` — the
subtype-level label — as the histogram key, which is what the paper's
examples (Probe Request, Data null function, RTS, ...) imply.

Sender-attribution rules from Section IV-A are encoded here as well:
ACK and CTS frames carry no transmitter address, so a passive monitor
cannot attribute them (``si = null`` in the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dot11.mac import BROADCAST, MacAddress


class FrameType(enum.IntEnum):
    """The 2-bit 802.11 frame type."""

    MANAGEMENT = 0
    CONTROL = 1
    DATA = 2


class FrameSubtype(enum.Enum):
    """Frame subtypes used by the model (type, subtype) pairs.

    The numeric values follow IEEE 802.11-2007 Table 7-1 so the wire
    codec can round-trip them.
    """

    # Management
    ASSOC_REQUEST = (FrameType.MANAGEMENT, 0)
    ASSOC_RESPONSE = (FrameType.MANAGEMENT, 1)
    PROBE_REQUEST = (FrameType.MANAGEMENT, 4)
    PROBE_RESPONSE = (FrameType.MANAGEMENT, 5)
    BEACON = (FrameType.MANAGEMENT, 8)
    DISASSOC = (FrameType.MANAGEMENT, 10)
    AUTH = (FrameType.MANAGEMENT, 11)
    DEAUTH = (FrameType.MANAGEMENT, 12)
    # Control
    BLOCK_ACK_REQ = (FrameType.CONTROL, 8)
    BLOCK_ACK = (FrameType.CONTROL, 9)
    PS_POLL = (FrameType.CONTROL, 10)
    RTS = (FrameType.CONTROL, 11)
    CTS = (FrameType.CONTROL, 12)
    ACK = (FrameType.CONTROL, 13)
    # Data
    DATA = (FrameType.DATA, 0)
    NULL_FUNCTION = (FrameType.DATA, 4)
    QOS_DATA = (FrameType.DATA, 8)
    QOS_NULL = (FrameType.DATA, 12)

    @property
    def ftype(self) -> FrameType:
        """The 2-bit type this subtype belongs to."""
        return self.value[0]

    @property
    def subtype_code(self) -> int:
        """The 4-bit subtype field value."""
        return self.value[1]

    @property
    def label(self) -> str:
        """Human-readable histogram key, e.g. ``"Probe Request"``."""
        return _LABELS[self]

    @property
    def has_transmitter_address(self) -> bool:
        """Whether a passive monitor can attribute this frame's sender.

        ACK and CTS frames carry only a receiver address (paper
        Section IV-A, footnote 2): their sender is ``None``.
        """
        return self not in (FrameSubtype.ACK, FrameSubtype.CTS)

    @classmethod
    def from_codes(cls, ftype: int, subtype: int) -> "FrameSubtype":
        """Look up a subtype from the wire (type, subtype) codes."""
        try:
            return _BY_CODE[(ftype, subtype)]
        except KeyError:
            raise ValueError(
                f"unsupported frame type/subtype: ({ftype}, {subtype})"
            ) from None


_LABELS: dict[FrameSubtype, str] = {
    FrameSubtype.ASSOC_REQUEST: "Association Request",
    FrameSubtype.ASSOC_RESPONSE: "Association Response",
    FrameSubtype.PROBE_REQUEST: "Probe Request",
    FrameSubtype.PROBE_RESPONSE: "Probe Response",
    FrameSubtype.BEACON: "Beacon",
    FrameSubtype.DISASSOC: "Disassociation",
    FrameSubtype.AUTH: "Authentication",
    FrameSubtype.DEAUTH: "Deauthentication",
    FrameSubtype.BLOCK_ACK_REQ: "Block Ack Request",
    FrameSubtype.BLOCK_ACK: "Block Ack",
    FrameSubtype.PS_POLL: "PS-Poll",
    FrameSubtype.RTS: "RTS",
    FrameSubtype.CTS: "CTS",
    FrameSubtype.ACK: "ACK",
    FrameSubtype.DATA: "Data",
    FrameSubtype.NULL_FUNCTION: "Data Null Function",
    FrameSubtype.QOS_DATA: "QoS Data",
    FrameSubtype.QOS_NULL: "QoS Null",
}

_BY_CODE: dict[tuple[int, int], FrameSubtype] = {
    (st.ftype.value, st.subtype_code): st for st in FrameSubtype
}

#: MAC header + FCS overhead in bytes for the common three-address
#: data/management format (24 header + 4 FCS).
MAC_OVERHEAD_BYTES = 28
#: Control frame sizes on the wire (including FCS).
RTS_SIZE = 20
CTS_SIZE = 14
ACK_SIZE = 14
NULL_SIZE = MAC_OVERHEAD_BYTES  # header-only frame
PS_POLL_SIZE = 20


@dataclass(slots=True)
class Dot11Frame:
    """An 802.11 frame as modelled by the simulator.

    ``size`` is the full MAC-layer size in bytes (header + payload +
    FCS) — the quantity reported in Radiotap captures and used by the
    paper's *frame size* parameter.

    ``addr1`` is the receiver, ``addr2`` the transmitter and ``addr3``
    the BSSID/DA depending on direction; control frames that omit a
    transmitter address leave ``addr2`` as ``None``.
    """

    subtype: FrameSubtype
    size: int
    addr1: MacAddress = BROADCAST
    addr2: MacAddress | None = None
    addr3: MacAddress | None = None
    retry: bool = False
    to_ds: bool = False
    from_ds: bool = False
    protected: bool = False
    power_mgmt: bool = False
    duration_us: int = 0
    seq: int = 0
    payload: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if self.size < 10:
            raise ValueError(f"frame too small to be valid 802.11: {self.size}")
        if self.addr2 is not None and not self.subtype.has_transmitter_address:
            raise ValueError(f"{self.subtype.label} frames carry no transmitter address")

    @property
    def ftype(self) -> FrameType:
        """The 2-bit frame type."""
        return self.subtype.ftype

    @property
    def ftype_key(self) -> str:
        """Histogram key used by signature construction."""
        return self.subtype.label

    @property
    def transmitter(self) -> MacAddress | None:
        """Sender as observable by a passive monitor (may be ``None``)."""
        return self.addr2

    @property
    def is_broadcast(self) -> bool:
        """True when addressed to the broadcast address."""
        return self.addr1.is_broadcast

    @property
    def is_multicast(self) -> bool:
        """True when addressed to a group address."""
        return self.addr1.is_multicast

    @property
    def is_data(self) -> bool:
        """True for any data-type frame (incl. null/QoS variants)."""
        return self.ftype is FrameType.DATA

    @property
    def is_null_function(self) -> bool:
        """True for (QoS) null-function frames (power-save signalling)."""
        return self.subtype in (FrameSubtype.NULL_FUNCTION, FrameSubtype.QOS_NULL)


def ack_frame(receiver: MacAddress) -> Dot11Frame:
    """Build an ACK for ``receiver`` (the station being acknowledged)."""
    return Dot11Frame(subtype=FrameSubtype.ACK, size=ACK_SIZE, addr1=receiver)


def cts_frame(receiver: MacAddress, duration_us: int = 0) -> Dot11Frame:
    """Build a CTS addressed to the RTS originator."""
    return Dot11Frame(
        subtype=FrameSubtype.CTS, size=CTS_SIZE, addr1=receiver, duration_us=duration_us
    )


def rts_frame(
    transmitter: MacAddress, receiver: MacAddress, duration_us: int
) -> Dot11Frame:
    """Build an RTS reserving the medium for ``duration_us``."""
    return Dot11Frame(
        subtype=FrameSubtype.RTS,
        size=RTS_SIZE,
        addr1=receiver,
        addr2=transmitter,
        duration_us=duration_us,
    )


def null_frame(
    transmitter: MacAddress, bssid: MacAddress, power_save: bool
) -> Dot11Frame:
    """Build a Data Null Function frame (power-management signalling)."""
    return Dot11Frame(
        subtype=FrameSubtype.NULL_FUNCTION,
        size=NULL_SIZE,
        addr1=bssid,
        addr2=transmitter,
        addr3=bssid,
        to_ds=True,
        power_mgmt=power_save,
    )
