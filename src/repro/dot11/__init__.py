"""802.11 frame, addressing and PHY model.

This subpackage is the substrate every other layer builds on: a typed
model of 802.11 frames (:mod:`repro.dot11.frames`), MAC addresses
(:mod:`repro.dot11.mac`), PHY rates and airtime computation
(:mod:`repro.dot11.phy`), MAC-layer timing constants
(:mod:`repro.dot11.timing`) and the monitor-mode view of a frame
(:mod:`repro.dot11.capture`).

All times are expressed in **microseconds** unless stated otherwise;
sizes are in bytes and rates in Mbps, matching the units used in the
paper and in Radiotap headers.
"""

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype, FrameType
from repro.dot11.mac import BROADCAST, MacAddress
from repro.dot11.phy import Phy, PhyKind, frame_airtime_us
from repro.dot11.timing import MacTiming

__all__ = [
    "BROADCAST",
    "CapturedFrame",
    "Dot11Frame",
    "FrameSubtype",
    "FrameType",
    "MacAddress",
    "MacTiming",
    "Phy",
    "PhyKind",
    "frame_airtime_us",
]
