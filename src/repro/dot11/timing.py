"""MAC-layer timing constants (SIFS, DIFS, slots, contention windows).

These constants drive the DCF engine and therefore directly shape the
*medium access time* and *inter-arrival time* histograms the paper
measures: Figure 4's inter-arrival peaks sit at
``DIFS + k × slot + airtime`` for slot index ``k``, and contention-free
bursts are separated by SIFS (Figure 5b).

Timing differs between pure 802.11b (long slots) and 802.11g/mixed
mode; the values below follow IEEE 802.11-2007 for the 2.4 GHz band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dot11.phy import PhyKind


@dataclass(frozen=True, slots=True)
class MacTiming:
    """The DCF timing parameter set of a station or network.

    ``cw_min``/``cw_max`` are the contention-window bounds as *window
    sizes* (the standard's CWmin=15 means backoff slots drawn from
    [0, 15]).
    """

    slot_us: float
    sifs_us: float
    cw_min: int
    cw_max: int

    def __post_init__(self) -> None:
        if self.slot_us <= 0 or self.sifs_us <= 0:
            raise ValueError("slot and SIFS durations must be positive")
        if not 0 < self.cw_min <= self.cw_max:
            raise ValueError(f"invalid CW bounds: [{self.cw_min}, {self.cw_max}]")

    @property
    def difs_us(self) -> float:
        """DIFS = SIFS + 2 × slot."""
        return self.sifs_us + 2 * self.slot_us

    @property
    def eifs_us(self) -> float:
        """EIFS used after a reception error (SIFS + ACK time + DIFS).

        The ACK airtime term is approximated at the lowest mandatory
        rate; EIFS only needs to be "much longer than DIFS" for the
        simulation's purposes.
        """
        return self.sifs_us + 112.0 + self.difs_us

    def backoff_window(self, retry_count: int) -> int:
        """Contention window after ``retry_count`` retries (binary
        exponential backoff, clamped at ``cw_max``)."""
        if retry_count < 0:
            raise ValueError("retry_count must be >= 0")
        return min((self.cw_min + 1) * (1 << retry_count) - 1, self.cw_max)


#: 802.11b (DSSS) timing: 20 µs slots, 10 µs SIFS, CWmin 31.
TIMING_B = MacTiming(slot_us=20.0, sifs_us=10.0, cw_min=31, cw_max=1023)
#: 802.11g-only (ERP-OFDM) timing: 9 µs short slots, CWmin 15.
TIMING_G = MacTiming(slot_us=9.0, sifs_us=10.0, cw_min=15, cw_max=1023)
#: 802.11b/g mixed-mode: g rates but long slots for b compatibility.
TIMING_BG_MIXED = MacTiming(slot_us=20.0, sifs_us=10.0, cw_min=15, cw_max=1023)


def timing_for(kind: PhyKind, mixed_mode: bool = False) -> MacTiming:
    """Timing profile for a modulation family.

    ``mixed_mode`` selects the b-compatible long-slot variant that most
    real 2.4 GHz networks (and the paper's traces) operate in.
    """
    if kind is PhyKind.DSSS:
        return TIMING_B
    return TIMING_BG_MIXED if mixed_mode else TIMING_G
