"""The cross-scenario evaluation matrix as a benchmark artifact.

Runs the scenario-library matrix (every preset × all five parameters ×
two similarity measures; smoke mode shrinks it to 2 × 2 × 1), checks
the golden-pinned office-baseline cells reproduce the PR 3 regression
numbers bit-for-bit, and emits ``BENCH_experiments.json`` alongside
the other perf-gate artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.conftest import bench_smoke

from repro.analysis.plots import render_table
from repro.evaluation import run_matrix

GOLDEN_OFFICE = (
    Path(__file__).parent.parent / "tests" / "golden" / "evaluate_small_office.json"
)

SMOKE_SCENARIOS = ("office-baseline", "iot-swarm")
SMOKE_PARAMETERS = ("rate", "size")


def test_matrix_experiments(sim_cache):
    if bench_smoke():
        scenarios: tuple[str, ...] | None = SMOKE_SCENARIOS
        parameters: tuple[str, ...] | None = SMOKE_PARAMETERS
        measures = ("cosine",)
    else:
        scenarios = None  # the full library
        parameters = None  # all five network parameters
        measures = ("cosine", "intersection")

    matrix = run_matrix(
        scenarios=scenarios,
        parameters=parameters,
        measures=measures,
        cache=sim_cache,
    )

    rows = [
        (
            cell.scenario,
            cell.parameter,
            cell.measure,
            f"{cell.auc:.3f}",
            f"{cell.identification_at_0_1:.3f}",
            str(cell.reference_devices),
        )
        for cell in matrix.cells
    ]
    print()
    print(
        render_table(
            ["scenario", "parameter", "measure", "AUC", "ident@0.1", "refs"],
            rows,
            title=f"evaluation matrix ({len(matrix)} cells)",
        )
    )

    # Every cell is a real measurement over a populated scenario.
    for cell in matrix.cells:
        assert 0.0 <= cell.auc <= 1.0
        assert cell.reference_devices >= 2
        assert cell.total_candidates > 0
        assert cell.frame_count > 0

    # The office-baseline cells must reproduce the golden regression
    # numbers (tests/golden/) through the matrix harness, exactly.
    golden = json.loads(GOLDEN_OFFICE.read_text())["parameters"]
    office = matrix.subset(scenarios=["office-baseline"], measures=["cosine"])
    assert len(office) > 0
    for cell in office.cells:
        expected = golden[cell.parameter]
        assert cell.auc == expected["auc"], (
            f"office-baseline {cell.parameter} drifted from golden"
        )
        assert cell.identification_at_0_1 == expected["identification_at_0.1"]
        assert cell.reference_devices == expected["reference_devices"]

    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = matrix.save(out_dir / "BENCH_experiments.json")
    print(f"matrix -> {path}")
