"""Throughput benchmark for the streaming fingerprint engine.

Synthetic wire-speed workload: a multi-device capture is pre-built in
memory (frame construction excluded from the timed region), a
reference database is learnt from a training prefix, and the engine
then consumes the validation remainder twice — once frame-by-frame
(the reference path) and once as columnar ``FrameTable`` chunks (the
vectorized fast path) — windowing, incremental histogram updates and
live batch matching included.  Both paths must emit identical events,
and the chunked path must run at least ``REQUIRED_SPEEDUP``× faster.

The per-frame path must sustain ``REQUIRED_FPS`` frames/second;
results for both paths (frames/sec plus the peak resident signature
count, the streaming working-set metric) are written to
``BENCH_streaming.json`` so the perf trajectory is machine-readable
alongside the batch matching benchmark.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dot11.capture import CapturedFrame
from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress, vendor_mac
from repro.core.database import ReferenceDatabase
from repro.core.parameters import InterArrivalTime
from repro.core.signature import SignatureBuilder
from repro.streaming import (
    CollectingSink,
    StreamEngine,
    StreamingSignatureBuilder,
    WindowClosed,
    WindowConfig,
    table_chunks,
)
from benchmarks.conftest import bench_smoke, write_bench_json

SMOKE = bench_smoke()
DEVICES = 40
TRAIN_FRAMES = 30_000 if SMOKE else 60_000
STREAM_FRAMES = 50_000 if SMOKE else 200_000
WINDOW_S = 5.0
MIN_OBS = 50
REQUIRED_FPS = 20_000.0 if SMOKE else 50_000.0
CHUNK_FRAMES = 8192
REQUIRED_SPEEDUP = 3.0

AP = MacAddress.parse("00:0f:b5:00:00:01")


def synth_frames(count: int, rng: np.random.Generator, t0: float) -> list[CapturedFrame]:
    """A dense multi-device capture with per-device timing personality.

    Each device draws inter-arrival gaps around its own characteristic
    value (all inside the paper's 0–2500 µs histogram range), so the
    learnt signatures are actually distinguishable and live matching
    does real work.
    """
    devices = [vendor_mac("00:13:e8", i + 1) for i in range(DEVICES)]
    gaps = [60.0 + 55.0 * i for i in range(DEVICES)]
    sizes = [200 + 40 * i for i in range(DEVICES)]
    order = rng.integers(0, DEVICES, size=count)
    jitter = rng.random(count)
    frames: list[CapturedFrame] = []
    t = t0
    for pick, j in zip(order, jitter):
        device = devices[pick]
        t += gaps[pick] * (0.75 + 0.5 * j)
        frames.append(
            CapturedFrame(
                timestamp_us=t,
                frame=Dot11Frame(
                    subtype=FrameSubtype.QOS_DATA,
                    size=sizes[pick],
                    addr1=AP,
                    addr2=device,
                    addr3=AP,
                ),
                rate_mbps=54.0,
            )
        )
    return frames


def test_streaming_engine_throughput():
    rng = np.random.default_rng(4711)
    training = synth_frames(TRAIN_FRAMES, rng, t0=1000.0)
    validation = synth_frames(STREAM_FRAMES, rng, t0=training[-1].timestamp_us + 100.0)

    parameter = InterArrivalTime()
    database = ReferenceDatabase.from_training(
        SignatureBuilder(parameter, min_observations=MIN_OBS), training
    )
    assert len(database) == DEVICES
    database.packed()  # pack outside the timed region, like a deployment

    def make_engine(sink: CollectingSink) -> StreamEngine:
        return StreamEngine(
            lambda: StreamingSignatureBuilder(parameter, min_observations=MIN_OBS),
            database=database,
            window=WindowConfig(window_s=WINDOW_S),
            sinks=[sink],
        )

    sink = CollectingSink()
    engine = make_engine(sink)
    start = time.perf_counter()
    stats = engine.run(iter(validation))
    seconds = time.perf_counter() - start
    fps = stats.frames / seconds

    assert stats.frames == STREAM_FRAMES
    assert stats.windows_closed >= 3
    assert stats.candidates > 0
    # Bounded working set: resident accumulators never exceed the
    # device population per concurrently open window.
    assert stats.peak_resident_devices <= DEVICES
    closed = sink.of_type(WindowClosed)
    assert len(closed) == stats.windows_closed

    # Chunked fast path over the same frames (chunks pre-built outside
    # the timed region — a live deployment receives columnar batches
    # straight from the capture layer).
    chunks = list(table_chunks(validation, CHUNK_FRAMES))
    chunked_sink = CollectingSink()
    chunked_engine = make_engine(chunked_sink)
    start = time.perf_counter()
    chunked_stats = chunked_engine.run_chunked(iter(chunks))
    chunked_seconds = time.perf_counter() - start
    chunked_fps = chunked_stats.frames / chunked_seconds

    # Not just fast: bit-identical to the reference path.
    assert chunked_sink.events == sink.events
    assert chunked_stats == stats
    speedup = chunked_fps / fps

    print(
        f"\nstreaming: {fps:,.0f} frames/s per-frame, {chunked_fps:,.0f} "
        f"frames/s chunked ({speedup:.1f}x) over {STREAM_FRAMES:,} frames "
        f"({stats.windows_closed} windows, {stats.candidates} candidates, "
        f"peak {stats.peak_resident_devices} resident signatures)"
    )
    write_bench_json(
        "streaming",
        {
            "devices": DEVICES,
            "stream_frames": STREAM_FRAMES,
            "window_s": WINDOW_S,
            "seconds": seconds,
            "frames_per_s": fps,
            "windows_closed": stats.windows_closed,
            "candidates": stats.candidates,
            "peak_resident_signatures": stats.peak_resident_devices,
            "required_frames_per_s": REQUIRED_FPS,
            "chunked": {
                "chunk_frames": CHUNK_FRAMES,
                "seconds": chunked_seconds,
                "frames_per_s": chunked_fps,
                "speedup": speedup,
                "required_speedup": REQUIRED_SPEEDUP,
            },
        },
    )
    assert fps >= REQUIRED_FPS, (
        f"streaming engine at {fps:,.0f} frames/s (need ≥{REQUIRED_FPS:,.0f})"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"chunked ingest at {speedup:.1f}x per-frame (need ≥{REQUIRED_SPEEDUP:.0f}x)"
    )
