"""Ablation (Section V-C): the 50-observation minimum.

The paper: "a minimum of 50 observations is a good compromise between
the minimum time required to generate a signature and matching
accuracy."  Sweeping the threshold shows the trade-off: lower minima
admit more (noisier) candidates; higher minima shrink the reference
population.
"""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.core.detection import DetectionConfig
from repro.core.parameters import InterArrivalTime
from repro.core.pipeline import evaluate_trace

SWEEP = (10, 25, 50, 100, 200)


def test_ablation_min_observations(datasets, benchmark):
    trace, training_s = datasets["office2"]
    rows = []
    results = {}
    for minimum in SWEEP:
        result = evaluate_trace(
            trace,
            InterArrivalTime(),
            training_s,
            DetectionConfig(min_observations=minimum),
        )
        results[minimum] = result
        rows.append(
            (
                minimum,
                result.reference_devices,
                result.identification.total_candidates,
                f"{result.auc:.3f}",
                f"{result.identification_at(0.1):.3f}",
            )
        )
    print()
    print(
        render_table(
            ["min obs", "# refs", "# candidates", "AUC", "ident@0.1"],
            rows,
            title="Ablation: minimum observations per signature (office 2)",
        )
    )

    # More permissive thresholds admit at least as many references and
    # candidates.
    assert results[10].reference_devices >= results[200].reference_devices
    assert (
        results[10].identification.total_candidates
        >= results[200].identification.total_candidates
    )
    # The paper's 50 keeps accuracy close to the best of the sweep.
    best_auc = max(r.auc for r in results.values())
    assert results[50].auc >= best_auc - 0.08

    benchmark.pedantic(
        evaluate_trace,
        args=(trace, InterArrivalTime(), training_s),
        kwargs={"config": DetectionConfig(min_observations=50)},
        rounds=1,
        iterations=1,
    )
